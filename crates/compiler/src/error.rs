//! Compiler-phase errors.

use cgp_lang::span::Span;
use std::fmt;

/// An error from any decomposition-compiler phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub span: Option<Span>,
    pub message: String,
}

impl CompileError {
    pub fn new(message: impl Into<String>) -> Self {
        CompileError {
            span: None,
            message: message.into(),
        }
    }

    pub fn at(span: Span, message: impl Into<String>) -> Self {
        CompileError {
            span: Some(span),
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) if !s.is_synthetic() => write!(f, "compile error at {s}: {}", self.message),
            _ => write!(f, "compile error: {}", self.message),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<cgp_lang::Diagnostic> for CompileError {
    fn from(d: cgp_lang::Diagnostic) -> Self {
        CompileError {
            span: Some(d.span),
            message: d.to_string(),
        }
    }
}

/// Result alias for compiler phases.
pub type CompileResult<T> = Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_span() {
        let e = CompileError::new("boom");
        assert_eq!(e.to_string(), "compile error: boom");
        let e = CompileError::at(Span::new(0, 1, 3, 9), "boom");
        assert_eq!(e.to_string(), "compile error at 3:9: boom");
        let e = CompileError::at(Span::synthetic(), "boom");
        assert_eq!(e.to_string(), "compile error: boom");
    }
}
