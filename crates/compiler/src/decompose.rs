//! Filter decomposition (Section 4.4, Figure 3).
//!
//! Given `n+1` atomic filters separated by `n` candidate boundaries and a
//! pipeline of `m` computing units joined by `m−1` links, choose where each
//! atomic filter runs so the per-packet cost is minimal:
//!
//! ```text
//! T[i,j] = min( T[i−1,j] + Cost_comp(P(C_j), Task(f_i)),
//!               T[i,j−1] + Cost_comm(B(L_{j−1}), Vol(f_i)) )
//! ```
//!
//! filled in `O(nm)` time (and `O(m)` space in the rolling variant). The
//! brute-force reference enumerates all `C(n+m−1, m−1)` monotone
//! assignments and is used by tests/benches to verify optimality and to
//! reproduce the paper's complexity comparison.
//!
//! One deviation, documented in DESIGN.md: we prepend a **virtual source
//! atom** pinned to `C_1` whose "result volume" is the raw input
//! (`ReqComm` at the chain start). The paper's formulation starts with
//! `T[0,j] = 0`, which would let the first real filter run anywhere without
//! paying to move the input off the data host; the virtual source charges
//! that movement, which is exactly what distinguishes the *Default*
//! placement (ship everything) from compiler decompositions.

use crate::cost::{ChainCosts, CostWeights, OpCount, PipelineEnv, StageTimes};

/// Map `NaN` to `+∞` so DP/brute-force comparisons stay deterministic: a
/// `NaN` candidate compares false against everything, which would make
/// `computed <= forwarded` silently pick the wrong branch and corrupt the
/// boundary selection. The cost model is itself guarded, but sums of
/// guarded terms are re-checked here as defense in depth.
fn finite_or_inf(x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else {
        x
    }
}

/// A decomposition problem: tasks (virtual source first) and the volume
/// crossing after each task.
#[derive(Debug, Clone)]
pub struct Problem {
    /// `tasks[0]` is the virtual source (zero work). `tasks[i]` for `i ≥ 1`
    /// is atomic filter `f_i`.
    pub tasks: Vec<OpCount>,
    /// `volumes[i]` = bytes crossing a cut placed right after `tasks[i]`;
    /// `volumes[last]` is 0 (the paper's `ReqComm(end) = ∅`).
    pub volumes: Vec<f64>,
    pub weights: CostWeights,
}

impl Problem {
    /// Build from chain costs plus the raw-input volume at the chain start.
    pub fn from_chain(costs: &ChainCosts, input_volume: f64) -> Problem {
        let mut tasks = Vec::with_capacity(costs.tasks.len() + 1);
        tasks.push(OpCount::zero());
        tasks.extend(costs.tasks.iter().copied());
        let mut volumes = Vec::with_capacity(tasks.len());
        volumes.push(input_volume);
        volumes.extend(costs.volumes.iter().copied());
        volumes.push(0.0);
        assert_eq!(volumes.len(), tasks.len());
        Problem {
            tasks,
            volumes,
            weights: costs.weights,
        }
    }

    /// Build directly (tests, synthetic benches).
    pub fn synthetic(tasks: Vec<OpCount>, volumes: Vec<f64>) -> Problem {
        assert_eq!(tasks.len(), volumes.len());
        Problem {
            tasks,
            volumes,
            weights: CostWeights::default(),
        }
    }

    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }
}

/// A decomposition: which computing unit runs each task.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// `unit_of[i]` ∈ `0..m`, non-decreasing; `unit_of[0] == 0` (the virtual
    /// source sits on the data host).
    pub unit_of: Vec<usize>,
    /// Objective value (per-packet end-to-end cost, the DP objective).
    pub cost: f64,
}

impl Decomposition {
    /// The *Default* placement of the paper's evaluation: the data host only
    /// reads/sends, the first compute unit does all processing, the results
    /// land on the view host. With `m == 1` everything runs on the single
    /// unit.
    pub fn default_style(n_tasks: usize, m: usize) -> Decomposition {
        let unit = if m >= 2 { 1 } else { 0 };
        let mut unit_of = vec![unit; n_tasks];
        unit_of[0] = 0;
        Decomposition {
            unit_of,
            cost: f64::NAN,
        }
    }

    /// Task indices assigned to unit `j`.
    pub fn tasks_on(&self, j: usize) -> Vec<usize> {
        (0..self.unit_of.len())
            .filter(|i| self.unit_of[*i] == j)
            .collect()
    }

    /// For each link `l`, the index of the last task completed on units
    /// `≤ l` (whose results the link carries).
    pub fn carried_task(&self, m: usize) -> Vec<usize> {
        (0..m.saturating_sub(1))
            .map(|l| {
                (0..self.unit_of.len())
                    .rfind(|i| self.unit_of[*i] <= l)
                    .expect("virtual source is always on unit 0")
            })
            .collect()
    }

    /// Cut positions per link as boundary indices of the original chain:
    /// `None` means the cut falls before the first real atom (raw data
    /// crosses, the Default shape); `Some(b)` means candidate boundary `b`.
    pub fn cut_boundaries(&self, m: usize) -> Vec<Option<usize>> {
        self.carried_task(m)
            .into_iter()
            .map(|t| if t == 0 { None } else { Some(t - 1) })
            .collect()
    }
}

/// Evaluate the DP objective for an assignment: all computation plus, per
/// link, the volume of the last task completed before it.
pub fn evaluate(problem: &Problem, env: &PipelineEnv, unit_of: &[usize]) -> f64 {
    debug_assert_eq!(unit_of.len(), problem.n_tasks());
    debug_assert!(
        unit_of.windows(2).all(|w| w[0] <= w[1]),
        "assignment must be monotone"
    );
    let mut cost = 0.0;
    for (i, &j) in unit_of.iter().enumerate() {
        cost += env.cost_comp(j, &problem.tasks[i], &problem.weights);
    }
    for l in 0..env.m() - 1 {
        let carried = (0..unit_of.len())
            .rfind(|i| unit_of[*i] <= l)
            .expect("virtual source on unit 0");
        cost += env.cost_comm(l, problem.volumes[carried]);
    }
    cost
}

/// Per-packet stage times of an assignment (for the paper's total-time
/// formula and the simulator).
pub fn stage_times(problem: &Problem, env: &PipelineEnv, unit_of: &[usize]) -> StageTimes {
    let m = env.m();
    let mut comp = vec![0.0; m];
    for (i, &j) in unit_of.iter().enumerate() {
        comp[j] += env.cost_comp(j, &problem.tasks[i], &problem.weights);
    }
    let mut comm = Vec::with_capacity(m.saturating_sub(1));
    for l in 0..m.saturating_sub(1) {
        let carried = (0..unit_of.len())
            .rfind(|i| unit_of[*i] <= l)
            .expect("virtual source on unit 0");
        comm.push(env.cost_comm(l, problem.volumes[carried]));
    }
    StageTimes { comp, comm }
}

/// The `O(nm)` dynamic program of Figure 3, with backtracking.
pub fn decompose_dp(problem: &Problem, env: &PipelineEnv) -> Decomposition {
    let n = problem.n_tasks();
    let m = env.m();
    assert!(n >= 1 && m >= 1);
    const INF: f64 = f64::INFINITY;

    // t[i][j]: min cost with tasks 0..=i done and results of task i on C_j.
    let mut t = vec![vec![INF; m]; n];
    // choice[i][j]: true → task i computed on C_j (came from t[i-1][j]);
    //               false → forwarded over L_{j-1} (came from t[i][j-1]).
    let mut choice = vec![vec![false; m]; n];

    t[0][0] = finite_or_inf(env.cost_comp(0, &problem.tasks[0], &problem.weights));
    choice[0][0] = true;
    for j in 1..m {
        t[0][j] = finite_or_inf(t[0][j - 1] + env.cost_comm(j - 1, problem.volumes[0]));
    }
    for i in 1..n {
        for j in 0..m {
            let computed =
                finite_or_inf(t[i - 1][j] + env.cost_comp(j, &problem.tasks[i], &problem.weights));
            let forwarded = if j >= 1 {
                finite_or_inf(t[i][j - 1] + env.cost_comm(j - 1, problem.volumes[i]))
            } else {
                INF
            };
            if computed <= forwarded {
                t[i][j] = computed;
                choice[i][j] = true;
            } else {
                t[i][j] = forwarded;
            }
        }
    }

    // Backtrack from (n-1, m-1).
    let mut unit_of = vec![0usize; n];
    let (mut i, mut j) = (n - 1, m - 1);
    loop {
        if choice[i][j] {
            unit_of[i] = j;
            if i == 0 {
                break;
            }
            i -= 1;
        } else {
            debug_assert!(j > 0);
            j -= 1;
        }
    }
    Decomposition {
        unit_of,
        cost: t[n - 1][m - 1],
    }
}

/// Rolling-array variant: same optimum, `O(m)` space, no backtracking
/// (returns only the cost). Matches the paper's space-complexity remark.
pub fn decompose_dp_cost_only(problem: &Problem, env: &PipelineEnv) -> f64 {
    let n = problem.n_tasks();
    let m = env.m();
    const INF: f64 = f64::INFINITY;
    let mut row = vec![INF; m];
    row[0] = finite_or_inf(env.cost_comp(0, &problem.tasks[0], &problem.weights));
    for j in 1..m {
        row[j] = finite_or_inf(row[j - 1] + env.cost_comm(j - 1, problem.volumes[0]));
    }
    for i in 1..n {
        // row currently holds t[i-1][*]; update left-to-right so row[j-1]
        // is already t[i][j-1].
        for j in 0..m {
            let computed =
                finite_or_inf(row[j] + env.cost_comp(j, &problem.tasks[i], &problem.weights));
            let forwarded = if j >= 1 {
                finite_or_inf(row[j - 1] + env.cost_comm(j - 1, problem.volumes[i]))
            } else {
                INF
            };
            row[j] = computed.min(forwarded);
        }
    }
    row[m - 1]
}

/// Brute force over all monotone assignments (`C(n+m−1, m−1)` of them):
/// the optimality reference. Exponential in `m`; use only for small inputs.
pub fn decompose_brute_force(problem: &Problem, env: &PipelineEnv) -> Decomposition {
    let n = problem.n_tasks();
    let m = env.m();
    let mut best: Option<Decomposition> = None;
    let mut unit_of = vec![0usize; n];
    fn rec(
        problem: &Problem,
        env: &PipelineEnv,
        unit_of: &mut Vec<usize>,
        i: usize,
        min_unit: usize,
        best: &mut Option<Decomposition>,
    ) {
        let n = problem.n_tasks();
        if i == n {
            let cost = finite_or_inf(evaluate(problem, env, unit_of));
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                *best = Some(Decomposition {
                    unit_of: unit_of.clone(),
                    cost,
                });
            }
            return;
        }
        let start = if i == 0 { 0 } else { min_unit };
        let end = if i == 0 { 0 } else { env.m() - 1 };
        for j in start..=end {
            unit_of[i] = j;
            rec(problem, env, unit_of, i + 1, j, best);
        }
    }
    rec(problem, env, &mut unit_of, 0, 0, &mut best);
    let _ = m;
    best.expect("at least one assignment exists")
}

/// Exhaustive minimization of the *steady-state* total time
/// `(N−1)·T(bottleneck) + fill` — an ablation target comparing the paper's
/// per-packet-latency DP objective against bottleneck-optimal placement.
pub fn decompose_bottleneck_optimal(
    problem: &Problem,
    env: &PipelineEnv,
    n_packets: u64,
) -> Decomposition {
    let n = problem.n_tasks();
    let mut best: Option<Decomposition> = None;
    let mut unit_of = vec![0usize; n];
    fn rec(
        problem: &Problem,
        env: &PipelineEnv,
        n_packets: u64,
        unit_of: &mut Vec<usize>,
        i: usize,
        min_unit: usize,
        best: &mut Option<Decomposition>,
    ) {
        if i == problem.n_tasks() {
            let st = stage_times(problem, env, unit_of);
            let cost = finite_or_inf(st.total_time(n_packets));
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                *best = Some(Decomposition {
                    unit_of: unit_of.clone(),
                    cost,
                });
            }
            return;
        }
        let start = if i == 0 { 0 } else { min_unit };
        let end = if i == 0 { 0 } else { env.m() - 1 };
        for j in start..=end {
            unit_of[i] = j;
            rec(problem, env, n_packets, unit_of, i + 1, j, best);
        }
    }
    rec(problem, env, n_packets, &mut unit_of, 0, 0, &mut best);
    best.expect("at least one assignment exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flops(f: f64) -> OpCount {
        OpCount {
            flops: f,
            iops: 0.0,
            mem: 0.0,
        }
    }

    fn problem(work: &[f64], vols: &[f64]) -> Problem {
        // prepend virtual source
        let mut tasks = vec![OpCount::zero()];
        tasks.extend(work.iter().map(|w| flops(*w)));
        let mut volumes = vec![vols[0]];
        volumes.extend(vols[1..].iter().copied());
        volumes.push(0.0);
        assert_eq!(tasks.len(), volumes.len());
        Problem {
            tasks,
            volumes,
            weights: CostWeights::default(),
        }
    }

    #[test]
    fn dp_places_heavy_filter_on_fast_unit() {
        // Two real tasks; input huge, intermediate small → both tasks should
        // move to unit 0 (data host) to avoid shipping the input... unless
        // unit 0 is slow. Make all units equal: computation cost identical
        // anywhere, so minimizing communication wins.
        let p = problem(&[100.0, 100.0], &[1_000_000.0, 10.0]);
        let env = PipelineEnv::uniform(3, 1e6, 1e6, 0.0);
        let d = decompose_dp(&p, &env);
        // Everything on unit 0 keeps links carrying only the small
        // intermediate / final nothing (vol of last task = 0).
        assert_eq!(d.unit_of, vec![0, 0, 0], "cost={}", d.cost);
    }

    #[test]
    fn dp_ships_raw_data_when_data_host_is_weak() {
        // The data host is 10× slower than the compute units and the input
        // is small → ship the raw input and compute downstream.
        let p = problem(&[100.0, 100.0], &[10.0, 10.0]);
        let env = PipelineEnv {
            power: vec![1e5, 1e6, 1e6],
            bandwidth: vec![1e6, 1e6],
            latency: vec![0.0, 0.0],
        };
        let d = decompose_dp(&p, &env);
        assert_eq!(d.unit_of[0], 0);
        assert!(d.unit_of[1] >= 1, "{:?} cost={}", d.unit_of, d.cost);
        let bf = decompose_brute_force(&p, &env);
        assert!((d.cost - bf.cost).abs() < 1e-12);
    }

    #[test]
    fn dp_matches_brute_force_on_grid() {
        // Sweep small synthetic problems; DP must equal brute force.
        let works: [&[f64]; 3] = [&[10.0, 20.0, 5.0], &[1.0, 1.0, 1.0, 1.0], &[50.0]];
        let volss: [&[f64]; 3] = [&[100.0, 50.0, 25.0], &[5.0, 500.0, 5.0, 250.0], &[10.0]];
        for (w, v) in works.iter().zip(volss.iter()) {
            for m in 1..=4usize {
                for bw in [1e3, 1e5] {
                    let p = problem(w, v);
                    let env = PipelineEnv::uniform(m, 1e4, bw, 1e-5);
                    let dp = decompose_dp(&p, &env);
                    let bf = decompose_brute_force(&p, &env);
                    assert!(
                        (dp.cost - bf.cost).abs() < 1e-9 * (1.0 + bf.cost.abs()),
                        "m={m} bw={bw}: dp={} bf={}",
                        dp.cost,
                        bf.cost
                    );
                    // And the DP's own assignment evaluates to its cost.
                    let ev = evaluate(&p, &env, &dp.unit_of);
                    assert!((ev - dp.cost).abs() < 1e-9 * (1.0 + ev.abs()));
                }
            }
        }
    }

    #[test]
    fn rolling_variant_matches_full_table() {
        let p = problem(&[3.0, 8.0, 2.0, 9.0], &[100.0, 40.0, 70.0, 20.0]);
        for m in 1..=5 {
            let env = PipelineEnv::uniform(m, 100.0, 10.0, 0.01);
            let full = decompose_dp(&p, &env).cost;
            let roll = decompose_dp_cost_only(&p, &env);
            assert!((full - roll).abs() < 1e-12, "m={m}");
        }
    }

    #[test]
    fn assignment_is_monotone_and_source_pinned() {
        let p = problem(&[5.0, 1.0, 7.0, 2.0], &[300.0, 10.0, 200.0, 5.0]);
        let env = PipelineEnv::uniform(4, 50.0, 25.0, 0.0);
        let d = decompose_dp(&p, &env);
        assert_eq!(d.unit_of[0], 0);
        assert!(
            d.unit_of.windows(2).all(|w| w[0] <= w[1]),
            "{:?}",
            d.unit_of
        );
    }

    #[test]
    fn cut_boundaries_reporting() {
        let d = Decomposition {
            unit_of: vec![0, 0, 1, 1],
            cost: 0.0,
        };
        // m=3: link 0 carries task 1's results (cut after atom 0 → boundary
        // 0); link 1 carries task 3's results (boundary 2).
        assert_eq!(d.cut_boundaries(3), vec![Some(0), Some(2)]);
        let default = Decomposition::default_style(4, 3);
        // link 0 carries the virtual source's raw data.
        assert_eq!(default.cut_boundaries(3)[0], None);
    }

    #[test]
    fn default_style_shape() {
        let d = Decomposition::default_style(5, 3);
        assert_eq!(d.unit_of, vec![0, 1, 1, 1, 1]);
        let d1 = Decomposition::default_style(3, 1);
        assert_eq!(d1.unit_of, vec![0, 0, 0]);
    }

    #[test]
    fn stage_times_sum_to_evaluate() {
        let p = problem(&[5.0, 9.0], &[100.0, 50.0]);
        let env = PipelineEnv::uniform(3, 10.0, 20.0, 0.5);
        let d = decompose_dp(&p, &env);
        let st = stage_times(&p, &env, &d.unit_of);
        let sum: f64 = st.comp.iter().sum::<f64>() + st.comm.iter().sum::<f64>();
        assert!((sum - d.cost).abs() < 1e-9, "sum={sum} cost={}", d.cost);
    }

    #[test]
    fn bottleneck_optimal_can_differ_from_latency_optimal() {
        // With many packets the bottleneck objective may prefer spreading
        // work even at higher one-packet latency.
        let p = problem(&[10.0, 10.0], &[8.0, 8.0]);
        let env = PipelineEnv::uniform(3, 1.0, 100.0, 0.0);
        let lat = decompose_dp(&p, &env);
        let bot = decompose_bottleneck_optimal(&p, &env, 1000);
        let lat_steady = stage_times(&p, &env, &lat.unit_of).total_time(1000);
        assert!(bot.cost <= lat_steady + 1e-9);
        // The bottleneck solution spreads the two tasks across units.
        let st = stage_times(&p, &env, &bot.unit_of);
        let max_comp = st.comp.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max_comp <= 10.0 + 1e-9, "{:?}", st.comp);
    }

    #[test]
    fn zero_bandwidth_link_never_yields_nan_and_plans_deterministically() {
        // Regression: `cost_comm` used to compute `0.0 / 0.0 → NaN` for a
        // zero-volume cut over a zero-bandwidth link, and the DP compared
        // against the NaN (every comparison silently false), corrupting
        // boundary selection. The plan cost must now be finite or +∞ —
        // never NaN — and the chosen assignment deterministic.
        let p = problem(&[100.0, 100.0, 50.0], &[1000.0, 0.0, 10.0]);
        let env = PipelineEnv {
            power: vec![1e6, 1e6, 1e6],
            bandwidth: vec![0.0, 1e6],
            latency: vec![1e-5, 1e-5],
        };
        let d = decompose_dp(&p, &env);
        assert!(!d.cost.is_nan(), "plan cost must never be NaN: {}", d.cost);
        assert!(
            d.unit_of.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {:?}",
            d.unit_of
        );
        // The dead link is only crossable carrying zero bytes; any plan
        // moving real volume over it costs +∞, so the optimum avoids it.
        let roll = decompose_dp_cost_only(&p, &env);
        let bf = decompose_brute_force(&p, &env);
        assert!(!roll.is_nan() && !bf.cost.is_nan());
        assert!(
            (d.cost - bf.cost).abs() < 1e-9 * (1.0 + bf.cost.abs()) || d.cost == bf.cost,
            "dp={} bf={}",
            d.cost,
            bf.cost
        );
        assert!((d.cost - roll).abs() < 1e-12 || d.cost == roll);
        // Determinism: two runs agree exactly.
        assert_eq!(d, decompose_dp(&p, &env));

        // All-dead-links environment: cost degenerates to +∞ rather than
        // NaN, and the DP still returns a legal monotone assignment.
        let env_dead = PipelineEnv {
            power: vec![1e6, 1e6],
            bandwidth: vec![0.0],
            latency: vec![0.0],
        };
        let d2 = decompose_dp(&p, &env_dead);
        assert!(!d2.cost.is_nan());
        assert_eq!(d2.unit_of[0], 0);
        assert!(d2.unit_of.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nan_candidates_are_rejected_by_brute_force() {
        // A NaN objective (e.g. from a hostile environment) must never be
        // retained as "best": finite_or_inf maps it to +∞ so any finite
        // candidate wins.
        let p = problem(&[1.0], &[0.0]);
        let env = PipelineEnv {
            power: vec![1e6, f64::NAN],
            bandwidth: vec![1e6],
            latency: vec![0.0],
        };
        let bf = decompose_brute_force(&p, &env);
        assert!(!bf.cost.is_nan());
        // Unit 1 has NaN power → plans touching it cost +∞; the optimum keeps
        // all work on unit 0 and stays finite. A NaN candidate that survived
        // the comparison would poison `cost` itself, so finiteness proves the
        // rejection worked.
        assert!(bf.cost.is_finite(), "cost={}", bf.cost);
        assert!(bf.unit_of.iter().all(|&u| u == 0), "plan={:?}", bf.unit_of);
    }

    #[test]
    fn single_unit_pipeline_degenerates() {
        let p = problem(&[4.0, 6.0], &[100.0, 10.0]);
        let env = PipelineEnv::uniform(1, 2.0, 1.0, 0.0);
        let d = decompose_dp(&p, &env);
        assert_eq!(d.unit_of, vec![0, 0, 0]);
        assert!((d.cost - (10.0 / 2.0)).abs() < 1e-9);
    }
}
