//! # cgp-compiler — pipeline decomposition compiler
//!
//! Implements Sections 4 and 5 of *"Compiler Support for Exploiting
//! Coarse-Grained Pipelined Parallelism"* (Du, Ferreira, Agrawal — SC 2003):
//!
//! - [`normalize()`] — locate the `PipelinedLoop`, perform loop fission (with
//!   scalar expansion) so no candidate boundary lies inside a `foreach`;
//! - [`graph`] — the candidate filter boundary graph / chain;
//! - [`gencons`] — the one-pass Gen/Cons analysis of code segments;
//! - [`reqcomm`] — ReqComm propagation over the boundary graph;
//! - [`cost`] — operation counting and the paper's cost model;
//! - [`decompose`] — the `O(nm)` dynamic-programming filter decomposition
//!   (plus the brute-force reference and a bottleneck-optimal ablation);
//! - [`packing`] — instance-wise / field-wise buffer layouts and the
//!   byte-level pack/unpack;
//! - [`codegen`] — [`FilterPlan`] generation and the Path-A executor;
//! - [`driver`] — one-call [`compile`].
//!
//! ```
//! use cgp_compiler::{compile, CompileOptions};
//! use cgp_compiler::cost::PipelineEnv;
//!
//! let src = r#"
//!     extern int n;
//!     extern double[] data;
//!     class Sum implements Reducinterface {
//!         double total;
//!         void reduce(Sum o) { total = total + o.total; }
//!         void add(double x) { total = total + x; }
//!     }
//!     class App { void main() {
//!         RectDomain<1> all = [0 : n - 1];
//!         Sum sum = new Sum();
//!         PipelinedLoop (pkt in all; 4) {
//!             foreach (i in pkt) {
//!                 double v = data[i] * 2.0;
//!                 if (v > 1.0) { sum.add(v); }
//!             }
//!         }
//!         print(sum.total);
//!     } }
//! "#;
//! let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-5), 128)
//!     .with_symbol("n", 1024);
//! let compiled = compile(src, &opts).unwrap();
//! assert_eq!(compiled.plan.m, 3);
//! ```

pub mod calibrate;
pub mod codegen;
pub mod cost;
pub mod decompose;
pub mod driver;
pub mod error;
pub mod failover;
pub mod gencons;
pub mod graph;
pub mod normalize;
pub mod packing;
pub mod place;
pub mod report;
pub mod reqcomm;

pub use calibrate::{CalibrationReport, MeasuredLink, MeasuredStage, StageCalibration};
pub use codegen::{
    build_plan, run_plan_sequential, FilterPlan, FilterSpec, FilterStepper, LoweredPlan,
    LoweredStep,
};
pub use decompose::{decompose_brute_force, decompose_dp, Decomposition, Problem};
pub use driver::{
    choose_packet_count, compile, CompileOptions, Compiled, Objective, PacketSizePoint,
};
pub use error::{CompileError, CompileResult};
pub use failover::{replan, FailoverPlan};
pub use normalize::{normalize, AtomicUnit, NormalizedPipeline, UnitKind};
pub use place::{Place, PlaceSet, Section, Sectioning, SymExpr};
pub use report::DecisionReport;
