//! Packing of communicated values (Section 5, Figure 4).
//!
//! For each boundary chosen as a filter cut, the fields crossing it are
//! sorted by the first downstream filter that consumes them:
//!
//! - fields first used by the **immediately next** filter are packed
//!   *instance-wise* (array-of-structs):
//!   `<count, t1.x, t1.y, …, tcount.x, tcount.y>`;
//! - fields first used by **later** filters are packed *field-wise*
//!   (struct-of-arrays, each field contiguous with an offset), sorted by
//!   the order in which they are first read:
//!   `<count, offset1, t1.x, …, tcount.x, t1.y, …, tcount.y>`.
//!
//! Instance-wise packing puts values the next filter touches together in
//! memory; field-wise packing lets a filter forward an untouched field with
//! one contiguous copy instead of re-gathering it.
//!
//! This module computes layouts *and* implements the byte-level
//! pack/unpack over interpreter [`Value`]s used by Path-A execution,
//! including compaction at filtering (`CondFilter`) cuts: upstream packs
//! only passing elements plus the passing-index list, downstream scatters
//! them back.

use crate::error::{CompileError, CompileResult};
use crate::normalize::NormalizedPipeline;
use crate::place::{Place, Sectioning};
use cgp_lang::ast::Type;
use cgp_lang::value::Value;
use std::collections::HashMap;

/// One packed field: the place and the filter (pipeline-unit index) that
/// first consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct PackEntry {
    pub place: Place,
    pub first_consumer: usize,
    /// Scalar element type of the packed values.
    pub elem: ScalarKind,
}

/// Scalar wire types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    I64,
    F64,
    Bool,
    /// A 1-D RectDomain value (two i64s).
    Domain,
}

impl ScalarKind {
    pub fn byte_len(self) -> usize {
        match self {
            ScalarKind::I64 | ScalarKind::F64 => 8,
            ScalarKind::Bool => 1,
            ScalarKind::Domain => 16,
        }
    }
}

/// A buffer layout for one filter cut.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PackLayout {
    /// Entries packed instance-wise (interleaved per element).
    pub instance_wise: Vec<PackEntry>,
    /// Entries packed field-wise (contiguous per field), in first-read
    /// order.
    pub field_wise: Vec<PackEntry>,
    /// `Some(cond_id)` when this cut is a filtering boundary: sectioned
    /// entries carry only passing elements plus the passing-index list.
    pub filtered: Option<usize>,
}

impl PackLayout {
    pub fn entries(&self) -> impl Iterator<Item = &PackEntry> {
        self.instance_wise.iter().chain(self.field_wise.iter())
    }

    pub fn is_empty(&self) -> bool {
        self.instance_wise.is_empty() && self.field_wise.is_empty()
    }
}

/// Compute the layout for a cut whose ReqComm is `set`, given the Cons sets
/// of the downstream filters in pipeline order (`downstream[0]` is the
/// filter immediately after the cut; its pipeline index is
/// `first_unit_after`).
pub fn compute_layout(
    np: &NormalizedPipeline,
    set: &crate::place::PlaceSet,
    downstream_cons: &[crate::place::PlaceSet],
    first_unit_after: usize,
    filtered: Option<usize>,
) -> CompileResult<PackLayout> {
    let mut entries: Vec<PackEntry> = Vec::new();
    for p in set.sorted() {
        let first = downstream_cons
            .iter()
            .position(|cons| cons.iter().any(|q| touches(q, p)))
            .map(|k| first_unit_after + k)
            // Unconsumed leftovers (conservative analysis) go last.
            .unwrap_or(first_unit_after + downstream_cons.len());
        entries.push(PackEntry {
            place: (*p).clone(),
            first_consumer: first,
            elem: scalar_kind(np, p)?,
        });
    }
    let mut layout = PackLayout {
        filtered,
        ..Default::default()
    };
    for e in entries {
        if e.first_consumer == first_unit_after {
            layout.instance_wise.push(e);
        } else {
            layout.field_wise.push(e);
        }
    }
    // Field-wise: sorted by the order in which they are first read.
    layout.field_wise.sort_by(|a, b| {
        a.first_consumer
            .cmp(&b.first_consumer)
            .then(a.place.cmp(&b.place))
    });
    Ok(layout)
}

/// Do two places refer to overlapping storage (same root, one field path a
/// prefix of the other)?
fn touches(a: &Place, b: &Place) -> bool {
    a.root == b.root && (a.fields.starts_with(&b.fields) || b.fields.starts_with(&a.fields))
}

/// The scalar wire type a place's packed values have.
fn scalar_kind(np: &NormalizedPipeline, p: &Place) -> CompileResult<ScalarKind> {
    let mut ty = np
        .typed
        .symbols
        .scope(&np.class, "main")
        .and_then(|sc| sc.get(&p.root).cloned())
        .or_else(|| np.typed.symbols.externs.get(&p.root).cloned())
        .ok_or_else(|| CompileError::new(format!("unknown root `{}` in pack layout", p.root)))?;
    if !matches!(p.sect, Sectioning::NotIndexed) {
        let Type::Array(el) = ty else {
            return Err(CompileError::new(format!(
                "sectioned non-array `{}` in pack layout",
                p.root
            )));
        };
        ty = *el;
    }
    for f in &p.fields {
        let Type::Class(c) = &ty else {
            return Err(CompileError::new(format!(
                "field path on non-class in pack layout: {p}"
            )));
        };
        ty = np
            .typed
            .program
            .class(c)
            .and_then(|cd| cd.field(f))
            .map(|fd| fd.ty.clone())
            .ok_or_else(|| CompileError::new(format!("unknown field `{f}` of `{c}`")))?;
    }
    match ty {
        Type::Int => Ok(ScalarKind::I64),
        Type::Double => Ok(ScalarKind::F64),
        Type::Bool => Ok(ScalarKind::Bool),
        Type::RectDomain(1) => Ok(ScalarKind::Domain),
        other => Err(CompileError::new(format!(
            "cannot pack value of type `{other}` (place {p}); decompose at a different boundary"
        ))),
    }
}

// ---------------------------------------------------------------------------
// runtime pack / unpack over interpreter values

/// Concrete per-packet environment used to evaluate symbolic section bounds.
#[derive(Debug, Clone, Default)]
pub struct RuntimeEnv {
    pub symbols: HashMap<String, i64>,
}

impl RuntimeEnv {
    pub fn for_packet(pkt_var: &str, lo: i64, hi: i64) -> Self {
        let mut symbols = HashMap::new();
        symbols.insert(format!("{pkt_var}.lo"), lo);
        symbols.insert(format!("{pkt_var}.hi"), hi);
        RuntimeEnv { symbols }
    }

    pub fn with(mut self, name: impl Into<String>, v: i64) -> Self {
        self.symbols.insert(name.into(), v);
        self
    }

    fn lookup(&self, s: &str) -> Option<i64> {
        self.symbols.get(s).copied()
    }
}

/// Concrete index range (lo, hi, stride) selected by a place's section for
/// this packet.
fn concrete_range(p: &Place, env: &RuntimeEnv, value_len: usize) -> CompileResult<(i64, i64, i64)> {
    match &p.sect {
        Sectioning::NotIndexed => Ok((0, 0, 1)),
        Sectioning::All => Ok((0, value_len as i64 - 1, 1)),
        Sectioning::Range(sec) => {
            let f = |s: &str| env.lookup(s);
            let lo = sec.lo.eval(&f).ok_or_else(|| {
                CompileError::new(format!("cannot evaluate section lower bound of {p}"))
            })?;
            let hi = sec.hi.eval(&f).ok_or_else(|| {
                CompileError::new(format!("cannot evaluate section upper bound of {p}"))
            })?;
            Ok((lo, hi, sec.stride.max(1)))
        }
    }
}

/// The concrete element indices of a section (dense or strided).
fn section_indices(lo: i64, hi: i64, stride: i64) -> Vec<i64> {
    if hi < lo {
        return Vec::new();
    }
    (lo..=hi).step_by(stride.max(1) as usize).collect()
}

fn push_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Scratch size (in 8-byte words) for chunked LE conversion of value
/// runs: converted on the stack, appended as whole byte slices.
const RUN_CHUNK: usize = 64;

/// Pack a sectioned entry's whole run of elements.
///
/// Fast path — a plain array root (no field path) with an 8-byte scalar
/// kind: the array is borrowed **once** for the run and values are
/// LE-converted through a stack scratch buffer, appended chunk-at-a-time
/// (no per-element `Value` clone, hash lookup, or 8-byte push). Anything
/// else falls back to the general per-element select.
fn pack_run(
    out: &mut Vec<u8>,
    kind: ScalarKind,
    vars: &HashMap<String, Value>,
    p: &Place,
    ix: &[i64],
) -> CompileResult<()> {
    if p.fields.is_empty() && matches!(kind, ScalarKind::F64 | ScalarKind::I64) {
        if let Some(Value::Array(a)) = vars.get(&p.root) {
            let a = a.borrow();
            let mut scratch = [0u8; RUN_CHUNK * 8];
            let mut filled = 0usize;
            for &i in ix {
                let v = a.get(i as usize).ok_or_else(|| {
                    CompileError::new(format!("pack index {i} out of range for `{}`", p.root))
                })?;
                let word: u64 = match (kind, v) {
                    (ScalarKind::I64, Value::Int(x)) => *x as u64,
                    (ScalarKind::F64, Value::Double(x)) => x.to_bits(),
                    (ScalarKind::F64, Value::Int(x)) => (*x as f64).to_bits(),
                    (k, other) => {
                        return Err(CompileError::new(format!(
                            "cannot pack value `{other}` as {k:?}"
                        )))
                    }
                };
                scratch[filled * 8..filled * 8 + 8].copy_from_slice(&word.to_le_bytes());
                filled += 1;
                if filled == RUN_CHUNK {
                    out.extend_from_slice(&scratch);
                    filled = 0;
                }
            }
            if filled > 0 {
                out.extend_from_slice(&scratch[..filled * 8]);
            }
            return Ok(());
        }
    }
    for &i in ix {
        push_scalar(out, kind, &select(vars, p, Some(i))?)?;
    }
    Ok(())
}

/// Unpack a sectioned entry's whole run of elements (inverse of
/// [`pack_run`]): for a plain array root with an 8-byte scalar kind the
/// wire run is taken as one slice (one bounds check) and scattered under
/// a single `borrow_mut`; otherwise falls back to per-element store.
fn unpack_run(
    vars: &mut HashMap<String, Value>,
    p: &Place,
    ix: &[i64],
    alloc_len: usize,
    kind: ScalarKind,
    buf: &[u8],
    pos: &mut usize,
) -> CompileResult<()> {
    if ix.is_empty() {
        // Nothing crossed: leave the binding absent, like the
        // per-element path.
        return Ok(());
    }
    if p.fields.is_empty() && matches!(kind, ScalarKind::F64 | ScalarKind::I64) {
        let end = *pos + ix.len() * 8;
        let run = buf
            .get(*pos..end)
            .ok_or_else(|| CompileError::new("buffer underrun (run)"))?;
        *pos = end;
        let root = vars
            .entry(p.root.clone())
            .or_insert_with(|| Value::new_array(alloc_len, Value::Null));
        let Value::Array(a) = root else {
            return Err(CompileError::new(format!("`{}` is not an array", p.root)));
        };
        let mut a = a.borrow_mut();
        for (j, c) in run.chunks_exact(8).enumerate() {
            let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            let i = ix[j] as usize;
            if i >= a.len() {
                return Err(CompileError::new(format!("unpack index {i} out of range")));
            }
            a[i] = match kind {
                ScalarKind::F64 => Value::Double(f64::from_bits(word)),
                _ => Value::Int(word as i64),
            };
        }
        return Ok(());
    }
    for &i in ix {
        let v = read_scalar(buf, pos, kind)?;
        store(vars, p, Some(i), alloc_len, v)?;
    }
    Ok(())
}

fn read_i64(buf: &[u8], pos: &mut usize) -> CompileResult<i64> {
    let end = *pos + 8;
    let b = buf
        .get(*pos..end)
        .ok_or_else(|| CompileError::new("buffer underrun (i64)"))?;
    *pos = end;
    Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
}

fn push_scalar(out: &mut Vec<u8>, kind: ScalarKind, v: &Value) -> CompileResult<()> {
    match (kind, v) {
        (ScalarKind::I64, Value::Int(x)) => push_i64(out, *x),
        (ScalarKind::F64, Value::Double(x)) => push_i64(out, x.to_bits() as i64),
        (ScalarKind::F64, Value::Int(x)) => push_i64(out, (*x as f64).to_bits() as i64),
        (ScalarKind::Bool, Value::Bool(x)) => out.push(*x as u8),
        (ScalarKind::Domain, Value::Domain(lo, hi)) => {
            push_i64(out, *lo);
            push_i64(out, *hi);
        }
        // Unwritten slots of expanded arrays keep their default; Null can
        // only appear for object defaults, which scalar places never select.
        (k, other) => {
            return Err(CompileError::new(format!(
                "cannot pack value `{other}` as {k:?}"
            )))
        }
    }
    Ok(())
}

fn read_scalar(buf: &[u8], pos: &mut usize, kind: ScalarKind) -> CompileResult<Value> {
    Ok(match kind {
        ScalarKind::I64 => Value::Int(read_i64(buf, pos)?),
        ScalarKind::F64 => Value::Double(f64::from_bits(read_i64(buf, pos)? as u64)),
        ScalarKind::Bool => {
            let b = *buf
                .get(*pos)
                .ok_or_else(|| CompileError::new("buffer underrun (bool)"))?;
            *pos += 1;
            Value::Bool(b != 0)
        }
        ScalarKind::Domain => {
            let lo = read_i64(buf, pos)?;
            let hi = read_i64(buf, pos)?;
            Value::Domain(lo, hi)
        }
    })
}

/// Extract the scalar a place selects at element index `idx` from `vars`.
fn select(vars: &HashMap<String, Value>, p: &Place, idx: Option<i64>) -> CompileResult<Value> {
    let root = vars
        .get(&p.root)
        .ok_or_else(|| CompileError::new(format!("missing variable `{}` while packing", p.root)))?;
    let mut cur = match (idx, root) {
        (None, v) => v.clone(),
        (Some(i), Value::Array(a)) => {
            let a = a.borrow();
            a.get(i as usize).cloned().ok_or_else(|| {
                CompileError::new(format!("pack index {i} out of range for `{}`", p.root))
            })?
        }
        (Some(_), other) => {
            return Err(CompileError::new(format!(
                "sectioned place `{p}` but `{}` is `{other}`",
                p.root
            )))
        }
    };
    for f in &p.fields {
        let Value::Object(o) = &cur else {
            // default-constructed slot never touched upstream: substitute
            // the field type's default (numeric zero)
            return Ok(Value::Double(0.0));
        };
        let next =
            o.borrow().fields.get(f).cloned().ok_or_else(|| {
                CompileError::new(format!("missing field `{f}` while packing {p}"))
            })?;
        cur = next;
    }
    Ok(cur)
}

/// Store a scalar into `vars` at the slot a place selects; allocates arrays
/// and objects as needed (the receiving filter starts from an empty frame).
fn store(
    vars: &mut HashMap<String, Value>,
    p: &Place,
    idx: Option<i64>,
    alloc_len: usize,
    v: Value,
) -> CompileResult<()> {
    let root = vars.entry(p.root.clone()).or_insert_with(|| match idx {
        Some(_) => Value::new_array(alloc_len, Value::Null),
        None => Value::Null,
    });
    if p.fields.is_empty() {
        match idx {
            None => {
                *root = v;
            }
            Some(i) => {
                let Value::Array(a) = root else {
                    return Err(CompileError::new(format!("`{}` is not an array", p.root)));
                };
                let mut a = a.borrow_mut();
                let i = i as usize;
                if i >= a.len() {
                    return Err(CompileError::new(format!("unpack index {i} out of range")));
                }
                a[i] = v;
            }
        }
        return Ok(());
    }
    // field path: ensure an object exists at the slot, then walk/create
    let slot_obj = |slot: &mut Value| -> Value {
        if !matches!(slot, Value::Object(_)) {
            *slot = Value::new_object("__packed", HashMap::new());
        }
        slot.clone()
    };
    let mut cur = match idx {
        None => slot_obj(root),
        Some(i) => {
            let Value::Array(a) = root else {
                return Err(CompileError::new(format!("`{}` is not an array", p.root)));
            };
            let mut a = a.borrow_mut();
            let i = i as usize;
            if i >= a.len() {
                return Err(CompileError::new(format!("unpack index {i} out of range")));
            }
            slot_obj(&mut a[i])
        }
    };
    for (k, f) in p.fields.iter().enumerate() {
        let Value::Object(o) = &cur else {
            unreachable!("slot_obj guarantees an object");
        };
        if k == p.fields.len() - 1 {
            o.borrow_mut().fields.insert(f.clone(), v);
            return Ok(());
        }
        let next = {
            let mut ob = o.borrow_mut();
            ob.fields
                .entry(f.clone())
                .or_insert_with(|| Value::new_object("__packed", HashMap::new()))
                .clone()
        };
        cur = next;
    }
    unreachable!("fields is non-empty")
}

/// Pack the layout's values from `vars` into a byte buffer.
///
/// Header: `pkt.lo`, `pkt.hi` (i64 each). If the layout is filtered, the
/// passing-index list (count + absolute indices) follows; sectioned entries
/// then carry `selection.len()` elements each instead of their full range.
pub fn pack(
    layout: &PackLayout,
    vars: &HashMap<String, Value>,
    env: &RuntimeEnv,
    pkt: (i64, i64),
    selection: Option<&[i64]>,
) -> CompileResult<Vec<u8>> {
    if layout.filtered.is_some() && selection.is_none() {
        return Err(CompileError::new(
            "filtered layout requires a selection list",
        ));
    }

    // The element index list for a sectioned entry.
    let indices_for = |p: &Place| -> CompileResult<Option<Vec<i64>>> {
        if matches!(p.sect, Sectioning::NotIndexed) {
            return Ok(None);
        }
        let root_len = vars
            .get(&p.root)
            .and_then(|v| match v {
                Value::Array(a) => Some(a.borrow().len()),
                _ => None,
            })
            .unwrap_or(0);
        let (slo, shi, stride) = concrete_range(p, env, root_len)?;
        // Selection compaction applies only to sections that map each
        // domain point to exactly one element (dense, packet-sized); other
        // shapes (strided, multi-element-per-point) travel in full.
        let per_point = stride == 1 && shi - slo == pkt.1 - pkt.0;
        if let (Some(sel), Some(_), true) = (selection, layout.filtered, per_point) {
            // Selection indices are absolute domain points; the section's
            // lower bound is aligned with the packet's first point, so the
            // array slot for point `i` is `section_lo + (i − pkt.lo)`
            // (identity for absolute dense arrays, rebasing for expanded
            // ones).
            return Ok(Some(sel.iter().map(|i| slo + (i - pkt.0)).collect()));
        }
        Ok(Some(section_indices(slo, shi, stride)))
    };

    // Resolve every entry's index list first, so the output buffer can be
    // reserved at its exact final size — one allocation, zero growth.
    let mut inst_indices: Vec<Option<Vec<i64>>> = Vec::new();
    for e in &layout.instance_wise {
        inst_indices.push(indices_for(&e.place)?);
    }
    let mut fw_indices: Vec<Option<Vec<i64>>> = Vec::new();
    for e in &layout.field_wise {
        fw_indices.push(indices_for(&e.place)?);
    }
    let entry_bytes = |e: &PackEntry, ix: &Option<Vec<i64>>| -> usize {
        match ix {
            None => e.elem.byte_len(),
            Some(v) => v.len() * e.elem.byte_len(),
        }
    };
    let total: usize = 16
        + selection
            .filter(|_| layout.filtered.is_some())
            .map_or(0, |s| 8 + 8 * s.len())
        + 8
        + layout
            .instance_wise
            .iter()
            .zip(&inst_indices)
            .map(|(e, ix)| entry_bytes(e, ix))
            .sum::<usize>()
        + layout
            .field_wise
            .iter()
            .zip(&fw_indices)
            .map(|(e, ix)| 8 + entry_bytes(e, ix))
            .sum::<usize>();

    let mut out = Vec::with_capacity(total);
    push_i64(&mut out, pkt.0);
    push_i64(&mut out, pkt.1);
    if layout.filtered.is_some() {
        let sel = selection.expect("checked above");
        push_i64(&mut out, sel.len() as i64);
        for i in sel {
            push_i64(&mut out, *i);
        }
    }

    // Instance-wise: interleave entries element-by-element. A single
    // sectioned entry degenerates to one contiguous run — take the bulk
    // path; genuine interleaves (the A3 instance-wise trade-off) go
    // per-position.
    let count = inst_indices
        .iter()
        .filter_map(|ix| ix.as_ref().map(|v| v.len()))
        .max()
        .unwrap_or(0);
    push_i64(&mut out, count as i64);
    if let [e] = &layout.instance_wise[..] {
        match &inst_indices[0] {
            None => push_scalar(&mut out, e.elem, &select(vars, &e.place, None)?)?,
            Some(ix) => pack_run(&mut out, e.elem, vars, &e.place, ix)?,
        }
    } else {
        for pos in 0..count.max(1) {
            for (e, ix) in layout.instance_wise.iter().zip(&inst_indices) {
                match ix {
                    None => {
                        if pos == 0 {
                            push_scalar(&mut out, e.elem, &select(vars, &e.place, None)?)?;
                        }
                    }
                    Some(ix) => {
                        if let Some(i) = ix.get(pos) {
                            push_scalar(&mut out, e.elem, &select(vars, &e.place, Some(*i))?)?;
                        }
                    }
                }
            }
            if count == 0 {
                break;
            }
        }
    }

    // Field-wise: each entry contiguous, preceded by its own count — the
    // shape the bulk run path is built for.
    for (e, ix) in layout.field_wise.iter().zip(&fw_indices) {
        match ix {
            None => {
                push_i64(&mut out, -1); // scalar marker
                push_scalar(&mut out, e.elem, &select(vars, &e.place, None)?)?;
            }
            Some(ix) => {
                push_i64(&mut out, ix.len() as i64);
                pack_run(&mut out, e.elem, vars, &e.place, ix)?;
            }
        }
    }
    debug_assert_eq!(out.len(), total, "pack size precomputation must be exact");
    Ok(out)
}

fn pkt_lo_symbol(env: &RuntimeEnv) -> String {
    env.symbols
        .keys()
        .find(|k| k.ends_with(".lo"))
        .cloned()
        .unwrap_or_else(|| "pkt.lo".to_string())
}

/// Result of unpacking a buffer.
#[derive(Debug)]
pub struct Unpacked {
    pub pkt: (i64, i64),
    /// Passing indices (absolute) when the layout was filtered.
    pub selection: Option<Vec<i64>>,
    /// Variable bindings reconstructed from the payload.
    pub vars: HashMap<String, Value>,
}

/// Unpack a buffer produced by [`pack`] with the same layout.
pub fn unpack(layout: &PackLayout, env: &RuntimeEnv, buf: &[u8]) -> CompileResult<Unpacked> {
    let mut pos = 0usize;
    let lo = read_i64(buf, &mut pos)?;
    let hi = read_i64(buf, &mut pos)?;
    let mut env = env.clone();
    // Re-seed the packet symbols from the header so section ranges match.
    let pkt_var_lo = pkt_lo_symbol(&env);
    let pkt_var = pkt_var_lo.trim_end_matches(".lo").to_string();
    env.symbols.insert(format!("{pkt_var}.lo"), lo);
    env.symbols.insert(format!("{pkt_var}.hi"), hi);

    let selection = if layout.filtered.is_some() {
        let n = read_i64(buf, &mut pos)?;
        let mut sel = Vec::with_capacity(n as usize);
        for _ in 0..n {
            sel.push(read_i64(buf, &mut pos)?);
        }
        Some(sel)
    } else {
        None
    };

    let mut vars: HashMap<String, Value> = HashMap::new();
    let packet_len = (hi - lo + 1).max(0) as usize;

    let indices_for = |p: &Place| -> CompileResult<Option<Vec<i64>>> {
        if matches!(p.sect, Sectioning::NotIndexed) {
            return Ok(None);
        }
        let (slo, shi, stride) = concrete_range(p, &env, packet_len)?;
        let per_point = stride == 1 && shi - slo == hi - lo;
        if let (Some(sel), true) = (&selection, per_point) {
            return Ok(Some(sel.iter().map(|i| slo + (i - lo)).collect()));
        }
        Ok(Some(section_indices(slo, shi, stride)))
    };
    // Allocation length for arrays: enough to hold the section's top index.
    let alloc_len = |_p: &Place, ix: &Option<Vec<i64>>| -> usize {
        match ix {
            Some(v) => v.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0),
            None => 0,
        }
        .max(packet_len)
    };

    let mut inst_indices: Vec<Option<Vec<i64>>> = Vec::new();
    for e in &layout.instance_wise {
        inst_indices.push(indices_for(&e.place)?);
    }
    let count = read_i64(buf, &mut pos)? as usize;
    // A single sectioned instance-wise entry is one contiguous run on the
    // wire — scatter it in bulk; genuine interleaves go per-position.
    let single_run = matches!(
        (&layout.instance_wise[..], &inst_indices[..]),
        ([_], [Some(list)]) if list.len() == count
    );
    if single_run {
        let e = &layout.instance_wise[0];
        let ix = inst_indices[0].as_ref().expect("matched Some");
        unpack_run(
            &mut vars,
            &e.place,
            ix,
            alloc_len(&e.place, &inst_indices[0]),
            e.elem,
            buf,
            &mut pos,
        )?;
    } else {
        for p in 0..count.max(1) {
            for (e, ix) in layout.instance_wise.iter().zip(&inst_indices) {
                match ix {
                    None => {
                        if p == 0 {
                            let v = read_scalar(buf, &mut pos, e.elem)?;
                            store(&mut vars, &e.place, None, 0, v)?;
                        }
                    }
                    Some(list) => {
                        if let Some(i) = list.get(p) {
                            let v = read_scalar(buf, &mut pos, e.elem)?;
                            store(&mut vars, &e.place, Some(*i), alloc_len(&e.place, ix), v)?;
                        }
                    }
                }
            }
            if count == 0 {
                break;
            }
        }
    }

    for e in &layout.field_wise {
        let n = read_i64(buf, &mut pos)?;
        if n < 0 {
            let v = read_scalar(buf, &mut pos, e.elem)?;
            store(&mut vars, &e.place, None, 0, v)?;
        } else {
            let ix = indices_for(&e.place)?
                .ok_or_else(|| CompileError::new("sectioned payload for scalar place"))?;
            if ix.len() != n as usize {
                return Err(CompileError::new(format!(
                    "count mismatch unpacking {}: wire {} vs layout {}",
                    e.place,
                    n,
                    ix.len()
                )));
            }
            let alen = alloc_len(&e.place, &Some(ix.clone()));
            unpack_run(&mut vars, &e.place, &ix, alen, e.elem, buf, &mut pos)?;
        }
    }

    Ok(Unpacked {
        pkt: (lo, hi),
        selection,
        vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{Section, SymExpr};

    fn dense_place(root: &str, lo: i64, hi: i64) -> Place {
        Place::sliced(root, Section::dense(SymExpr::konst(lo), SymExpr::konst(hi)))
    }

    fn entry(place: Place, first: usize, elem: ScalarKind) -> PackEntry {
        PackEntry {
            place,
            first_consumer: first,
            elem,
        }
    }

    #[test]
    fn roundtrip_instance_wise() {
        let layout = PackLayout {
            instance_wise: vec![
                entry(dense_place("xs", 0, 3), 1, ScalarKind::F64),
                entry(dense_place("ys", 0, 3), 1, ScalarKind::I64),
            ],
            ..Default::default()
        };
        let mut vars = HashMap::new();
        vars.insert(
            "xs".to_string(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                (0..4).map(|i| Value::Double(i as f64 * 1.5)).collect(),
            ))),
        );
        vars.insert(
            "ys".to_string(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                (0..4).map(Value::Int).collect(),
            ))),
        );
        let env = RuntimeEnv::for_packet("pkt", 0, 3);
        let buf = pack(&layout, &vars, &env, (0, 3), None).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        assert_eq!(un.pkt, (0, 3));
        let xs = &un.vars["xs"];
        let ys = &un.vars["ys"];
        assert!(xs.deep_eq(&vars["xs"]));
        assert!(ys.deep_eq(&vars["ys"]));
    }

    #[test]
    fn roundtrip_scalars_and_domains() {
        let layout = PackLayout {
            field_wise: vec![
                entry(Place::var("count"), 2, ScalarKind::I64),
                entry(Place::var("flag"), 2, ScalarKind::Bool),
                entry(Place::var("dom"), 3, ScalarKind::Domain),
            ],
            ..Default::default()
        };
        let mut vars = HashMap::new();
        vars.insert("count".to_string(), Value::Int(42));
        vars.insert("flag".to_string(), Value::Bool(true));
        vars.insert("dom".to_string(), Value::Domain(5, 9));
        let env = RuntimeEnv::for_packet("pkt", 0, 0);
        let buf = pack(&layout, &vars, &env, (0, 0), None).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        assert!(un.vars["count"].deep_eq(&Value::Int(42)));
        assert!(un.vars["flag"].deep_eq(&Value::Bool(true)));
        assert!(un.vars["dom"].deep_eq(&Value::Domain(5, 9)));
    }

    #[test]
    fn roundtrip_object_fields() {
        // tri[0..2].x packed as a field of objects.
        let mut p = dense_place("tri", 0, 2);
        p.fields.push("x".to_string());
        let layout = PackLayout {
            instance_wise: vec![entry(p, 1, ScalarKind::F64)],
            ..Default::default()
        };
        let mk_obj = |x: f64| {
            let mut f = HashMap::new();
            f.insert("x".to_string(), Value::Double(x));
            f.insert("y".to_string(), Value::Double(-x));
            Value::new_object("Tri", f)
        };
        let mut vars = HashMap::new();
        vars.insert(
            "tri".to_string(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(vec![
                mk_obj(1.0),
                mk_obj(2.0),
                mk_obj(3.0),
            ]))),
        );
        let env = RuntimeEnv::for_packet("pkt", 0, 2);
        let buf = pack(&layout, &vars, &env, (0, 2), None).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        // Only x made it across.
        if let Value::Array(a) = &un.vars["tri"] {
            let a = a.borrow();
            for (i, v) in a.iter().enumerate() {
                let Value::Object(o) = v else {
                    panic!("not an object")
                };
                assert!(o.borrow().fields["x"].deep_eq(&Value::Double((i + 1) as f64)));
                assert!(!o.borrow().fields.contains_key("y"));
            }
        } else {
            panic!("tri not an array");
        }
    }

    #[test]
    fn filtered_layout_compacts_and_scatters() {
        // Packet [10, 17]; rebased array vs__x of len 8; selection keeps
        // absolute indices 11, 13, 16.
        let p = dense_place_sym("v__x");
        let layout = PackLayout {
            instance_wise: vec![entry(p, 1, ScalarKind::F64)],
            filtered: Some(0),
            ..Default::default()
        };
        let mut vars = HashMap::new();
        vars.insert(
            "v__x".to_string(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                (0..8).map(|i| Value::Double(i as f64)).collect(),
            ))),
        );
        let env = RuntimeEnv::for_packet("pkt", 10, 17);
        let sel = vec![11i64, 13, 16];
        let buf = pack(&layout, &vars, &env, (10, 17), Some(&sel)).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        assert_eq!(un.selection.as_deref(), Some(&sel[..]));
        if let Value::Array(a) = &un.vars["v__x"] {
            let a = a.borrow();
            assert_eq!(a.len(), 8);
            assert!(a[1].deep_eq(&Value::Double(1.0)));
            assert!(a[3].deep_eq(&Value::Double(3.0)));
            assert!(a[6].deep_eq(&Value::Double(6.0)));
            assert!(matches!(a[0], Value::Null)); // untouched slot
        } else {
            panic!("not an array");
        }
        // Volume check: only 3 elements crossed.
        let dense_buf = {
            let layout = PackLayout {
                instance_wise: vec![entry(dense_place_sym("v__x"), 1, ScalarKind::F64)],
                ..Default::default()
            };
            pack(&layout, &vars, &env, (10, 17), None).unwrap()
        };
        assert!(buf.len() < dense_buf.len());
    }

    /// Place with section [0 : pkt.hi - pkt.lo] (rebased expanded array).
    fn dense_place_sym(root: &str) -> Place {
        Place::sliced(
            root,
            Section::dense(
                SymExpr::konst(0),
                SymExpr::sym("pkt.hi").sub(&SymExpr::sym("pkt.lo")),
            ),
        )
    }

    #[test]
    fn layout_rule_instance_vs_field_wise() {
        // Set with three places; consumers: filter 1 uses a and b, filter 2
        // uses c. a,b → instance-wise; c → field-wise.
        use crate::place::PlaceSet;
        let a = dense_place("a", 0, 7);
        let b = dense_place("b", 0, 7);
        let c = dense_place("c", 0, 7);
        let set: PlaceSet = [a.clone(), b.clone(), c.clone()].into_iter().collect();

        let mut cons1 = PlaceSet::new();
        cons1.insert(a.clone());
        cons1.insert(b.clone());
        let mut cons2 = PlaceSet::new();
        cons2.insert(c.clone());

        // A minimal NormalizedPipeline for scalar_kind resolution.
        let np = tiny_np();
        let layout = compute_layout(&np, &set, &[cons1, cons2], 1, None).unwrap();
        let inst: Vec<&str> = layout
            .instance_wise
            .iter()
            .map(|e| e.place.root.as_str())
            .collect();
        let fw: Vec<&str> = layout
            .field_wise
            .iter()
            .map(|e| e.place.root.as_str())
            .collect();
        assert_eq!(inst, vec!["a", "b"]);
        assert_eq!(fw, vec!["c"]);
        assert_eq!(layout.field_wise[0].first_consumer, 2);
    }

    #[test]
    fn layout_sorts_field_wise_by_first_read() {
        use crate::place::PlaceSet;
        let a = dense_place("a", 0, 7);
        let c = dense_place("c", 0, 7);
        let set: PlaceSet = [a.clone(), c.clone()].into_iter().collect();
        let empty = PlaceSet::new();
        let mut cons2 = PlaceSet::new();
        cons2.insert(c.clone());
        let mut cons3 = PlaceSet::new();
        cons3.insert(a.clone());
        let np = tiny_np();
        // consumers: filter1 none, filter2 uses c, filter3 uses a.
        let layout = compute_layout(&np, &set, &[empty, cons2, cons3], 1, None).unwrap();
        assert!(layout.instance_wise.is_empty());
        let fw: Vec<&str> = layout
            .field_wise
            .iter()
            .map(|e| e.place.root.as_str())
            .collect();
        assert_eq!(fw, vec!["c", "a"], "sorted by first reader");
    }

    fn tiny_np() -> NormalizedPipeline {
        let src = r#"
            extern int n;
            extern double[] a;
            extern double[] b;
            extern double[] c;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class Main { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    foreach (i in pkt) { acc.add(a[i] + b[i] + c[i]); }
                }
                print(acc.t);
            } }
        "#;
        crate::normalize::normalize(&cgp_lang::frontend(src).unwrap()).unwrap()
    }
}
