//! Cost model (Section 4.3).
//!
//! Computation time for an atomic filter is estimated from its operation
//! counts (floating point, integer, memory) and the computing unit's power;
//! communication time from the volume crossing a boundary and the link
//! bandwidth:
//!
//! ```text
//! Cost_comp(P(C), Task(f)) = weighted_ops(f) / P(C)
//! Cost_comm(B(L), Vol(f))  = latency(L) + Vol(f) / B(L)
//! ```
//!
//! Total pipeline time over `N` packets (either a computing unit or a link
//! is the bottleneck):
//!
//! ```text
//! (N − 1) · T(bottleneck) + Σ_i T(C_i) + Σ_i T(L_i)
//! ```
//!
//! Operation counts are computed by walking the atom's code with symbolic
//! trip counts instantiated from a [`CostEnv`] (packet size, extern scalar
//! values, per-conditional selectivity from workload metadata).

use crate::gencons::reduction_roots;
use crate::graph::{AtomCode, BoundaryGraph, BoundaryKind};
use crate::normalize::NormalizedPipeline;
use crate::place::{PlaceSet, Sectioning};
use cgp_lang::ast::*;
use std::collections::HashMap;
use std::ops::Add;

/// Operation counts for a piece of code (fractional: trip counts and
/// selectivities scale them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCount {
    pub flops: f64,
    pub iops: f64,
    pub mem: f64,
}

impl OpCount {
    pub fn zero() -> Self {
        Self::default()
    }

    pub fn scale(self, k: f64) -> OpCount {
        OpCount {
            flops: self.flops * k,
            iops: self.iops * k,
            mem: self.mem * k,
        }
    }

    /// Weighted total operations.
    pub fn weighted(&self, w: &CostWeights) -> f64 {
        self.flops * w.flop + self.iops * w.iop + self.mem * w.mem
    }
}

impl Add for OpCount {
    type Output = OpCount;

    fn add(self, o: OpCount) -> OpCount {
        OpCount {
            flops: self.flops + o.flops,
            iops: self.iops + o.iops,
            mem: self.mem + o.mem,
        }
    }
}

/// Relative costs of operation classes (in "standard op" units).
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    pub flop: f64,
    pub iop: f64,
    pub mem: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            flop: 1.0,
            iop: 0.5,
            mem: 0.5,
        }
    }
}

/// Workload-dependent inputs to cost estimation.
#[derive(Debug, Clone)]
pub struct CostEnv {
    /// Concrete values for symbols appearing in sections/trip counts:
    /// `pkt.lo`, `pkt.hi`, extern scalars, `len.<array>` for whole-array
    /// sizes.
    pub symbols: HashMap<String, i64>,
    /// Estimated selectivity (pass fraction in `[0, 1]`) per conditional id.
    pub selectivity: HashMap<usize, f64>,
    /// Fallback trip count for loops whose bounds are unknown.
    pub default_trip: f64,
    /// Fallback length for arrays with unknown size.
    pub default_array_len: i64,
    pub weights: CostWeights,
}

impl CostEnv {
    /// Environment for one packet of `packet_size` points starting at 0.
    pub fn for_packet(packet_size: i64) -> Self {
        let mut symbols = HashMap::new();
        symbols.insert("pkt.lo".to_string(), 0);
        symbols.insert("pkt.hi".to_string(), packet_size - 1);
        CostEnv {
            symbols,
            selectivity: HashMap::new(),
            default_trip: 16.0,
            default_array_len: 1024,
            weights: CostWeights::default(),
        }
    }

    pub fn with_symbol(mut self, name: impl Into<String>, v: i64) -> Self {
        self.symbols.insert(name.into(), v);
        self
    }

    pub fn with_selectivity(mut self, cond_id: usize, s: f64) -> Self {
        self.selectivity.insert(cond_id, s);
        self
    }

    fn lookup(&self, name: &str) -> Option<i64> {
        // `d.lo`/`d.hi` for the packet variable are pre-seeded; other domain
        // symbols fall back to the packet bounds (fissioned domains are the
        // packet domain in all our programs).
        if let Some(v) = self.symbols.get(name) {
            return Some(*v);
        }
        if name.ends_with(".lo") {
            return self.symbols.get("pkt.lo").copied();
        }
        if name.ends_with(".hi") {
            return self.symbols.get("pkt.hi").copied();
        }
        None
    }

    /// Selectivity for a conditional (default 0.5 when unmeasured).
    pub fn sel(&self, cond_id: usize) -> f64 {
        *self.selectivity.get(&cond_id).unwrap_or(&0.5)
    }
}

// ---------------------------------------------------------------------------
// operation counting

/// Count operations for one atomic filter under `env`.
pub fn count_atom(np: &NormalizedPipeline, code: &AtomCode, env: &CostEnv) -> OpCount {
    let mut counter = Counter { np, env, depth: 0 };
    match code {
        AtomCode::Straight(stmts) => counter.stmts(stmts),
        AtomCode::Foreach(s) => counter.stmt(s),
        AtomCode::CondSelect { domain, cond, .. } => {
            let trips = counter.domain_trips(domain);
            counter.expr(cond).scale(trips)
        }
        AtomCode::CondBody {
            domain,
            body,
            cond_id,
            ..
        } => {
            let trips = counter.domain_trips(domain) * env.sel(*cond_id);
            counter.stmts(&body.stmts).scale(trips)
        }
    }
}

/// Count operations for an arbitrary statement slice (prologue/epilogue).
pub fn count_stmts(np: &NormalizedPipeline, stmts: &[Stmt], env: &CostEnv) -> OpCount {
    Counter { np, env, depth: 0 }.stmts(stmts)
}

struct Counter<'a> {
    np: &'a NormalizedPipeline,
    env: &'a CostEnv,
    depth: usize,
}

impl Counter<'_> {
    fn stmts(&mut self, stmts: &[Stmt]) -> OpCount {
        stmts
            .iter()
            .map(|s| self.stmt(s))
            .fold(OpCount::zero(), OpCount::add)
    }

    fn stmt(&mut self, s: &Stmt) -> OpCount {
        match &s.kind {
            StmtKind::VarDecl { init, .. } => {
                let mut c = OpCount {
                    mem: 1.0,
                    ..OpCount::zero()
                };
                if let Some(e) = init {
                    c = c.add(self.expr(e));
                }
                c
            }
            StmtKind::Assign { target, op, value } => {
                let mut c = OpCount {
                    mem: 1.0,
                    ..OpCount::zero()
                };
                if *op != AssignOp::Set {
                    c.flops += 1.0;
                }
                match target {
                    LValue::Field(b, _) => c = c.add(self.expr(b)),
                    LValue::Index(b, i) => {
                        c = c.add(self.expr(b)).add(self.expr(i));
                        c.mem += 1.0;
                    }
                    LValue::Var(_) => {}
                }
                c.add(self.expr(value))
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // Expected cost: half of each branch (no per-site
                // selectivity knowledge inside segments).
                let mut c = self.expr(cond);
                c = c.add(self.stmts(&then_blk.stmts).scale(0.5));
                if let Some(e) = else_blk {
                    c = c.add(self.stmts(&e.stmts).scale(0.5));
                }
                c
            }
            StmtKind::While { cond, body } => {
                let t = self.env.default_trip;
                self.expr(cond).add(self.stmts(&body.stmts)).scale(t)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let trips = self.for_trips(init, cond);
                let mut c = OpCount::zero();
                if let Some(i) = init {
                    c = c.add(self.stmt(i));
                }
                let mut per = OpCount::zero();
                if let Some(e) = cond {
                    per = per.add(self.expr(e));
                }
                if let Some(st) = step {
                    per = per.add(self.stmt(st));
                }
                per = per.add(self.stmts(&body.stmts));
                c.add(per.scale(trips))
            }
            StmtKind::Foreach { domain, body, .. } => {
                let trips = self.domain_trips(domain);
                self.stmts(&body.stmts).scale(trips)
            }
            StmtKind::Pipelined { .. } => OpCount::zero(),
            StmtKind::Return(v) => v.as_ref().map(|e| self.expr(e)).unwrap_or_default(),
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::Block(b) => self.stmts(&b.stmts),
            StmtKind::Break | StmtKind::Continue => OpCount::zero(),
        }
    }

    fn domain_trips(&mut self, domain: &Expr) -> f64 {
        match &domain.kind {
            ExprKind::Var(d) => {
                let lo = self.env.lookup(&format!("{d}.lo"));
                let hi = self.env.lookup(&format!("{d}.hi"));
                match (lo, hi) {
                    (Some(l), Some(h)) => (h - l + 1).max(0) as f64,
                    _ => self.env.default_trip,
                }
            }
            ExprKind::DomainLit(lo, hi) => {
                let l = self.const_int(lo);
                let h = self.const_int(hi);
                match (l, h) {
                    (Some(l), Some(h)) => (h - l + 1).max(0) as f64,
                    _ => self.env.default_trip,
                }
            }
            _ => self.env.default_trip,
        }
    }

    fn for_trips(&mut self, init: &Option<Box<Stmt>>, cond: &Option<Expr>) -> f64 {
        let lo = init.as_ref().and_then(|s| match &s.kind {
            StmtKind::VarDecl { init: Some(e), .. } => self.const_int(e),
            _ => None,
        });
        let hi = cond.as_ref().and_then(|e| match &e.kind {
            ExprKind::Binary(BinOp::Lt, _, r) => self.const_int(r),
            ExprKind::Binary(BinOp::Le, _, r) => self.const_int(r).map(|v| v + 1),
            _ => None,
        });
        match (lo, hi) {
            (Some(l), Some(h)) => (h - l).max(0) as f64,
            _ => self.env.default_trip,
        }
    }

    fn const_int(&self, e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(*v),
            ExprKind::Var(n) => self.env.lookup(n),
            ExprKind::Unary(UnOp::Neg, x) => self.const_int(x).map(|v| -v),
            ExprKind::Binary(op, l, r) => {
                let (a, b) = (self.const_int(l)?, self.const_int(r)?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => (b != 0).then(|| a / b),
                    _ => None,
                }
            }
            ExprKind::Call {
                recv: Some(r),
                method,
                args,
            } if args.is_empty() => {
                if let ExprKind::Var(d) = &r.kind {
                    match method.as_str() {
                        "lo" => self.env.lookup(&format!("{d}.lo")),
                        "hi" => self.env.lookup(&format!("{d}.hi")),
                        "size" => {
                            let lo = self.env.lookup(&format!("{d}.lo"))?;
                            let hi = self.env.lookup(&format!("{d}.hi"))?;
                            Some((hi - lo + 1).max(0))
                        }
                        _ => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn expr(&mut self, e: &Expr) -> OpCount {
        match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::DoubleLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::Null => OpCount::zero(),
            ExprKind::Var(_) | ExprKind::This => OpCount {
                mem: 1.0,
                ..OpCount::zero()
            },
            ExprKind::Field(b, _) => self.expr(b).add(OpCount {
                mem: 1.0,
                ..OpCount::zero()
            }),
            ExprKind::Index(b, i) => self.expr(b).add(self.expr(i)).add(OpCount {
                mem: 1.0,
                iops: 1.0,
                ..OpCount::zero()
            }),
            ExprKind::Unary(_, x) => self.expr(x).add(OpCount {
                iops: 1.0,
                ..OpCount::zero()
            }),
            ExprKind::Binary(op, l, r) => {
                let mut c = self.expr(l).add(self.expr(r));
                // Without per-expression type inference here, count double
                // arithmetic as flops when either side mentions a double
                // literal or a sqrt-ish call — otherwise attribute
                // arithmetic half/half. Simpler and stable: arithmetic ops
                // count as one flop, comparisons/logic as one iop.
                if op.is_arith() {
                    c.flops += 1.0;
                } else {
                    c.iops += 1.0;
                }
                c
            }
            ExprKind::Ternary(c0, a, b) => self
                .expr(c0)
                .add(self.expr(a).scale(0.5))
                .add(self.expr(b).scale(0.5)),
            ExprKind::Call { recv, method, args } => {
                let mut c = args
                    .iter()
                    .map(|a| self.expr(a))
                    .fold(OpCount::zero(), OpCount::add);
                if let Some(r) = recv {
                    c = c.add(self.expr(r));
                }
                c.add(self.call_cost(recv, method))
            }
            ExprKind::New(_) => OpCount {
                mem: 4.0,
                ..OpCount::zero()
            },
            ExprKind::NewArray(_, len) => self.expr(len).add(OpCount {
                mem: 8.0,
                ..OpCount::zero()
            }),
            ExprKind::DomainLit(lo, hi) => self.expr(lo).add(self.expr(hi)),
        }
    }

    fn call_cost(&mut self, recv: &Option<Box<Expr>>, method: &str) -> OpCount {
        if recv.is_none() && is_builtin(method) {
            return builtin_cost(method);
        }
        if recv.is_some() && (DOMAIN_METHODS.contains(&method) || ARRAY_METHODS.contains(&method)) {
            return OpCount {
                iops: 1.0,
                ..OpCount::zero()
            };
        }
        if self.depth >= 8 {
            return OpCount {
                flops: 4.0,
                iops: 4.0,
                mem: 4.0,
            }; // recursion fallback
        }
        // Resolve the method body: receiver's class if known, else search
        // all classes for a uniquely-named method (counting only).
        let body = self.resolve_method(recv, method);
        match body {
            Some(m) => {
                self.depth += 1;
                let c = self.stmts(&m.body.stmts);
                self.depth -= 1;
                c.add(CALL_OVERHEAD)
            }
            None => OpCount {
                flops: 2.0,
                iops: 2.0,
                mem: 2.0,
            },
        }
    }

    fn resolve_method(&self, recv: &Option<Box<Expr>>, method: &str) -> Option<MethodDecl> {
        let prog = &self.np.typed.program;
        if recv.is_none() {
            if let Some(m) = prog.method(&self.np.class, method) {
                return Some(m.clone());
            }
        }
        let mut found: Option<MethodDecl> = None;
        for c in &prog.classes {
            if let Some(m) = c.methods.iter().find(|m| m.name == method) {
                if found.is_some() {
                    return found; // ambiguous: first match is good enough for counting
                }
                found = Some(m.clone());
            }
        }
        found
    }
}

/// Dispatch-and-frame overhead charged per user-method invocation, on top
/// of the callee body's counted operations.
///
/// Calibrated against the committed `BENCH_vm.json` filter-body
/// measurements: with the old token charge (2 mem ops) the knn body
/// (arithmetic-dominated, ~1 call per element) and the vmscope body
/// (~48 `img.put` calls per row) implied per-engine compute powers 12×
/// apart on the VM and 3× apart on the tree-walker — i.e. calls were the
/// dominant un-modeled cost. At ~100 weighted standard ops per call the
/// two programs' implied powers agree to within 2.6× (VM) / 1.5×
/// (interpreter), matching the measured per-invoke cost of both engines
/// (argument copies, frame slot binding, write-back; the tree-walker adds
/// scope-map churn on the same order relative to its own rate).
const CALL_OVERHEAD: OpCount = OpCount {
    flops: 0.0,
    iops: 120.0,
    mem: 80.0,
};

/// Standard-operation estimates for builtins.
fn builtin_cost(name: &str) -> OpCount {
    match name {
        "sqrt" => OpCount {
            flops: 8.0,
            ..OpCount::zero()
        },
        "pow" | "exp" | "log" => OpCount {
            flops: 20.0,
            ..OpCount::zero()
        },
        "floor" | "ceil" | "abs" | "toInt" | "toDouble" => OpCount {
            flops: 1.0,
            ..OpCount::zero()
        },
        "min" | "max" => OpCount {
            flops: 1.0,
            ..OpCount::zero()
        },
        "print" => OpCount {
            mem: 4.0,
            ..OpCount::zero()
        },
        _ => OpCount {
            flops: 1.0,
            ..OpCount::zero()
        },
    }
}

// ---------------------------------------------------------------------------
// volume model

/// Estimated bytes for one boundary's ReqComm set under `env`. If the
/// boundary is a filtering (`CondFilter`) boundary, sectioned places are
/// scaled by the conditional's selectivity (only passing elements travel).
pub fn volume_bytes(
    np: &NormalizedPipeline,
    set: &PlaceSet,
    env: &CostEnv,
    selectivity: Option<f64>,
) -> f64 {
    let mut total = 0.0;
    for p in set.iter() {
        let elem = elem_size(np, &p.root, &p.fields);
        let count = match &p.sect {
            Sectioning::NotIndexed => 1.0,
            Sectioning::All => env
                .lookup(&format!("len.{}", p.root))
                .unwrap_or(env.default_array_len) as f64,
            Sectioning::Range(sec) => {
                let lookup = |s: &str| env.lookup(s);
                sec.len(&lookup)
                    .map(|v| v as f64)
                    .unwrap_or(env.default_array_len as f64)
            }
        };
        let count = match (&p.sect, selectivity) {
            (Sectioning::NotIndexed, _) | (_, None) => count,
            (_, Some(s)) => count * s,
        };
        total += elem * count;
    }
    total
}

/// Byte size of the value a place selects: scalars are 8 bytes; objects are
/// the sum of their scalar fields (nested classes recurse; array-typed
/// fields count a default handle — their contents appear as separate
/// places).
fn elem_size(np: &NormalizedPipeline, root: &str, fields: &[String]) -> f64 {
    let prog = &np.typed.program;
    // Resolve the root's type from main's scope or externs.
    let mut ty: Option<Type> = np
        .typed
        .symbols
        .scope(&np.class, "main")
        .and_then(|sc| sc.get(root).cloned())
        .or_else(|| np.typed.symbols.externs.get(root).cloned());
    if ty.is_none() {
        return 8.0;
    }
    // Step into the element type for sectioned roots.
    if let Some(Type::Array(el)) = &ty {
        ty = Some((**el).clone());
    }
    for f in fields {
        let Some(Type::Class(c)) = &ty else {
            return 8.0;
        };
        ty = prog
            .class(c)
            .and_then(|cd| cd.field(f))
            .map(|fd| fd.ty.clone());
        if let Some(Type::Array(el)) = &ty {
            ty = Some((**el).clone());
        }
        if ty.is_none() {
            return 8.0;
        }
    }
    type_size(prog, &ty.unwrap(), 0)
}

fn type_size(prog: &Program, ty: &Type, depth: usize) -> f64 {
    if depth > 4 {
        return 8.0;
    }
    match ty {
        Type::Int | Type::Double => 8.0,
        Type::Bool => 1.0,
        Type::Void => 0.0,
        Type::RectDomain(_) => 16.0,
        Type::Array(el) => 16.0 + type_size(prog, el, depth + 1), // handle + sample elem
        Type::Class(c) => prog
            .class(c)
            .map(|cd| {
                cd.fields
                    .iter()
                    .map(|f| type_size(prog, &f.ty, depth + 1))
                    .sum()
            })
            .unwrap_or(8.0),
    }
}

// ---------------------------------------------------------------------------
// pipeline-time formula

/// Per-packet stage times for a concrete decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTimes {
    /// `T(C_i)` for each computing unit, seconds per packet.
    pub comp: Vec<f64>,
    /// `T(L_i)` for each link, seconds per packet.
    pub comm: Vec<f64>,
}

impl StageTimes {
    /// The paper's total-time formula over `n_packets`.
    pub fn total_time(&self, n_packets: u64) -> f64 {
        let fill: f64 = self.comp.iter().sum::<f64>() + self.comm.iter().sum::<f64>();
        let bottleneck = self
            .comp
            .iter()
            .chain(self.comm.iter())
            .cloned()
            .fold(0.0_f64, f64::max);
        (n_packets.saturating_sub(1)) as f64 * bottleneck + fill
    }

    /// Which resource is the bottleneck: `("C", i)` or `("L", i)`.
    pub fn bottleneck(&self) -> (&'static str, usize) {
        let mut best = ("C", 0usize);
        let mut val = f64::MIN;
        for (i, t) in self.comp.iter().enumerate() {
            if *t > val {
                val = *t;
                best = ("C", i);
            }
        }
        for (i, t) in self.comm.iter().enumerate() {
            if *t > val {
                val = *t;
                best = ("L", i);
            }
        }
        best
    }
}

/// Transport class of a pipeline link, with default `B(L)` / latency
/// constants for each. Same-host links are dramatically cheaper than a
/// network hop, and the runtime exploits that automatically (SPSC rings
/// in-process, the shared-memory transport between co-located worker
/// processes, TCP across hosts) — the cost model must see the same
/// asymmetry or it will shy away from cuts that are nearly free in
/// practice.
///
/// The constants are calibrated against the committed
/// `BENCH_dataplane.json` measurements (distributed 1 KiB packet echo:
/// the shm transport carries ~3× loopback TCP's packet rate, with
/// attach/wake costs in the low microseconds; loopback TCP pays the
/// kernel socket path per frame; cross-host assumes commodity gigabit
/// Ethernet as in the paper's cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// Shared-memory ring between processes on one host (or an
    /// in-process SPSC ring link).
    SameHostShm,
    /// Loopback TCP between processes on one host.
    SameHostTcp,
    /// TCP between hosts on a LAN.
    CrossHost,
}

impl LinkClass {
    /// Default link bandwidth `B(L)`, bytes per second.
    pub const fn bandwidth(self) -> f64 {
        match self {
            LinkClass::SameHostShm => 1.2e9,
            LinkClass::SameHostTcp => 4.0e8,
            LinkClass::CrossHost => 1.2e8,
        }
    }

    /// Default per-message link latency, seconds.
    pub const fn latency(self) -> f64 {
        match self {
            LinkClass::SameHostShm => 3e-6,
            LinkClass::SameHostTcp => 3e-5,
            LinkClass::CrossHost => 1e-4,
        }
    }
}

/// Execution engine running filter bodies inside a pipeline unit, with a
/// calibrated compute power (standard ops/second) for each — the
/// compute-side twin of [`LinkClass`].
///
/// The constants are pinned to the committed `BENCH_vm.json` baseline:
/// `vm_guard` derives each microbench body's standard-op count per domain
/// element from this very cost model (`*_model_ops_per_elem`), so
/// `ops_per_elem × measured elems/s` is the power one program implies for
/// one engine. Each constant is the geometric mean of the knn and vmscope
/// implied powers, rounded to two figures; a unit test cross-checks the
/// constants against the baseline file so re-recording `BENCH_vm.json`
/// on a very different machine flags them for re-calibration.
///
/// The runtime executes filter bodies on the register VM by default
/// (`CGP_NO_VM=1` falls back to the tree-walker), so plans built for real
/// execution should use [`FilterEngine::Vm`]. Keep the *plan* engine fixed
/// even when the runtime flag flips: byte-identity checks between VM and
/// interpreter runs rely on both executing the same decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterEngine {
    /// Register bytecode VM (`cgp_lang::bytecode`), the default engine.
    Vm,
    /// Tree-walking interpreter (`cgp_lang::interp`), the `CGP_NO_VM=1`
    /// fallback and the sequential oracle.
    TreeWalker,
}

impl FilterEngine {
    /// Calibrated compute power `P(C)`, standard ops per second.
    pub const fn power(self) -> f64 {
        match self {
            FilterEngine::Vm => 3.0e8,
            FilterEngine::TreeWalker => 5.8e7,
        }
    }
}

/// A pipeline of computing units and links (the execution environment the
/// decomposition targets).
#[derive(Debug, Clone)]
pub struct PipelineEnv {
    /// Computing power of each `C_i`, standard ops per second.
    pub power: Vec<f64>,
    /// Bandwidth of each `L_i`, bytes per second.
    pub bandwidth: Vec<f64>,
    /// Per-message latency of each `L_i`, seconds.
    pub latency: Vec<f64>,
}

impl PipelineEnv {
    /// Uniform pipeline: `m` units of `power`, `m-1` links of `bandwidth`.
    pub fn uniform(m: usize, power: f64, bandwidth: f64, latency: f64) -> Self {
        assert!(m >= 1);
        PipelineEnv {
            power: vec![power; m],
            bandwidth: vec![bandwidth; m.saturating_sub(1)],
            latency: vec![latency; m.saturating_sub(1)],
        }
    }

    /// Uniform pipeline whose links all have `class` characteristics.
    pub fn uniform_class(m: usize, power: f64, class: LinkClass) -> Self {
        Self::uniform(m, power, class.bandwidth(), class.latency())
    }

    /// Uniform same-host pipeline: every link is a shared-memory hop
    /// ([`LinkClass::SameHostShm`]), the shape the launcher produces
    /// when all workers land on one machine.
    pub fn same_host(m: usize, power: f64) -> Self {
        Self::uniform_class(m, power, LinkClass::SameHostShm)
    }

    pub fn m(&self) -> usize {
        self.power.len()
    }

    /// `Cost_comp(P(C_j), task)`. A unit with zero, negative, or
    /// non-finite power cannot compute: its cost is `+∞`, never `NaN`
    /// (`NaN` would silently poison every comparison in the DP).
    pub fn cost_comp(&self, j: usize, task: &OpCount, w: &CostWeights) -> f64 {
        let p = self.power[j];
        if !p.is_finite() || p <= 0.0 {
            return f64::INFINITY;
        }
        let c = task.weighted(w) / p;
        if c.is_nan() {
            f64::INFINITY
        } else {
            c
        }
    }

    /// `Cost_comm(B(L_j), vol)`. Guarded against degenerate links: moving
    /// nothing costs only the link latency (avoiding `0.0 / 0.0 → NaN`),
    /// and a zero/negative/non-finite bandwidth makes any actual transfer
    /// cost `+∞` — finite-or-infinite, never `NaN`.
    pub fn cost_comm(&self, j: usize, bytes: f64) -> f64 {
        let lat = if self.latency[j].is_finite() {
            self.latency[j]
        } else {
            f64::INFINITY
        };
        if bytes <= 0.0 {
            return lat;
        }
        let bw = self.bandwidth[j];
        if !bw.is_finite() || bw <= 0.0 {
            return f64::INFINITY;
        }
        let c = lat + bytes / bw;
        if c.is_nan() {
            f64::INFINITY
        } else {
            c
        }
    }

    /// The environment with interior unit `j` removed — the failover
    /// target when host `j` dies mid-run. Links `L_{j-1}` and `L_j` merge
    /// into one route through the dead host's position: data still
    /// traverses both physical hops, so the merged link takes the
    /// narrower bandwidth and the summed latency.
    ///
    /// Endpoints are irremovable: unit 0 owns the input data and unit
    /// `m-1` owns the output view, so losing either cannot be replanned
    /// around. Returns `None` for those, for out-of-range `j`, and for
    /// pipelines too short to shrink (`m < 3`).
    pub fn without_unit(&self, j: usize) -> Option<PipelineEnv> {
        if self.m() < 3 || j == 0 || j >= self.m() - 1 {
            return None;
        }
        let mut power = self.power.clone();
        power.remove(j);
        let mut bandwidth = self.bandwidth.clone();
        let mut latency = self.latency.clone();
        let merged_bw = bandwidth[j - 1].min(bandwidth[j]);
        let merged_lat = latency[j - 1] + latency[j];
        bandwidth.remove(j);
        latency.remove(j);
        bandwidth[j - 1] = merged_bw;
        latency[j - 1] = merged_lat;
        Some(PipelineEnv {
            power,
            bandwidth,
            latency,
        })
    }
}

/// Inputs to the decomposition: per-atom tasks and per-boundary volumes.
#[derive(Debug, Clone)]
pub struct ChainCosts {
    /// `Task(f_i)` for each atom (n+1 entries).
    pub tasks: Vec<OpCount>,
    /// `Vol(f_i)` = bytes crossing if a cut is placed after atom i
    /// (n entries — the final atom's results stay put per the paper's
    /// `ReqComm(end) = ∅`).
    pub volumes: Vec<f64>,
    pub weights: CostWeights,
}

/// Compute per-atom op counts and per-boundary volumes for a chain.
pub fn chain_costs(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
    reqcomm: &[PlaceSet],
    env: &CostEnv,
) -> ChainCosts {
    let tasks: Vec<OpCount> = graph
        .atoms
        .iter()
        .map(|a| count_atom(np, &a.code, env))
        .collect();
    let volumes: Vec<f64> = graph
        .boundaries
        .iter()
        .map(|b| {
            let sel = if b.kind == BoundaryKind::CondFilter {
                // boundary index == select atom index; its cond_id drives
                // the selectivity lookup
                match &graph.atoms[b.index].code {
                    AtomCode::CondSelect { cond_id, .. } => Some(env.sel(*cond_id)),
                    _ => None,
                }
            } else {
                None
            };
            volume_bytes(np, &reqcomm[b.index], env, sel)
        })
        .collect();
    let _ = reduction_roots(np);
    ChainCosts {
        tasks,
        volumes,
        weights: env.weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::normalize::normalize;
    use crate::reqcomm::analyze_chain;
    use cgp_lang::frontend;

    const BASE: &str = r#"
        extern int n;
        extern double[] data;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 4) {
                    foreach (i in pkt) {
                        double v = data[i] * sqrt(toDouble(i));
                        if (v > 1.0) {
                            acc.add(v);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    fn setup(src: &str, pkt: i64) -> (NormalizedPipeline, BoundaryGraph, Vec<PlaceSet>, CostEnv) {
        let np = normalize(&frontend(src).unwrap()).unwrap();
        let g = build_graph(&np).unwrap();
        let ca = analyze_chain(&np, &g).unwrap();
        let env = CostEnv::for_packet(pkt).with_symbol("n", 1000);
        (np, g, ca.reqcomm, env)
    }

    #[test]
    fn op_counts_scale_with_packet_size() {
        let (np, g, _rc, env1) = setup(BASE, 100);
        let env2 = CostEnv::for_packet(200).with_symbol("n", 1000);
        let compute = g
            .atoms
            .iter()
            .find(|a| matches!(a.code, AtomCode::Foreach(_)))
            .unwrap();
        let c1 = count_atom(&np, &compute.code, &env1);
        let c2 = count_atom(&np, &compute.code, &env2);
        assert!(c1.flops > 0.0);
        assert!((c2.flops / c1.flops - 2.0).abs() < 1e-9, "{c1:?} vs {c2:?}");
    }

    #[test]
    fn selectivity_scales_cond_body() {
        let (np, g, _rc, env) = setup(BASE, 100);
        let body = g
            .atoms
            .iter()
            .find(|a| matches!(a.code, AtomCode::CondBody { .. }))
            .unwrap();
        let lo = count_atom(&np, &body.code, &env.clone().with_selectivity(0, 0.1));
        let hi = count_atom(&np, &body.code, &env.with_selectivity(0, 0.9));
        assert!(hi.weighted(&CostWeights::default()) > 5.0 * lo.weighted(&CostWeights::default()));
    }

    #[test]
    fn volume_counts_section_bytes() {
        let (np, g, rc, env) = setup(BASE, 100);
        // boundary 0: data[pkt.lo:pkt.hi] → 100 doubles = 800 bytes.
        let v = volume_bytes(&np, &rc[0], &env, None);
        assert!((v - 800.0).abs() < 1e-6, "v = {v}");
        let _ = g;
    }

    #[test]
    fn filtering_boundary_volume_scales_with_selectivity() {
        let (np, g, rc, env) = setup(BASE, 100);
        let env = env.with_selectivity(0, 0.25);
        let costs = chain_costs(&np, &g, &rc, &env);
        let cond_b = g
            .boundaries
            .iter()
            .position(|b| b.kind == BoundaryKind::CondFilter)
            .unwrap();
        // v__x section of 100 doubles × 0.25 = 200 bytes.
        assert!(
            (costs.volumes[cond_b] - 200.0).abs() < 1e-6,
            "{:?}",
            costs.volumes
        );
    }

    #[test]
    fn degenerate_links_and_units_never_produce_nan() {
        let env = PipelineEnv {
            power: vec![1e6, 0.0, -5.0, f64::NAN],
            bandwidth: vec![0.0, -1.0, f64::NAN],
            latency: vec![1e-5, 0.0, f64::NAN],
        };
        // Zero volume over a zero-bandwidth link: latency only, not 0/0.
        assert_eq!(env.cost_comm(0, 0.0), 1e-5);
        // Real volume over a dead/negative/NaN-bandwidth link: +∞.
        assert_eq!(env.cost_comm(0, 100.0), f64::INFINITY);
        assert_eq!(env.cost_comm(1, 100.0), f64::INFINITY);
        assert_eq!(env.cost_comm(2, 100.0), f64::INFINITY);
        // NaN latency resolves to +∞, never NaN.
        assert!(!env.cost_comm(2, 0.0).is_nan());
        // Degenerate compute power: +∞, never NaN, even for a zero task.
        let zero = OpCount::zero();
        let w = CostWeights::default();
        assert!(env.cost_comp(0, &zero, &w).is_finite());
        assert_eq!(env.cost_comp(1, &zero, &w), f64::INFINITY);
        assert_eq!(env.cost_comp(2, &zero, &w), f64::INFINITY);
        assert_eq!(env.cost_comp(3, &zero, &w), f64::INFINITY);
    }

    #[test]
    fn pipeline_time_formula_matches_paper() {
        let st = StageTimes {
            comp: vec![1.0, 3.0, 1.0],
            comm: vec![0.5, 0.5],
        };
        // bottleneck = C_2 at 3.0; fill = 6.0
        assert_eq!(st.bottleneck(), ("C", 1));
        let t = st.total_time(10);
        assert!((t - (9.0 * 3.0 + 6.0)).abs() < 1e-9);
        // single packet: just the fill time
        assert!((st.total_time(1) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn link_bottleneck_detected() {
        let st = StageTimes {
            comp: vec![1.0, 1.0],
            comm: vec![5.0],
        };
        assert_eq!(st.bottleneck(), ("L", 0));
    }

    #[test]
    fn uniform_env_costs() {
        let env = PipelineEnv::uniform(3, 1e9, 1e8, 1e-4);
        let task = OpCount {
            flops: 1e6,
            iops: 0.0,
            mem: 0.0,
        };
        let t = env.cost_comp(0, &task, &CostWeights::default());
        assert!((t - 1e-3).abs() < 1e-12);
        let c = env.cost_comm(0, 1e6);
        assert!((c - (1e-4 + 1e-2)).abs() < 1e-12);
    }

    #[test]
    fn same_host_links_are_strictly_cheaper_per_class() {
        // The class ordering the runtime actually delivers: shm < loopback
        // TCP < cross-host, in both bandwidth cost and latency.
        let vol = 64.0 * 1024.0;
        let shm = PipelineEnv::same_host(3, 1e9);
        let tcp = PipelineEnv::uniform_class(3, 1e9, LinkClass::SameHostTcp);
        let lan = PipelineEnv::uniform_class(3, 1e9, LinkClass::CrossHost);
        assert!(shm.cost_comm(0, vol) < tcp.cost_comm(0, vol));
        assert!(tcp.cost_comm(0, vol) < lan.cost_comm(0, vol));
        assert!(LinkClass::SameHostShm.latency() < LinkClass::CrossHost.latency());
        // A cheaper link can flip the decomposition's bottleneck from a
        // link to a computing unit: the same volume that saturates a
        // cross-host link is absorbed by a same-host one.
        let task = OpCount {
            flops: 1e5,
            iops: 0.0,
            mem: 0.0,
        };
        let w = CostWeights::default();
        let comp = shm.cost_comp(0, &task, &w);
        assert!(shm.cost_comm(0, vol) < comp);
        assert!(lan.cost_comm(0, vol) > comp);
    }

    #[test]
    fn builtin_costs_ordered() {
        assert!(builtin_cost("pow").flops > builtin_cost("sqrt").flops);
        assert!(builtin_cost("sqrt").flops > builtin_cost("abs").flops);
    }

    /// [`FilterEngine`] powers stay pinned to the committed baseline:
    /// each constant must sit between the two microbenches' implied
    /// powers (`model_ops_per_elem × measured elems/s`) and within 30%
    /// of their geometric mean. Re-recording `BENCH_vm.json` on a very
    /// different machine deliberately fails this until the constants are
    /// re-calibrated alongside it.
    #[test]
    fn filter_engine_powers_match_committed_baseline() {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_vm.json"))
                .expect("committed BENCH_vm.json");
        let field = |key: &str| -> f64 {
            let at = text.find(&format!("\"{key}\":")).expect(key) + key.len() + 3;
            let rest = text[at..].trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                .unwrap_or(rest.len());
            rest[..end].parse().expect(key)
        };
        for (engine, knn_key, vms_key) in [
            (
                FilterEngine::Vm,
                "knn_vm_elems_per_sec",
                "vmscope_vm_elems_per_sec",
            ),
            (
                FilterEngine::TreeWalker,
                "knn_interp_elems_per_sec",
                "vmscope_interp_elems_per_sec",
            ),
        ] {
            let knn = field("knn_model_ops_per_elem") * field(knn_key);
            let vms = field("vmscope_model_ops_per_elem") * field(vms_key);
            let (lo, hi) = (knn.min(vms), knn.max(vms));
            let p = engine.power();
            assert!(
                lo <= p && p <= hi,
                "{engine:?} power {p:.2e} outside implied range [{lo:.2e}, {hi:.2e}]"
            );
            let geomean = (knn * vms).sqrt();
            assert!(
                (p / geomean).ln().abs() < 0.3_f64.ln_1p(),
                "{engine:?} power {p:.2e} is more than 30% from the implied \
                 geometric mean {geomean:.2e}"
            );
        }
        // The calibrated constants must themselves respect the guard's
        // speedup floor — the VM plans on being at least 2× the walker.
        assert!(FilterEngine::Vm.power() >= 2.0 * FilterEngine::TreeWalker.power());
    }

    #[test]
    fn interprocedural_counting_includes_callee() {
        let src = r#"
            extern int n;
            extern double[] xs;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A {
                double heavy(double x) {
                    double acc2 = 0.0;
                    for (int k = 0; k < 10; k += 1) { acc2 += sqrt(x + toDouble(k)); }
                    return acc2;
                }
                void main() {
                    RectDomain<1> all = [0 : n - 1];
                    Acc acc = new Acc();
                    PipelinedLoop (pkt in all; 2) {
                        foreach (i in pkt) {
                            double h = heavy(xs[i]);
                            acc.add(h);
                        }
                    }
                    print(acc.t);
                }
            }
        "#;
        let np = normalize(&frontend(src).unwrap()).unwrap();
        let env = CostEnv::for_packet(50).with_symbol("n", 100);
        let total = count_stmts(&np, &np.body_stmts(), &env);
        // 50 iterations × 10 inner × ~8 flops (sqrt) ≥ 4000 flops.
        assert!(total.flops >= 4000.0, "flops = {}", total.flops);
    }
}
