//! Post-run calibration of the §4 cost model against measured telemetry.
//!
//! The decomposition picks a cut using *predicted* per-packet stage times
//! (`StageTimes`). A telemetry-enabled run measures the real thing: per
//! stage, how long its copies were busy, how much of that busy time was
//! spent blocked on the downstream queue (send) or waiting for input
//! (recv), and how many packets passed through. This module joins the
//! two views into a [`CalibrationReport`]:
//!
//! - per-stage residuals (measured active seconds/packet vs the model's
//!   `T(C_i)`),
//! - a *measured* bottleneck — the stage with the largest active
//!   (non-blocked) service time per packet — with an attribution of
//!   `compute-bound`, `send-blocked`, or `recv-starved` per stage,
//! - agreement or disagreement with the model's predicted bottleneck.
//!
//! Measured rates come from the registry keys the runtime publishes when
//! telemetry is on: `stage.<name>.busy_us`, `.blocked_send_us`,
//! `.blocked_recv_us`, `.buffers_in`/`.buffers_out` counters and the
//! `stage.<name>.residence_us` / `pipeline.e2e_us` histograms. Stage
//! names follow the executor's `f1..fm` convention, so unit `C_j` is
//! stage `f{j+1}`.
//!
//! Blocked time is attributed to the *neighbour*: a send-blocked stage is
//! throttled by its downstream, a recv-starved one by its upstream —
//! neither is the bottleneck itself, which is why the bottleneck ranking
//! uses active time only.

use crate::cost::StageTimes;
use crate::report::DecisionReport;
use cgp_obs::json::Json;
use cgp_obs::metrics::MetricsRegistry;

/// Per-stage rates measured by the telemetry plane, extracted from a
/// (possibly cross-process-merged) [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredStage {
    /// Runtime stage name (`f1`, `f2`, ...).
    pub name: String,
    /// Packets processed (buffers in; buffers out for the source, which
    /// has no input stream).
    pub packets: u64,
    /// Total busy seconds across the stage's copies (wall time inside
    /// `process`, including blocked time).
    pub busy_s: f64,
    /// Seconds blocked pushing into a full downstream queue.
    pub blocked_send_s: f64,
    /// Seconds blocked waiting on an empty input queue.
    pub blocked_recv_s: f64,
    /// Per-packet residence latency percentiles (0 when the stage has no
    /// input stream or telemetry recorded no residence samples).
    pub residence_p50_us: u64,
    pub residence_p99_us: u64,
}

impl MeasuredStage {
    /// Read one stage's measured rates from registry keys. Returns `None`
    /// when the registry holds no telemetry for this stage (telemetry was
    /// off, or the stage ran in a process whose registry wasn't merged).
    pub fn from_registry(reg: &MetricsRegistry, name: &str) -> Option<MeasuredStage> {
        let key = |suffix: &str| format!("stage.{name}.{suffix}");
        let busy_us = reg.get_counter(&key("busy_us"));
        let buffers_in = reg.get_counter(&key("buffers_in"));
        let buffers_out = reg.get_counter(&key("buffers_out"));
        if busy_us == 0 && buffers_in == 0 && buffers_out == 0 {
            return None;
        }
        let secs = |us: u64| us as f64 / 1e6;
        let (p50, p99) = match reg.get_histogram(&key("residence_us")) {
            Some(h) if h.count > 0 => (h.percentile(0.5), h.percentile(0.99)),
            _ => (0, 0),
        };
        Some(MeasuredStage {
            name: name.to_string(),
            packets: if buffers_in > 0 {
                buffers_in
            } else {
                buffers_out
            },
            busy_s: secs(busy_us),
            blocked_send_s: secs(reg.get_counter(&key("blocked_send_us"))),
            blocked_recv_s: secs(reg.get_counter(&key("blocked_recv_us"))),
            residence_p50_us: p50,
            residence_p99_us: p99,
        })
    }

    /// Busy seconds actually spent computing (busy minus blocked).
    pub fn active_s(&self) -> f64 {
        (self.busy_s - self.blocked_send_s - self.blocked_recv_s).max(0.0)
    }

    /// Measured service time: active seconds per packet (the quantity the
    /// model's `T(C_i)` predicts).
    pub fn active_s_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.active_s() / self.packets as f64
        }
    }

    /// Where this stage's busy time went: `compute-bound` when active
    /// time dominates, `send-blocked` / `recv-starved` when waiting on a
    /// neighbour dominates.
    pub fn attribution(&self) -> &'static str {
        let active = self.active_s();
        if self.blocked_send_s >= active && self.blocked_send_s >= self.blocked_recv_s {
            "send-blocked"
        } else if self.blocked_recv_s >= active && self.blocked_recv_s > self.blocked_send_s {
            "recv-starved"
        } else {
            "compute-bound"
        }
    }
}

/// Per-link traffic measured by the net/shm transport probes
/// (`net.link<k>.frames` / `.bytes` / `.deduped` counters), joined with
/// the model's per-packet volume prediction where one exists. Bytes per
/// frame is the measured `Vol(f)` the volume model predicts — the
/// per-link analogue of a stage residual — and is what the same-host
/// [`LinkClass`](crate::cost::LinkClass) constants were calibrated
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredLink {
    /// Link index `k` from the registry key (link `L_k` joins `C_k` and
    /// `C_{k+1}`).
    pub link: usize,
    /// Data frames moved across the link.
    pub frames: u64,
    /// Payload bytes moved across the link.
    pub bytes: u64,
    /// Frames discarded by the replay watermark after a reconnect.
    pub deduped: u64,
    /// The model's `T(L_k)`, seconds per packet (`None` when the link
    /// index is outside the predicted pipeline — e.g. telemetry from a
    /// wider run than the plan).
    pub predicted_s_per_packet: Option<f64>,
}

impl MeasuredLink {
    /// Measured payload bytes per frame (0 for an idle link).
    pub fn bytes_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.bytes as f64 / self.frames as f64
        }
    }

    /// Collect every `net.link<k>.*` family present in `reg`, sorted by
    /// link index. Empty when the run was in-process or untelemetered.
    pub fn from_registry(reg: &MetricsRegistry, times: &StageTimes) -> Vec<MeasuredLink> {
        let mut links: Vec<usize> = reg
            .counters()
            .filter_map(|(name, _)| {
                let rest = name.strip_prefix("net.link")?;
                let (idx, _) = rest.split_once('.')?;
                idx.parse::<usize>().ok()
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        links
            .into_iter()
            .map(|k| MeasuredLink {
                link: k,
                frames: reg.get_counter(&format!("net.link{k}.frames")),
                bytes: reg.get_counter(&format!("net.link{k}.bytes")),
                deduped: reg.get_counter(&format!("net.link{k}.deduped")),
                predicted_s_per_packet: times.comm.get(k).copied(),
            })
            .collect()
    }
}

/// One stage's predicted-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCalibration {
    /// Pipeline unit index (`C_unit`; stage name is `f{unit+1}`).
    pub unit: usize,
    pub measured: MeasuredStage,
    /// The model's `T(C_unit)`, seconds per packet.
    pub predicted_s_per_packet: f64,
    /// `measured / predicted` ratio (`> 1` = the model was optimistic);
    /// infinite when the model predicted zero for a stage that did work.
    pub residual_ratio: f64,
}

/// The calibration verdict appended to the decision report.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    pub stages: Vec<StageCalibration>,
    /// Per-link measured traffic (empty for in-process runs, which move
    /// buffers over rings/channels rather than framed transports).
    pub links: Vec<MeasuredLink>,
    /// The model's predicted bottleneck, e.g. `("C", 1)` or `("L", 0)`.
    pub predicted_bottleneck: (&'static str, usize),
    /// Unit index of the stage with the largest measured active
    /// seconds/packet.
    pub measured_bottleneck: usize,
    /// End-to-end pipeline latency percentiles `(count, p50, p95, p99)`
    /// in µs, when `pipeline.e2e_us` was recorded (in-process runs only —
    /// origin stamps don't cross process boundaries).
    pub e2e_us: Option<(u64, u64, u64, u64)>,
}

impl CalibrationReport {
    /// Join a decision report's predictions with a run's merged registry.
    /// Returns `None` when the registry holds no stage telemetry (the run
    /// was untelemetered), so callers can append calibration output
    /// unconditionally.
    pub fn from_run(report: &DecisionReport, reg: &MetricsRegistry) -> Option<CalibrationReport> {
        Self::from_parts(&report.stage_times, reg)
    }

    /// [`CalibrationReport::from_run`] against raw stage times (the
    /// launcher keeps `StageTimes` without the full report).
    pub fn from_parts(times: &StageTimes, reg: &MetricsRegistry) -> Option<CalibrationReport> {
        let m = times.comp.len();
        let mut stages = Vec::with_capacity(m);
        for unit in 0..m {
            let measured = MeasuredStage::from_registry(reg, &format!("f{}", unit + 1))?;
            let predicted = times.comp[unit];
            let measured_rate = measured.active_s_per_packet();
            let residual_ratio = if predicted > 0.0 {
                measured_rate / predicted
            } else if measured_rate > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            stages.push(StageCalibration {
                unit,
                measured,
                predicted_s_per_packet: predicted,
                residual_ratio,
            });
        }
        let measured_bottleneck = stages
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.measured
                    .active_s_per_packet()
                    .total_cmp(&b.measured.active_s_per_packet())
            })
            .map(|(i, _)| i)?;
        let e2e_us = reg
            .get_histogram("pipeline.e2e_us")
            .filter(|h| h.count > 0)
            .map(|h| {
                (
                    h.count,
                    h.percentile(0.5),
                    h.percentile(0.95),
                    h.percentile(0.99),
                )
            });
        Some(CalibrationReport {
            stages,
            links: MeasuredLink::from_registry(reg, times),
            predicted_bottleneck: times.bottleneck(),
            measured_bottleneck,
            e2e_us,
        })
    }

    /// Do the measured and predicted bottlenecks name the same unit? A
    /// predicted *link* bottleneck counts as agreement when the measured
    /// bottleneck stage sits on either end of that link and is dominated
    /// by blocking rather than compute.
    pub fn agrees(&self) -> bool {
        let (kind, idx) = self.predicted_bottleneck;
        match kind {
            "C" => idx == self.measured_bottleneck,
            // Link L_i joins C_i and C_{i+1}: sender blocks on send,
            // receiver starves on recv.
            _ => {
                let b = &self.stages[self.measured_bottleneck];
                (b.unit == idx && b.measured.attribution() == "send-blocked")
                    || (b.unit == idx + 1 && b.measured.attribution() == "recv-starved")
            }
        }
    }

    /// Human-readable rendering, appended after
    /// [`DecisionReport::render_text`] by `--explain` output paths.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "=== cost-model calibration ===");
        for c in &self.stages {
            let m = &c.measured;
            let _ = writeln!(
                s,
                "  {} (C{}): measured {:.6e} s/pkt vs predicted {:.6e} s/pkt (x{:.2}) — {} \
                 [{} pkts, busy {:.3} s, send-blocked {:.3} s, recv-starved {:.3} s]",
                m.name,
                c.unit,
                m.active_s_per_packet(),
                c.predicted_s_per_packet,
                c.residual_ratio,
                m.attribution(),
                m.packets,
                m.busy_s,
                m.blocked_send_s,
                m.blocked_recv_s,
            );
            if m.residence_p99_us > 0 {
                let _ = writeln!(
                    s,
                    "      residence p50 {} us, p99 {} us",
                    m.residence_p50_us, m.residence_p99_us
                );
            }
        }
        for l in &self.links {
            let _ = write!(
                s,
                "  L{}: {} frames, {} bytes ({:.0} B/frame measured Vol)",
                l.link,
                l.frames,
                l.bytes,
                l.bytes_per_frame()
            );
            if let Some(p) = l.predicted_s_per_packet {
                let _ = write!(s, ", predicted {p:.6e} s/pkt");
            }
            if l.deduped > 0 {
                let _ = write!(s, ", {} deduped after reconnect", l.deduped);
            }
            let _ = writeln!(s);
        }
        let b = &self.stages[self.measured_bottleneck];
        let _ = writeln!(
            s,
            "measured bottleneck: {} (C{}), {}; model predicted {}{} — {}",
            b.measured.name,
            b.unit,
            b.measured.attribution(),
            self.predicted_bottleneck.0,
            self.predicted_bottleneck.1,
            if self.agrees() {
                "agreement"
            } else {
                "MISMATCH"
            }
        );
        if let Some((count, p50, p95, p99)) = self.e2e_us {
            let _ = writeln!(
                s,
                "pipeline e2e latency: p50 {p50} us, p95 {p95} us, p99 {p99} us ({count} packets)"
            );
        }
        s
    }

    /// JSON form (embedded in telemetry logs and machine-readable
    /// reports).
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.set(
            "stages",
            Json::Arr(
                self.stages
                    .iter()
                    .map(|c| {
                        let m = &c.measured;
                        let mut o = Json::obj();
                        o.set("name", Json::Str(m.name.clone()));
                        o.set("unit", Json::Num(c.unit as f64));
                        o.set("packets", Json::Num(m.packets as f64));
                        o.set("busy_s", Json::Num(m.busy_s));
                        o.set("blocked_send_s", Json::Num(m.blocked_send_s));
                        o.set("blocked_recv_s", Json::Num(m.blocked_recv_s));
                        o.set("measured_s_per_packet", Json::Num(m.active_s_per_packet()));
                        o.set(
                            "predicted_s_per_packet",
                            Json::Num(c.predicted_s_per_packet),
                        );
                        o.set(
                            "residual_ratio",
                            if c.residual_ratio.is_finite() {
                                Json::Num(c.residual_ratio)
                            } else {
                                Json::Null
                            },
                        );
                        o.set("attribution", Json::Str(m.attribution().to_string()));
                        o.set("residence_p50_us", Json::Num(m.residence_p50_us as f64));
                        o.set("residence_p99_us", Json::Num(m.residence_p99_us as f64));
                        o
                    })
                    .collect(),
            ),
        );
        root.set(
            "links",
            Json::Arr(
                self.links
                    .iter()
                    .map(|l| {
                        let mut o = Json::obj();
                        o.set("link", Json::Num(l.link as f64));
                        o.set("frames", Json::Num(l.frames as f64));
                        o.set("bytes", Json::Num(l.bytes as f64));
                        o.set("deduped", Json::Num(l.deduped as f64));
                        o.set("bytes_per_frame", Json::Num(l.bytes_per_frame()));
                        o.set(
                            "predicted_s_per_packet",
                            match l.predicted_s_per_packet {
                                Some(p) => Json::Num(p),
                                None => Json::Null,
                            },
                        );
                        o
                    })
                    .collect(),
            ),
        );
        root.set(
            "predicted_bottleneck",
            Json::Str(format!(
                "{}{}",
                self.predicted_bottleneck.0, self.predicted_bottleneck.1
            )),
        );
        root.set(
            "measured_bottleneck",
            Json::Str(format!("C{}", self.measured_bottleneck)),
        );
        root.set("agreement", Json::Bool(self.agrees()));
        match self.e2e_us {
            Some((count, p50, p95, p99)) => {
                let mut e = Json::obj();
                e.set("count", Json::Num(count as f64));
                e.set("p50_us", Json::Num(p50 as f64));
                e.set("p95_us", Json::Num(p95 as f64));
                e.set("p99_us", Json::Num(p99 as f64));
                root.set("e2e_us", e);
            }
            None => root.set("e2e_us", Json::Null),
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_obs::metrics::Histogram;

    /// Build a registry describing an m-stage telemetered run where stage
    /// `slow` (0-based) does `slow_factor`× the work of the others.
    fn synthetic_registry(m: usize, slow: usize, slow_factor: u64) -> MetricsRegistry {
        let mut reg = MetricsRegistry::default();
        let packets = 100u64;
        for j in 0..m {
            let name = format!("f{}", j + 1);
            let busy = if j == slow { 1000 * slow_factor } else { 1000 };
            reg.counter(&format!("stage.{name}.busy_us"), busy);
            // Neighbours of the slow stage spend their time blocked on
            // it rather than computing.
            if j + 1 == slow {
                reg.counter(&format!("stage.{name}.blocked_send_us"), busy * 3 / 4);
            }
            if j == slow + 1 {
                reg.counter(&format!("stage.{name}.blocked_recv_us"), busy * 3 / 4);
            }
            if j > 0 {
                reg.counter(&format!("stage.{name}.buffers_in"), packets);
                let mut h = Histogram::default();
                for i in 0..packets {
                    h.record(50 + i * if j == slow { 40 } else { 4 });
                }
                reg.merge_histogram(&format!("stage.{name}.residence_us"), &h);
            }
            reg.counter(&format!("stage.{name}.buffers_out"), packets);
        }
        let mut e2e = Histogram::default();
        for i in 0..packets {
            e2e.record(500 + i * 10);
        }
        reg.merge_histogram("pipeline.e2e_us", &e2e);
        reg
    }

    fn times(m: usize) -> StageTimes {
        StageTimes {
            comp: vec![10e-6; m],
            comm: vec![1e-6; m - 1],
        }
    }

    #[test]
    fn names_the_injected_bottleneck_stage() {
        let reg = synthetic_registry(3, 1, 8);
        let report = CalibrationReport::from_parts(&times(3), &reg).unwrap();
        assert_eq!(report.measured_bottleneck, 1);
        assert_eq!(report.stages[1].measured.attribution(), "compute-bound");
        assert_eq!(report.stages[0].measured.attribution(), "send-blocked");
        assert_eq!(report.stages[2].measured.attribution(), "recv-starved");
        let text = report.render_text();
        assert!(
            text.contains("measured bottleneck: f2 (C1), compute-bound"),
            "{text}"
        );
        assert!(text.contains("pipeline e2e latency: p50"), "{text}");
    }

    #[test]
    fn residuals_compare_measured_to_predicted() {
        let reg = synthetic_registry(3, 2, 4);
        let report = CalibrationReport::from_parts(&times(3), &reg).unwrap();
        // Slow stage: 4000 us active over 100 packets = 40 us/pkt against
        // a 10 us/pkt prediction.
        let slow = &report.stages[2];
        assert!((slow.measured.active_s_per_packet() - 40e-6).abs() < 1e-12);
        assert!((slow.residual_ratio - 4.0).abs() < 1e-9);
        // The send-blocked neighbour's active time excludes its blocking.
        let blocked = &report.stages[1];
        assert!(blocked.measured.active_s() < blocked.measured.busy_s);
    }

    #[test]
    fn agreement_with_a_matching_model_prediction() {
        let reg = synthetic_registry(3, 1, 8);
        // Model also predicts C1 as the bottleneck.
        let times = StageTimes {
            comp: vec![10e-6, 80e-6, 10e-6],
            comm: vec![1e-6, 1e-6],
        };
        let report = CalibrationReport::from_parts(&times, &reg).unwrap();
        assert_eq!(report.predicted_bottleneck, ("C", 1));
        assert!(report.agrees());
        assert!(report.render_text().contains("agreement"));
    }

    #[test]
    fn link_bottleneck_agrees_via_blocking_attribution() {
        // Model says link L1 is the bottleneck; the measured picture has
        // C1 send-blocked on that link with barely any compute anywhere.
        let mut reg = MetricsRegistry::default();
        for (name, busy, send) in [("f1", 100u64, 0u64), ("f2", 10_000, 9_000), ("f3", 100, 0)] {
            reg.counter(&format!("stage.{name}.busy_us"), busy);
            reg.counter(&format!("stage.{name}.blocked_send_us"), send);
            reg.counter(&format!("stage.{name}.buffers_out"), 100);
            reg.counter(&format!("stage.{name}.buffers_in"), 100);
        }
        let times = StageTimes {
            comp: vec![1e-6, 1e-6, 1e-6],
            comm: vec![1e-6, 50e-6],
        };
        let report = CalibrationReport::from_parts(&times, &reg).unwrap();
        assert_eq!(report.predicted_bottleneck, ("L", 1));
        assert_eq!(report.measured_bottleneck, 1);
        assert_eq!(report.stages[1].measured.attribution(), "send-blocked");
        assert!(report.agrees());
    }

    #[test]
    fn link_traffic_is_surfaced_with_predictions_joined() {
        let mut reg = synthetic_registry(3, 1, 2);
        reg.counter("net.link0.frames", 100);
        reg.counter("net.link0.bytes", 100 * 1024);
        reg.counter("net.link1.frames", 100);
        reg.counter("net.link1.bytes", 100 * 256);
        reg.counter("net.link1.deduped", 3);
        // An out-of-plan link index (e.g. telemetry merged from a wider
        // run) still surfaces, just without a prediction.
        reg.counter("net.link7.frames", 5);
        reg.counter("net.link7.bytes", 5);
        let report = CalibrationReport::from_parts(&times(3), &reg).unwrap();
        assert_eq!(report.links.len(), 3);
        let l0 = &report.links[0];
        assert_eq!((l0.link, l0.frames, l0.bytes), (0, 100, 100 * 1024));
        assert!((l0.bytes_per_frame() - 1024.0).abs() < 1e-9);
        assert_eq!(l0.predicted_s_per_packet, Some(1e-6));
        assert_eq!(report.links[1].deduped, 3);
        assert_eq!(report.links[2].predicted_s_per_packet, None);
        let text = report.render_text();
        assert!(text.contains("L0: 100 frames"), "{text}");
        assert!(text.contains("1024 B/frame"), "{text}");
        assert!(text.contains("3 deduped after reconnect"), "{text}");
        let j = Json::parse(&report.to_json().to_string()).unwrap();
        let links = j.get("links").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(links.len(), 3);
        // In-process runs (no net.link counters) surface an empty list.
        let bare = CalibrationReport::from_parts(&times(3), &synthetic_registry(3, 1, 2)).unwrap();
        assert!(bare.links.is_empty());
    }

    #[test]
    fn untelemetered_registry_yields_no_report() {
        let reg = MetricsRegistry::default();
        assert!(CalibrationReport::from_parts(&times(3), &reg).is_none());
        // A registry with only failure counters (telemetry off) is also
        // not calibratable.
        let mut reg = MetricsRegistry::default();
        reg.counter("stage.f1.failures", 2);
        assert!(CalibrationReport::from_parts(&times(3), &reg).is_none());
    }

    #[test]
    fn json_round_trips_through_the_obs_parser() {
        let reg = synthetic_registry(2, 0, 3);
        let report = CalibrationReport::from_parts(&times(2), &reg).unwrap();
        let j = report.to_json();
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(
            parsed.get("measured_bottleneck").and_then(|v| v.as_str()),
            Some("C0")
        );
        // Uniform comp predictions tie-break to C0, which is also the
        // measured bottleneck here.
        assert_eq!(
            parsed.get("agreement").and_then(|v| v.as_bool()),
            Some(true)
        );
        let stages = parsed.get("stages").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(stages.len(), 2);
    }
}
