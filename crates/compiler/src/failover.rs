//! Cost-model-driven failover: replan the decomposition when a host dies.
//!
//! The paper's decomposition DP (Figure 3) is cheap — `O(nm)` — so when
//! the runtime reports a dead computing unit mid-run, the cheapest
//! correct response is to *re-run the compiler's placement decision*
//! over the surviving hosts rather than fall back to a fixed spare. The
//! dead unit's two adjacent links merge into one route (min bandwidth,
//! summed latency, see [`PipelineEnv::without_unit`]), and the same DP
//! that chose the original cut points chooses new ones for the shrunken
//! pipeline. Work recovers from the last committed checkpoint under the
//! replay protocol, so the replanned run completes with the same output
//! as the fault-free run.

use crate::cost::PipelineEnv;
use crate::decompose::{decompose_dp, evaluate, Decomposition, Problem};
use crate::error::{CompileError, CompileResult};

/// The outcome of replanning around a dead computing unit.
#[derive(Debug, Clone)]
pub struct FailoverPlan {
    /// Index of the unit that died in the *original* environment.
    pub dead_unit: usize,
    /// Original unit index → index in the surviving `env` (`None` for
    /// every unit that has died so far). [`PipelineEnv::without_unit`]
    /// renumbers survivors, so a later death reported against the
    /// original numbering must be translated through this map — feeding
    /// it to `replan` raw removes the wrong unit.
    pub index_map: Vec<Option<usize>>,
    /// The surviving environment (one fewer unit, merged links).
    pub env: PipelineEnv,
    /// The new decomposition over the surviving units.
    pub decomposition: Decomposition,
    /// Per-packet cost of the original decomposition on the original
    /// environment (the run being abandoned).
    pub cost_before: f64,
    /// Per-packet cost of the replanned decomposition — the DP optimum
    /// for the surviving pipeline.
    pub cost_after: f64,
}

impl FailoverPlan {
    /// Where original unit `original` lives in the surviving `env`, or
    /// `None` if it is one of the dead units this plan (chain) removed.
    pub fn surviving_index(&self, original: usize) -> Option<usize> {
        self.index_map.get(original).copied().flatten()
    }

    /// Relative slowdown the failure costs per packet (1.0 = no change).
    pub fn slowdown(&self) -> f64 {
        if self.cost_before > 0.0 {
            self.cost_after / self.cost_before
        } else {
            1.0
        }
    }

    /// One-paragraph human-readable summary for `--explain` output.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "failover: unit {} died; replanned over {} surviving units\n",
            self.dead_unit,
            self.env.m()
        ));
        for j in 0..self.env.m() {
            let tasks = self.decomposition.tasks_on(j);
            s.push_str(&format!("  unit {j}: tasks {tasks:?}\n"));
        }
        s.push_str(&format!(
            "  per-packet cost {:.3e} -> {:.3e} ({:.2}x)\n",
            self.cost_before,
            self.cost_after,
            self.slowdown()
        ));
        s
    }
}

/// Re-run the decomposition DP over the environment with `dead_unit`
/// removed. `current` is the decomposition that was executing when the
/// unit died (used only to report the cost delta).
pub fn replan(
    problem: &Problem,
    env: &PipelineEnv,
    current: &Decomposition,
    dead_unit: usize,
) -> CompileResult<FailoverPlan> {
    let survivors = env.without_unit(dead_unit).ok_or_else(|| {
        CompileError::new(format!(
            "cannot fail over around unit {dead_unit}: endpoints own the data/view and \
             a pipeline of {} units has no removable interior",
            env.m()
        ))
    })?;
    let cost_before = evaluate(problem, env, &current.unit_of);
    let decomposition = decompose_dp(problem, &survivors);
    let cost_after = decomposition.cost;
    let index_map = (0..env.m())
        .map(|i| match i.cmp(&dead_unit) {
            std::cmp::Ordering::Less => Some(i),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(i - 1),
        })
        .collect();
    Ok(FailoverPlan {
        dead_unit,
        index_map,
        env: survivors,
        decomposition,
        cost_before,
        cost_after,
    })
}

/// Replan around a *second* (or later) death, reported in the numbering
/// of the environment `prior` replanned from. The dead index is
/// translated through `prior`'s index map before removal, and the
/// returned plan's map composes both removals, so it stays keyed by the
/// same original numbering — repeated failovers can keep chaining.
pub fn replan_after(
    prior: &FailoverPlan,
    problem: &Problem,
    dead_unit: usize,
) -> CompileResult<FailoverPlan> {
    if dead_unit >= prior.index_map.len() {
        return Err(CompileError::new(format!(
            "cannot fail over around unit {dead_unit}: the original pipeline had only \
             {} units",
            prior.index_map.len()
        )));
    }
    let Some(surviving) = prior.surviving_index(dead_unit) else {
        return Err(CompileError::new(format!(
            "cannot fail over around unit {dead_unit}: it already died and was \
             replanned around"
        )));
    };
    let mut plan = replan(problem, &prior.env, &prior.decomposition, surviving)?;
    let inner = plan.index_map;
    plan.index_map = prior
        .index_map
        .iter()
        .map(|m| m.and_then(|j| inner.get(j).copied().flatten()))
        .collect();
    plan.dead_unit = dead_unit;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpCount;

    fn problem() -> Problem {
        // Virtual source + four atoms with decreasing volumes (filtering
        // chain): the classic shape where cut placement matters.
        let mut tasks = vec![OpCount::zero()];
        for ops in [400.0, 300.0, 200.0, 100.0] {
            tasks.push(OpCount {
                flops: ops,
                ..OpCount::zero()
            });
        }
        Problem::synthetic(tasks, vec![4096.0, 2048.0, 1024.0, 512.0, 0.0])
    }

    #[test]
    fn without_unit_merges_the_adjacent_links() {
        let env = PipelineEnv {
            power: vec![1e7, 2e7, 3e7, 4e7],
            bandwidth: vec![1e6, 5e5, 2e6],
            latency: vec![1e-5, 2e-5, 3e-5],
        };
        let s = env.without_unit(1).unwrap();
        assert_eq!(s.power, vec![1e7, 3e7, 4e7]);
        // L0 (1e6) and L1 (5e5) merge: min bandwidth, summed latency.
        assert_eq!(s.bandwidth, vec![5e5, 2e6]);
        assert!((s.latency[0] - 3e-5).abs() < 1e-12);
        assert_eq!(s.latency[1], 3e-5);
    }

    #[test]
    fn endpoints_and_short_pipelines_are_irremovable() {
        let env = PipelineEnv::uniform(4, 1e7, 1e6, 1e-5);
        assert!(env.without_unit(0).is_none());
        assert!(env.without_unit(3).is_none());
        assert!(env.without_unit(4).is_none());
        assert!(PipelineEnv::uniform(2, 1e7, 1e6, 1e-5)
            .without_unit(1)
            .is_none());
    }

    #[test]
    fn replan_produces_a_valid_optimal_decomposition() {
        let env = PipelineEnv::uniform(4, 1e7, 1e6, 1e-5);
        let p = problem();
        let original = decompose_dp(&p, &env);
        let plan = replan(&p, &env, &original, 2).unwrap();
        assert_eq!(plan.env.m(), 3);
        assert_eq!(plan.decomposition.unit_of.len(), p.n_tasks());
        assert!(plan.decomposition.unit_of.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(plan.decomposition.unit_of[0], 0);
        // The replanned cost is the DP optimum on the survivors and can
        // never beat adding a host back.
        assert!((plan.cost_after - plan.decomposition.cost).abs() < 1e-12);
        assert!(plan.cost_after + 1e-12 >= original.cost);
        let text = plan.render_text();
        assert!(text.contains("unit 2 died"), "{text}");
        assert!(text.contains("per-packet cost"), "{text}");
    }

    /// Regression: `without_unit` renumbers survivors, so a second death
    /// reported in the *original* numbering must be translated through
    /// the first plan's index map — replanning around the raw index
    /// removes the wrong unit (or an endpoint that is not removable at
    /// all).
    #[test]
    fn second_death_replans_around_the_right_unit() {
        // Distinct powers make "which unit was removed" observable.
        let env = PipelineEnv {
            power: vec![1e7, 2e7, 3e7, 4e7, 5e7],
            bandwidth: vec![1e6; 4],
            latency: vec![1e-5; 4],
        };
        let mut tasks = vec![OpCount::zero()];
        for ops in [500.0, 400.0, 300.0, 200.0, 100.0] {
            tasks.push(OpCount {
                flops: ops,
                ..OpCount::zero()
            });
        }
        let p = Problem::synthetic(tasks, vec![8192.0, 4096.0, 2048.0, 1024.0, 512.0, 0.0]);
        let original = decompose_dp(&p, &env);

        // Death 1: original unit 1 (power 2e7).
        let plan1 = replan(&p, &env, &original, 1).unwrap();
        assert_eq!(plan1.env.power, vec![1e7, 3e7, 4e7, 5e7]);
        assert_eq!(plan1.surviving_index(0), Some(0));
        assert_eq!(plan1.surviving_index(1), None, "the dead unit maps to None");
        assert_eq!(plan1.surviving_index(3), Some(2));
        assert_eq!(plan1.surviving_index(9), None, "out of range is None");

        // Death 2, reported as original unit 3 (power 4e7). Its index in
        // the surviving environment is 2 — feeding the raw 3 to `replan`
        // would target original unit 4, an endpoint.
        assert_ne!(plan1.surviving_index(3), Some(3));
        let plan2 = replan_after(&plan1, &p, 3).unwrap();
        assert_eq!(
            plan2.env.power,
            vec![1e7, 3e7, 5e7],
            "original units 1 and 3 are gone, 0/2/4 survive"
        );
        assert_eq!(plan2.dead_unit, 3, "reported in original numbering");
        // The composed map still speaks original numbering.
        assert_eq!(plan2.surviving_index(0), Some(0));
        assert_eq!(plan2.surviving_index(1), None);
        assert_eq!(plan2.surviving_index(2), Some(1));
        assert_eq!(plan2.surviving_index(3), None);
        assert_eq!(plan2.surviving_index(4), Some(2));

        // A unit that already died cannot die again…
        let err = replan_after(&plan2, &p, 1).unwrap_err();
        assert!(err.to_string().contains("already died"), "{err}");
        // …and an out-of-range original index is named as such.
        let err = replan_after(&plan2, &p, 7).unwrap_err();
        assert!(err.to_string().contains("only 5 units"), "{err}");
    }

    #[test]
    fn replan_rejects_endpoint_failures() {
        let env = PipelineEnv::uniform(3, 1e7, 1e6, 1e-5);
        let p = problem();
        let original = decompose_dp(&p, &env);
        let err = replan(&p, &env, &original, 0).unwrap_err();
        assert!(err.to_string().contains("fail over"), "{err}");
        assert!(replan(&p, &env, &original, 2).is_err());
    }
}
