//! End-to-end compilation driver: source → [`FilterPlan`].

use crate::codegen::{build_plan, FilterPlan};
use crate::cost::{chain_costs, volume_bytes, CostEnv, PipelineEnv};
use crate::decompose::{decompose_bottleneck_optimal, decompose_dp, Decomposition, Problem};
use crate::error::CompileResult;
use crate::graph::build_graph;
use crate::normalize::normalize;
use crate::report::{build_report, DecisionReport};
use crate::reqcomm::{atom_sets_with, propagate_reqcomm};
use cgp_lang::frontend;
use cgp_obs::trace::{self, PID_COMPILER};
use std::collections::HashMap;

/// Run one compiler phase inside a trace span (tid 0 = the driver).
/// Allocation-free when no trace sink is installed.
fn phase<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _s = trace::span(name, "compiler-phase", PID_COMPILER, 0);
    f()
}

/// Which objective the decomposition minimizes.
///
/// The paper's DP (Figure 3) minimizes **per-packet latency** — the time
/// one packet takes end-to-end. With the paper's `ReqComm(end) = ∅`
/// convention the final link is free, so on a uniform pipeline the
/// latency-optimal placement can degenerate to "everything on the data
/// host". The **steady-state** objective instead minimizes the paper's
/// Section 4.3 total-time formula `(N−1)·T(bottleneck) + fill`, which is
/// what the evaluation actually measures and which spreads work across the
/// pipeline; it is solved by exhaustive search (fine at these sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// The paper's `O(nm)` dynamic program.
    PerPacketLatency,
    /// Bottleneck-aware total time over `n_packets` packets.
    SteadyState { n_packets: u64 },
}

/// Compilation options: the workload/environment knowledge the compiler
/// uses to choose a decomposition.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// The target pipeline (unit powers, link bandwidths/latencies).
    pub pipeline: PipelineEnv,
    /// Expected points per packet (drives trip counts and volumes).
    pub packet_size: i64,
    /// Extern scalar values known at compile time (e.g. dataset sizes).
    pub symbols: Vec<(String, i64)>,
    /// Estimated selectivity per conditional id.
    pub selectivity: Vec<(usize, f64)>,
    /// Override the decomposition instead of running the DP
    /// (`Decomposition::default_style` gives the paper's Default baseline).
    pub force_decomposition: Option<Decomposition>,
    /// Decomposition objective (default: the paper's latency DP).
    pub objective: Objective,
}

impl CompileOptions {
    pub fn new(pipeline: PipelineEnv, packet_size: i64) -> Self {
        CompileOptions {
            pipeline,
            packet_size,
            symbols: Vec::new(),
            selectivity: Vec::new(),
            force_decomposition: None,
            objective: Objective::PerPacketLatency,
        }
    }

    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    pub fn with_symbol(mut self, name: impl Into<String>, v: i64) -> Self {
        self.symbols.push((name.into(), v));
        self
    }

    pub fn with_selectivity(mut self, cond_id: usize, s: f64) -> Self {
        self.selectivity.push((cond_id, s));
        self
    }

    pub fn with_decomposition(mut self, d: Decomposition) -> Self {
        self.force_decomposition = Some(d);
        self
    }

    /// The cost environment implied by these options.
    pub fn cost_env(&self) -> CostEnv {
        let mut env = CostEnv::for_packet(self.packet_size);
        for (k, v) in &self.symbols {
            env.symbols.insert(k.clone(), *v);
        }
        for (c, s) in &self.selectivity {
            env.selectivity.insert(*c, *s);
        }
        env
    }
}

/// Everything the compiler produced, for inspection and execution.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub plan: FilterPlan,
    /// The decomposition problem the DP solved (virtual source included).
    pub problem: Problem,
    /// The options' pipeline environment.
    pub pipeline: PipelineEnv,
    /// Why this decomposition won: boundary graph, per-boundary volumes,
    /// candidate costs (see [`crate::report`]).
    pub report: DecisionReport,
}

impl Compiled {
    /// Per-packet stage times of the chosen decomposition.
    pub fn stage_times(&self) -> crate::cost::StageTimes {
        crate::decompose::stage_times(
            &self.problem,
            &self.pipeline,
            &self.plan.decomposition.unit_of,
        )
    }
}

/// One point of a packet-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSizePoint {
    pub num_packets: i64,
    pub packet_size: i64,
    /// Predicted total time under the paper's §4.3 formula, with the best
    /// decomposition for that packet size.
    pub predicted_time: f64,
}

/// Automatic packet-size selection (the paper's Section 8 lists this as
/// future work: "Automatically choosing the packet size is another
/// issue"). For each candidate packet count the chain costs are
/// re-estimated at the implied packet size, the best decomposition is
/// chosen, and the steady-state total time is predicted; the minimizing
/// count wins. Returns the sweep (sorted by packet count) and the best
/// point.
///
/// The trade-off captured: few packets → poor overlap and load balance
/// (the `(N−1)·bottleneck + fill` formula degenerates toward fill); many
/// packets → per-packet link latency and per-buffer overheads dominate.
pub fn choose_packet_count(
    src: &str,
    options: &CompileOptions,
    domain_size: i64,
    candidates: &[i64],
) -> CompileResult<(PacketSizePoint, Vec<PacketSizePoint>)> {
    if candidates.is_empty() {
        return Err(crate::error::CompileError::new(
            "no packet-count candidates",
        ));
    }
    let mut sweep = Vec::with_capacity(candidates.len());
    for &n in candidates {
        if n < 1 || n > domain_size.max(1) {
            continue;
        }
        let packet_size = (domain_size / n).max(1);
        let mut opts = options.clone();
        opts.packet_size = packet_size;
        let compiled = compile(src, &opts)?;
        let st = compiled.stage_times();
        sweep.push(PacketSizePoint {
            num_packets: n,
            packet_size,
            predicted_time: st.total_time(n as u64),
        });
    }
    if sweep.is_empty() {
        return Err(crate::error::CompileError::new(
            "no valid packet-count candidate for this domain size",
        ));
    }
    sweep.sort_by_key(|p| p.num_packets);
    let best = sweep
        .iter()
        .min_by(|a, b| {
            a.predicted_time
                .partial_cmp(&b.predicted_time)
                .expect("finite times")
        })
        .cloned()
        .expect("non-empty sweep");
    Ok((best, sweep))
}

/// Compile dialect source into a filter plan for the given environment.
///
/// When a [`cgp_obs`] trace sink is installed each of the seven phases —
/// normalize, graph, gencons, reqcomm, cost, decompose, codegen — is
/// recorded as a span under [`PID_COMPILER`].
pub fn compile(src: &str, options: &CompileOptions) -> CompileResult<Compiled> {
    if trace::enabled() {
        trace::name_process(PID_COMPILER, "cgp-compiler");
        trace::name_thread(PID_COMPILER, 0, "driver");
    }
    let _all = trace::span("compile", "compiler", PID_COMPILER, 0);
    // Phase 1 — normalize: frontend + loop fission / scalar expansion.
    let np = phase("normalize", || -> CompileResult<_> {
        let typed = frontend(src)?;
        normalize(&typed)
    })?;
    // Phase 2 — graph: the candidate filter boundary chain.
    let graph = phase("graph", || build_graph(&np))?;
    let consts: HashMap<String, i64> = options.symbols.iter().cloned().collect();
    // Phase 3 — gencons: per-atom Gen/Cons sets.
    let atom_sets = phase("gencons", || atom_sets_with(&np, &graph, &consts))?;
    // Phase 4 — reqcomm: backward propagation over the chain.
    let analysis = phase("reqcomm", || propagate_reqcomm(&np, &graph, atom_sets))?;
    // Phase 5 — cost: op counting and volume estimation.
    let env = options.cost_env();
    let problem = phase("cost", || {
        let costs = chain_costs(&np, &graph, &analysis.reqcomm, &env);
        let input_vol = volume_bytes(&np, &analysis.input_set, &env, None);
        Problem::from_chain(&costs, input_vol)
    });
    // Phase 6 — decompose: pick the placement and build the report.
    let (decomposition, report) = phase("decompose", || {
        let (decomposition, name): (Decomposition, &'static str) =
            match (&options.force_decomposition, options.objective) {
                (Some(d), _) => (d.clone(), "forced"),
                (None, Objective::PerPacketLatency) => {
                    (decompose_dp(&problem, &options.pipeline), "latency-dp")
                }
                (None, Objective::SteadyState { n_packets }) => (
                    decompose_bottleneck_optimal(&problem, &options.pipeline, n_packets),
                    "steady-state",
                ),
            };
        let n_packets_hint = match options.objective {
            Objective::SteadyState { n_packets } => n_packets,
            Objective::PerPacketLatency => 64,
        };
        let report = build_report(
            &np,
            &graph,
            &analysis,
            &analysis.atom_sets,
            &env,
            &problem,
            &options.pipeline,
            &decomposition,
            name,
            n_packets_hint,
        );
        (decomposition, report)
    });
    // Phase 7 — codegen: the executable filter plan.
    let plan = phase("codegen", || {
        build_plan(&np, &graph, &analysis, &decomposition, options.pipeline.m())
    })?;
    Ok(Compiled {
        plan,
        problem,
        pipeline: options.pipeline.clone(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::run_plan_sequential;
    use cgp_lang::interp::{HostEnv, Interp};
    use cgp_lang::Value;

    const SRC: &str = r#"
        extern int n;
        extern double[] data;
        runtime_define int num_packets;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) {
                        double v = data[i] * 3.0;
                        if (v > 150.0) {
                            acc.add(v - 150.0);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    fn host(n: i64) -> HostEnv {
        let data = Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
            (0..n).map(|i| Value::Double((i % 97) as f64)).collect(),
        )));
        HostEnv::new()
            .bind("n", Value::Int(n))
            .bind("num_packets", Value::Int(8))
            .bind("data", data)
    }

    #[test]
    fn compile_end_to_end_and_run() {
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 1e-5), 64)
            .with_symbol("n", 512)
            .with_selectivity(0, 0.4);
        let c = compile(SRC, &opts).unwrap();
        assert_eq!(c.plan.m, 3);
        assert!(c.plan.decomposition.cost.is_finite());
        let h = host(512);
        let out = run_plan_sequential(&c.plan, &h).unwrap();
        let tp = cgp_lang::frontend(SRC).unwrap();
        let mut it = Interp::new(&tp, h);
        it.run_main().unwrap();
        assert_eq!(out, it.output);
    }

    #[test]
    fn dp_decomposition_beats_default_on_cost() {
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e5, 1e-4), 256)
            .with_symbol("n", 4096)
            .with_selectivity(0, 0.3);
        let dp = compile(SRC, &opts).unwrap();
        let n_tasks = dp.problem.n_tasks();
        let default = Decomposition::default_style(n_tasks, 3);
        let default_cost = crate::decompose::evaluate(&dp.problem, &dp.pipeline, &default.unit_of);
        assert!(
            dp.plan.decomposition.cost <= default_cost + 1e-12,
            "dp {} vs default {default_cost}",
            dp.plan.decomposition.cost
        );
    }

    #[test]
    fn stage_times_available() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e6, 0.0), 64).with_symbol("n", 512);
        let c = compile(SRC, &opts).unwrap();
        let st = c.stage_times();
        assert_eq!(st.comp.len(), 3);
        assert_eq!(st.comm.len(), 2);
        assert!(st.total_time(100) > 0.0);
    }

    #[test]
    fn packet_sweep_finds_an_interior_optimum() {
        // With link latency, 1 packet (no overlap) and too many packets
        // (latency per packet) both lose to an interior count.
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e7, 1e7, 5e-3), 64)
            .with_symbol("n", 65536)
            .with_selectivity(0, 0.3)
            .with_objective(Objective::SteadyState { n_packets: 16 });
        let candidates: Vec<i64> = (0..=14).map(|e| 1i64 << e).collect();
        let (best, sweep) = choose_packet_count(SRC, &opts, 65536, &candidates).unwrap();
        assert_eq!(sweep.len(), 15);
        assert!(sweep
            .windows(2)
            .all(|w| w[0].num_packets < w[1].num_packets));
        let t1 = sweep.first().unwrap().predicted_time;
        let tmax = sweep.last().unwrap().predicted_time;
        assert!(best.predicted_time <= t1);
        assert!(best.predicted_time <= tmax);
        assert!(
            best.num_packets > 1 && best.num_packets < 16384,
            "best = {best:?}
sweep = {sweep:#?}"
        );
        assert_eq!(best.packet_size, 65536 / best.num_packets);
    }

    #[test]
    fn packet_sweep_rejects_empty_candidates() {
        let opts =
            CompileOptions::new(PipelineEnv::uniform(2, 1e7, 1e7, 1e-4), 64).with_symbol("n", 100);
        assert!(choose_packet_count(SRC, &opts, 100, &[]).is_err());
        assert!(choose_packet_count(SRC, &opts, 100, &[200]).is_err());
    }

    #[test]
    fn forced_decomposition_respected() {
        let opts0 =
            CompileOptions::new(PipelineEnv::uniform(2, 1e7, 1e6, 0.0), 64).with_symbol("n", 512);
        let c0 = compile(SRC, &opts0).unwrap();
        let forced = Decomposition::default_style(c0.problem.n_tasks(), 2);
        let opts = opts0.with_decomposition(forced.clone());
        let c = compile(SRC, &opts).unwrap();
        assert_eq!(c.plan.decomposition.unit_of, forced.unit_of);
    }
}
