//! Required-communication analysis (Section 4.2).
//!
//! With the candidate boundary chain `atom_0 … atom_n` and per-atom
//! Gen/Cons sets, the communication required at each candidate boundary is
//! computed in one backward pass:
//!
//! ```text
//! ReqComm(b_n)   = ∅                      (after the last atom)
//! ReqComm(b_i)   = ReqComm(b_{i+1}) − Gen(atom_{i+1}) + Cons(atom_{i+1})
//! ```
//!
//! The computed `ReqComm(b_i)` stays correct even when no filter boundary is
//! actually inserted at `b_{i+1}` (the paper's key observation): any value
//! the merged downstream code needs is either generated between `b_i` and
//! `b_{i+1}` (no longer communicated) or already captured in `ReqComm(b_i)`.
//!
//! The raw sets are then filtered to *communication-relevant* places:
//!
//! - the packet variable itself travels in every buffer header;
//! - prologue-declared values are replicated at filter `init()` (DataCutter
//!   work descriptions), never per packet;
//! - reduction variables are merged by the runtime's reduction channel at
//!   `finalize()`, never per packet (and the paper's model initializes the
//!   final ReqComm to ∅ accordingly);
//! - scalar externs are run configuration;
//! - what remains — extern data arrays and loop-body locals (including
//!   scalar-expanded arrays) — is the per-packet traffic.

use crate::error::CompileResult;
use crate::gencons::{analyze_atom_with, prologue_roots, reduction_roots, SegmentSets};
use crate::graph::BoundaryGraph;
use crate::normalize::NormalizedPipeline;
use crate::place::PlaceSet;
use cgp_lang::ast::Type;
use std::collections::HashMap;
use std::collections::HashSet;

/// Per-chain analysis results.
#[derive(Debug, Clone)]
pub struct ChainAnalysis {
    /// Gen/Cons of each atom, in chain order.
    pub atom_sets: Vec<SegmentSets>,
    /// Raw `ReqComm(b_i)` for each of the `n` candidate boundaries
    /// (`reqcomm[i]` crosses between `atoms[i]` and `atoms[i+1]`).
    pub reqcomm_raw: Vec<PlaceSet>,
    /// Communication-relevant subset of each `ReqComm(b_i)`.
    pub reqcomm: Vec<PlaceSet>,
    /// ReqComm at the virtual chain start (what the whole loop body consumes
    /// per packet — the raw input a Default placement ships downstream).
    pub input_set: PlaceSet,
    /// Roots excluded as reduction variables.
    pub reduction_roots: HashSet<String>,
    /// Roots excluded as prologue (init-replicated) values.
    pub prologue_roots: HashSet<String>,
}

/// Run Gen/Cons per atom and propagate ReqComm backward over the chain.
pub fn analyze_chain(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
) -> CompileResult<ChainAnalysis> {
    analyze_chain_with(np, graph, &HashMap::new())
}

/// [`analyze_chain`] with known extern-scalar values folded into symbolic
/// index expressions (see [`crate::gencons::analyze_atom_with`]).
pub fn analyze_chain_with(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
    consts: &HashMap<String, i64>,
) -> CompileResult<ChainAnalysis> {
    let atom_sets = atom_sets_with(np, graph, consts)?;
    propagate_reqcomm(np, graph, atom_sets)
}

/// Phase 1 — the Gen/Cons pass: analyze each atom in chain order. Split
/// out so the driver can time it separately from the propagation.
pub fn atom_sets_with(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
    consts: &HashMap<String, i64>,
) -> CompileResult<Vec<SegmentSets>> {
    graph
        .atoms
        .iter()
        .map(|a| analyze_atom_with(np, &a.code, consts))
        .collect()
}

/// Phase 2 — the backward ReqComm propagation over precomputed Gen/Cons
/// sets (from [`atom_sets_with`]).
pub fn propagate_reqcomm(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
    atom_sets: Vec<SegmentSets>,
) -> CompileResult<ChainAnalysis> {
    let n = graph.n_boundaries();
    let mut reqcomm_raw = vec![PlaceSet::new(); n];
    // Backward pass: start from ∅ after the last atom.
    let mut cur = PlaceSet::new();
    for i in (0..n).rev() {
        // Code between b_i and b_{i+1} is atom i+1.
        let after = &atom_sets[i + 1];
        cur.kill_all(&after.gen);
        cur.extend(&after.cons);
        reqcomm_raw[i] = cur.clone();
    }
    // One more step across atom 0 gives the chain-start requirement.
    cur.kill_all(&atom_sets[0].gen);
    cur.extend(&atom_sets[0].cons);

    let red = reduction_roots(np);
    let pro = prologue_roots(np);
    let reqcomm = reqcomm_raw
        .iter()
        .map(|set| filter_relevant(np, set, &red, &pro))
        .collect();
    let input_set = filter_relevant(np, &cur, &red, &pro);

    Ok(ChainAnalysis {
        atom_sets,
        reqcomm_raw,
        reqcomm,
        input_set,
        reduction_roots: red,
        prologue_roots: pro,
    })
}

/// Keep only places that actually travel in per-packet buffers.
fn filter_relevant(
    np: &NormalizedPipeline,
    set: &PlaceSet,
    red: &HashSet<String>,
    pro: &HashSet<String>,
) -> PlaceSet {
    set.iter()
        .filter(|p| {
            let root = p.root.as_str();
            if root == np.pkt_var || root == "this" || root == "?unknown" {
                return false;
            }
            if red.contains(root) || pro.contains(root) {
                return false;
            }
            if let Some(ty) = np.typed.symbols.externs.get(root) {
                // extern arrays are the data; extern scalars are config
                return matches!(ty, Type::Array(_));
            }
            true
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::normalize::normalize;
    use cgp_lang::frontend;

    fn chain(src: &str) -> (NormalizedPipeline, BoundaryGraph, ChainAnalysis) {
        let np = normalize(&frontend(src).unwrap()).unwrap();
        let g = build_graph(&np).unwrap();
        let ca = analyze_chain(&np, &g).unwrap();
        (np, g, ca)
    }

    const BASE: &str = r#"
        extern int n;
        extern double[] data;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 4) {
                    foreach (i in pkt) {
                        double v = data[i] * 2.0;
                        if (v > 1.0) {
                            acc.add(v);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    #[test]
    fn reqcomm_shrinks_after_data_is_consumed() {
        let (_np, g, ca) = chain(BASE);
        assert_eq!(ca.reqcomm.len(), g.n_boundaries());
        // Boundary 0 (before the compute atom): raw input `data` crosses.
        let b0 = ca.reqcomm[0].to_string();
        assert!(b0.contains("data[pkt.lo : pkt.hi]"), "b0 = {b0}");
        // Boundary before the cond body: only the derived `v__x` crosses —
        // `data` must no longer appear.
        let last = ca.reqcomm.last().unwrap().to_string();
        assert!(last.contains("v__x"), "last = {last}");
        assert!(!last.contains("data"), "last = {last}");
    }

    #[test]
    fn reduction_and_config_roots_are_filtered() {
        let (_np, _g, ca) = chain(BASE);
        for (i, rc) in ca.reqcomm.iter().enumerate() {
            let s = rc.to_string();
            assert!(!s.contains("acc"), "b{i} = {s}");
            assert!(!s.contains("all"), "b{i} = {s}");
            assert!(!s.contains("pkt,"), "b{i} = {s}");
        }
        // … but the raw sets retain them for inspection.
        assert!(ca
            .reqcomm_raw
            .iter()
            .any(|rc| rc.to_string().contains("acc")));
    }

    #[test]
    fn reqcomm_valid_when_middle_boundary_uncut() {
        // The paper's argument: ReqComm(b_0) stays correct even if b_1 is
        // not selected. Check set inclusion: everything needed at b_0 to run
        // atoms 1..n is present whether or not a cut exists at b_1.
        let (_np, g, ca) = chain(BASE);
        assert!(g.n_boundaries() >= 2);
        // Compute ReqComm(b_0) directly by merging atoms 1..n as one segment.
        let mut merged = PlaceSet::new();
        for i in (1..g.atoms.len()).rev() {
            merged.kill_all(&ca.atom_sets[i].gen);
            merged.extend(&ca.atom_sets[i].cons);
        }
        // The one-pass result equals the merged-segment result.
        assert_eq!(ca.reqcomm_raw[0], merged);
    }

    #[test]
    fn chain_end_is_empty() {
        let (_np, g, ca) = chain(BASE);
        // The last boundary's ReqComm contains no extern data (already
        // consumed upstream) — for this program only derived locals remain.
        let last = &ca.reqcomm[g.n_boundaries() - 1];
        assert!(!last.to_string().contains("data"));
    }

    #[test]
    fn two_stage_program_communicates_intermediate_only() {
        let src = r#"
            extern int n;
            extern double[] xs;
            class Acc implements Reducinterface {
                double t;
                void reduce(Acc o) { t = t + o.t; }
                void add(double v) { t = t + v; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    foreach (i in pkt) {
                        double a = xs[i] + 1.0;
                        double b = a * a;
                        double c = b - a;
                        acc.add(c);
                    }
                }
                print(acc.t);
            } }
        "#;
        // Single foreach, call statement fissions into its own unit:
        // boundaries: [alloc?]… compute | call
        let (_np, g, ca) = chain(src);
        let last = ca.reqcomm[g.n_boundaries() - 1].to_string();
        // Only `c` (expanded) crosses to the accumulate unit.
        assert!(last.contains("c__x"), "last = {last}");
        assert!(!last.contains("a__x"), "last = {last}");
        assert!(!last.contains("b__x"), "last = {last}");
        assert!(!last.contains("xs"), "last = {last}");
    }
}
