//! Code generation (Section 5): turn a decomposition into an executable
//! [`FilterPlan`].
//!
//! Each computing unit gets one filter. A filter's code is the sequence of
//! atomic filters assigned to its unit; buffers between filters follow the
//! [`crate::packing`] layouts computed from ReqComm at the chosen cuts.
//!
//! Special handling:
//!
//! - **Filtering cuts** — when a `CondSelect`/`CondBody` pair is split
//!   across a link, the upstream filter evaluates the condition per point
//!   and emits the passing-index list; sectioned buffer entries carry only
//!   passing elements; the downstream filter executes the guarded body for
//!   passing points only. When both halves land on the same filter, the
//!   original conditional foreach is reconstituted.
//! - **Replicated allocations** — packet-local arrays (scalar expansion
//!   temporaries) whose *contents* are produced downstream of their
//!   allocation site are re-allocated locally by the consuming filter; the
//!   analysis guarantees their contents are fully written before use.
//! - **Reduction finalization** — each filter owns a replicated copy of
//!   every reduction variable (initialized by the replicated prologue, which
//!   must construct the reduction identity); after the last packet the
//!   copies are merged with `reduce` and the epilogue runs at the final
//!   filter.
//!
//! The module also provides [`run_plan_sequential`] — a single-threaded
//! Path-A executor that moves real packed buffers between filter stages and
//! is compared against the sequential interpreter in tests. The threaded
//! DataCutter-backed executor in `cgp-core` reuses the same per-filter step
//! logic through [`FilterStepper`].

use crate::decompose::Decomposition;
use crate::error::{CompileError, CompileResult};
use crate::graph::{AtomCode, BoundaryGraph, BoundaryKind};
use crate::normalize::NormalizedPipeline;
use crate::packing::{compute_layout, pack, unpack, PackLayout, RuntimeEnv};
use crate::place::PlaceSet;
use crate::reqcomm::ChainAnalysis;
use cgp_lang::ast::*;
use cgp_lang::bytecode::{vm::Vm, CodeBlock, ProgramCode};
use cgp_lang::interp::{split_domain, HostEnv, Interp};
use cgp_lang::span::Span;
use cgp_lang::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One filter of the generated pipeline.
#[derive(Debug, Clone)]
pub struct FilterSpec {
    /// Pipeline unit index this filter runs on.
    pub unit: usize,
    pub name: String,
    /// Atom indices (into the boundary graph) executed here, in order.
    pub atoms: Vec<usize>,
    /// VarDecl statements replicated from upstream atoms for packet-local
    /// arrays this filter writes before reading.
    pub replicated_decls: Vec<Stmt>,
}

/// An executable decomposition.
#[derive(Debug, Clone)]
pub struct FilterPlan {
    pub np: NormalizedPipeline,
    pub graph: BoundaryGraph,
    pub analysis: ChainAnalysis,
    pub decomposition: Decomposition,
    /// Number of pipeline units `m`.
    pub m: usize,
    pub filters: Vec<FilterSpec>,
    /// Buffer layout for each link (`m − 1` entries).
    pub layouts: Vec<PackLayout>,
    /// Register bytecode for every filter's atom sequence, lowered once
    /// at plan-build time and shared (read-only) by all filter copies.
    pub lowered: Arc<LoweredPlan>,
}

/// Plan-time lowered bytecode: the whole program's methods plus one step
/// sequence per filter mirroring [`FilterSpec::atoms`] (a
/// `CondSelect`/`CondBody` pair sharing a filter collapses into one
/// reconstituted slice, exactly as the interpreter path does).
#[derive(Debug)]
pub struct LoweredPlan {
    pub prog: ProgramCode,
    pub steps: Vec<Vec<LoweredStep>>,
    /// Per-filter replicated packet-local allocations.
    pub replicated: Vec<Option<CodeBlock>>,
}

/// One VM-executable unit of a filter's packet step.
#[derive(Debug)]
pub enum LoweredStep {
    /// Straight-line statements, a foreach atom, or a reconstituted
    /// conditional foreach.
    Slice(CodeBlock),
    /// Filtering-cut condition probe (fills the `__pass` mask).
    Select(CodeBlock),
    /// Guarded body run per passing point, bound to `var`.
    Body { var: String, code: CodeBlock },
}

/// Lower every filter's atoms for the VM path. Pairing logic must match
/// [`FilterStepper::step`]'s interpreter loop so both engines execute the
/// same statements in the same order.
fn lower_filters(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
    filters: &[FilterSpec],
) -> LoweredPlan {
    let tp = &np.typed;
    let prog = ProgramCode::lower(tp);
    let class = &np.class;
    let mut steps = Vec::with_capacity(filters.len());
    let mut replicated = Vec::with_capacity(filters.len());
    for f in filters {
        replicated.push(if f.replicated_decls.is_empty() {
            None
        } else {
            Some(prog.lower_slice(tp, class, &f.replicated_decls))
        });
        let mut list = Vec::new();
        let atoms = &f.atoms;
        let mut k = 0usize;
        while k < atoms.len() {
            let a = atoms[k];
            match &graph.atoms[a].code {
                AtomCode::Straight(ss) => {
                    list.push(LoweredStep::Slice(prog.lower_slice(tp, class, ss)));
                }
                AtomCode::Foreach(s) => {
                    list.push(LoweredStep::Slice(prog.lower_slice(
                        tp,
                        class,
                        std::slice::from_ref(s),
                    )));
                }
                AtomCode::CondSelect {
                    var,
                    domain,
                    cond,
                    cond_id,
                } => {
                    let body_here = k + 1 < atoms.len()
                        && matches!(&graph.atoms[atoms[k+1]].code, AtomCode::CondBody { cond_id: c2, .. } if c2 == cond_id);
                    if body_here {
                        let AtomCode::CondBody { body, .. } = &graph.atoms[atoms[k + 1]].code
                        else {
                            unreachable!("checked above");
                        };
                        let merged = reconstitute(var, domain, cond, body);
                        list.push(LoweredStep::Slice(prog.lower_slice(
                            tp,
                            class,
                            std::slice::from_ref(&merged),
                        )));
                        k += 2;
                        continue;
                    }
                    let probe = select_probe(var, domain, cond);
                    list.push(LoweredStep::Select(prog.lower_slice(tp, class, &probe)));
                }
                AtomCode::CondBody { var, body, .. } => {
                    list.push(LoweredStep::Body {
                        var: var.clone(),
                        code: prog.lower_slice(tp, class, &body.stmts),
                    });
                }
            }
            k += 1;
        }
        steps.push(list);
    }
    LoweredPlan {
        prog,
        steps,
        replicated,
    }
}

impl FilterPlan {
    /// Human-readable summary (which atoms run where, what crosses where).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for f in &self.filters {
            let labels: Vec<&str> = f
                .atoms
                .iter()
                .map(|a| self.graph.atoms[*a].label.as_str())
                .collect();
            let _ = writeln!(
                s,
                "filter {} on C{}: [{}]",
                f.name,
                f.unit + 1,
                labels.join(", ")
            );
        }
        for (l, lay) in self.layouts.iter().enumerate() {
            let places: Vec<String> = lay.entries().map(|e| e.place.to_string()).collect();
            let _ = writeln!(
                s,
                "link L{}: {} {}",
                l + 1,
                places.join(", "),
                if lay.filtered.is_some() {
                    "(filtered)"
                } else {
                    ""
                }
            );
        }
        s
    }
}

/// Build the filter plan for a decomposition over `m` units.
pub fn build_plan(
    np: &NormalizedPipeline,
    graph: &BoundaryGraph,
    analysis: &ChainAnalysis,
    decomposition: &Decomposition,
    m: usize,
) -> CompileResult<FilterPlan> {
    let n_tasks = decomposition.unit_of.len();
    if n_tasks != graph.atoms.len() + 1 {
        return Err(CompileError::new(format!(
            "decomposition covers {} tasks but the chain has {} atoms (+1 virtual source)",
            n_tasks,
            graph.atoms.len()
        )));
    }

    // Atoms per unit (task i ↦ atom i-1).
    let mut filters: Vec<FilterSpec> = (0..m)
        .map(|j| FilterSpec {
            unit: j,
            name: format!("f{}", j + 1),
            atoms: Vec::new(),
            replicated_decls: Vec::new(),
        })
        .collect();
    for (task, &unit) in decomposition.unit_of.iter().enumerate().skip(1) {
        if unit >= m {
            return Err(CompileError::new(
                "assignment references a unit beyond the pipeline",
            ));
        }
        filters[unit].atoms.push(task - 1);
    }

    // Per-filter Cons (for layout first-consumer classification), plus the
    // epilogue's consumption folded into the last filter.
    let mut filter_cons: Vec<PlaceSet> = Vec::with_capacity(m);
    for f in &filters {
        let mut set = PlaceSet::new();
        for &a in &f.atoms {
            set.extend(&analysis.atom_sets[a].cons);
        }
        filter_cons.push(set);
    }
    if let Ok(ep) = crate::gencons::analyze_stmts(np, &np.epilogue) {
        filter_cons[m - 1].extend(&ep.cons);
    }

    // Layouts per link.
    let carried = decomposition.carried_task(m);
    let mut layouts = Vec::with_capacity(m.saturating_sub(1));
    let empty = PlaceSet::new();
    for (l, &t) in carried.iter().enumerate() {
        // t == 0: raw input crosses. t == n+1 (all atoms upstream): nothing
        // crosses per packet — the paper's ReqComm(end) = ∅; results travel
        // through the reduction channel at finalize.
        let set = if t == 0 {
            &analysis.input_set
        } else {
            analysis.reqcomm.get(t - 1).unwrap_or(&empty)
        };
        let filtered = if t >= 1 && t - 1 < graph.atoms.len() {
            match (&graph.boundaries.get(t - 1), &graph.atoms[t - 1].code) {
                (Some(b), AtomCode::CondSelect { cond_id, .. })
                    if b.kind == BoundaryKind::CondFilter =>
                {
                    Some(*cond_id)
                }
                _ => None,
            }
        } else {
            None
        };
        let layout = compute_layout(np, set, &filter_cons[l + 1..], l + 1, filtered)?;
        layouts.push(layout);
    }

    // Replicated allocations: roots a filter's atoms touch that are neither
    // received, locally declared, prologue/extern, nor loop vars.
    let decls = collect_decls(graph);
    for (j, f) in filters.iter_mut().enumerate() {
        let received: HashSet<String> = if j == 0 {
            HashSet::new()
        } else {
            layouts[j - 1]
                .entries()
                .map(|e| e.place.root.clone())
                .collect()
        };
        let mut declared: HashSet<String> = HashSet::new();
        let mut needed: Vec<String> = Vec::new();
        for &a in &f.atoms {
            atom_names(&graph.atoms[a].code, &mut declared, &mut needed);
        }
        for root in needed {
            if received.contains(&root)
                || declared.contains(&root)
                || analysis.prologue_roots.contains(&root)
                || analysis.reduction_roots.contains(&root)
                || np.typed.symbols.externs.contains_key(&root)
                || root == np.pkt_var
            {
                continue;
            }
            if let Some(d) = decls.get(&root) {
                if !f.replicated_decls.iter().any(|s| stmt_declares(s, &root)) {
                    f.replicated_decls.push(d.clone());
                }
            }
        }
    }

    let lowered = Arc::new(lower_filters(np, graph, &filters));
    Ok(FilterPlan {
        np: np.clone(),
        graph: graph.clone(),
        analysis: analysis.clone(),
        decomposition: decomposition.clone(),
        m,
        filters,
        layouts,
        lowered,
    })
}

fn stmt_declares(s: &Stmt, name: &str) -> bool {
    matches!(&s.kind, StmtKind::VarDecl { name: n, .. } if n == name)
}

/// All VarDecl statements in the chain, by name (for replication).
fn collect_decls(graph: &BoundaryGraph) -> HashMap<String, Stmt> {
    let mut out = HashMap::new();
    for atom in &graph.atoms {
        let stmts: Vec<&Stmt> = match &atom.code {
            AtomCode::Straight(ss) => ss.iter().collect(),
            AtomCode::Foreach(s) => vec![s],
            _ => vec![],
        };
        for s in stmts {
            s.visit(&mut |st| {
                if let StmtKind::VarDecl { name, .. } = &st.kind {
                    out.entry(name.clone()).or_insert_with(|| st.clone());
                }
            });
        }
    }
    out
}

/// Collect declared names and used (read or written) roots of an atom.
fn atom_names(code: &AtomCode, declared: &mut HashSet<String>, needed: &mut Vec<String>) {
    fn visit_stmt(s: &Stmt, declared: &mut HashSet<String>, needed: &mut Vec<String>) {
        s.visit(&mut |st| {
            if let StmtKind::VarDecl { name, .. } = &st.kind {
                declared.insert(name.clone());
            }
            if let StmtKind::Foreach { var, .. } = &st.kind {
                declared.insert(var.clone());
            }
            collect_stmt_var_reads(st, needed);
        });
    }
    match code {
        AtomCode::Straight(ss) => {
            for s in ss {
                visit_stmt(s, declared, needed);
            }
        }
        AtomCode::Foreach(s) => visit_stmt(s, declared, needed),
        AtomCode::CondSelect { var, cond, .. } => {
            declared.insert(var.clone());
            collect_expr_vars(cond, needed);
        }
        AtomCode::CondBody { var, body, .. } => {
            declared.insert(var.clone());
            for s in &body.stmts {
                visit_stmt(s, declared, needed);
            }
        }
    }
}

fn collect_stmt_var_reads(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::VarDecl { init: Some(e), .. } => {
            collect_expr_vars(e, out);
        }
        StmtKind::Assign { target, value, .. } => {
            collect_expr_vars(value, out);
            match target {
                LValue::Var(n) => out.push(n.clone()),
                LValue::Field(b, _) => collect_expr_vars(b, out),
                LValue::Index(b, i) => {
                    collect_expr_vars(b, out);
                    collect_expr_vars(i, out);
                }
            }
        }
        StmtKind::If { cond, .. } => collect_expr_vars(cond, out),
        StmtKind::While { cond, .. } => collect_expr_vars(cond, out),
        StmtKind::For { cond: Some(c), .. } => {
            collect_expr_vars(c, out);
        }
        StmtKind::Foreach { domain, .. } => collect_expr_vars(domain, out),
        StmtKind::Return(Some(e)) | StmtKind::Expr(e) => collect_expr_vars(e, out),
        _ => {}
    }
}

fn collect_expr_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Var(n) => out.push(n.clone()),
        ExprKind::Field(b, _) => collect_expr_vars(b, out),
        ExprKind::Index(b, i) => {
            collect_expr_vars(b, out);
            collect_expr_vars(i, out);
        }
        ExprKind::Unary(_, x) => collect_expr_vars(x, out),
        ExprKind::Binary(_, l, r) => {
            collect_expr_vars(l, out);
            collect_expr_vars(r, out);
        }
        ExprKind::Ternary(c, a, b) => {
            collect_expr_vars(c, out);
            collect_expr_vars(a, out);
            collect_expr_vars(b, out);
        }
        ExprKind::Call { recv, args, .. } => {
            if let Some(r) = recv {
                collect_expr_vars(r, out);
            }
            for a in args {
                collect_expr_vars(a, out);
            }
        }
        ExprKind::NewArray(_, len) => collect_expr_vars(len, out),
        ExprKind::DomainLit(lo, hi) => {
            collect_expr_vars(lo, out);
            collect_expr_vars(hi, out);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Path-A execution

/// Per-filter execution driver shared by the sequential oracle runner here
/// and the threaded DataCutter executor in `cgp-core`.
pub struct FilterStepper<'p> {
    pub plan: &'p FilterPlan,
    /// Persistent per-filter state (prologue results, reduction copies).
    pub state: Vec<HashMap<String, Value>>,
    /// Scalar extern config visible to every filter.
    config: HashMap<String, Value>,
    /// Full host bindings (arrays included) — only the source filter sees
    /// these, which keeps the oracle honest about data placement.
    source_env: HashMap<String, Value>,
    /// Execute packet steps on the register VM instead of the tree
    /// walker. Off by default so [`run_plan_sequential`] stays an
    /// independent interpreter-backed oracle; the threaded executor in
    /// `cgp-core` turns it on unless `CGP_NO_VM` says otherwise.
    use_vm: bool,
}

impl<'p> FilterStepper<'p> {
    /// Initialize per-filter state by running the replicated prologue.
    pub fn new(plan: &'p FilterPlan, host: &HostEnv) -> CompileResult<Self> {
        let tp = &plan.np.typed;
        let mut config = HashMap::new();
        for e in &tp.program.externs {
            let v = host.values.get(&e.name).ok_or_else(|| {
                CompileError::new(format!("extern `{}` not bound by host", e.name))
            })?;
            if !matches!(e.ty, Type::Array(_)) {
                config.insert(e.name.clone(), v.clone());
            }
        }
        let mut state = Vec::with_capacity(plan.m);
        for _ in 0..plan.m {
            // Each filter runs the prologue against the full host env (the
            // prologue must be cheap and deterministic — documented).
            let mut interp = Interp::new(
                tp,
                HostEnv {
                    values: host.values.clone(),
                },
            );
            let mut vars = HashMap::new();
            interp
                .exec_stmts_with_vars(&plan.np.class, &plan.np.prologue, &mut vars)
                .map_err(CompileError::from)?;
            state.push(vars);
        }
        Ok(FilterStepper {
            plan,
            state,
            config,
            source_env: host.values.clone(),
            use_vm: false,
        })
    }

    /// Select the packet-step engine: the register VM (`true`) or the
    /// tree-walking interpreter (`false`, the default). Prologue, loop
    /// bounds, reduction merge, and epilogue always use the interpreter —
    /// they run once per unit of work, not per packet.
    pub fn with_vm(mut self, on: bool) -> Self {
        self.use_vm = on;
        self
    }

    /// Evaluate the pipelined loop's domain and packet count using filter
    /// 0's post-prologue state.
    pub fn loop_bounds(&self) -> CompileResult<((i64, i64), i64)> {
        let plan = self.plan;
        let tp = &plan.np.typed;
        let mut interp = Interp::new(
            tp,
            HostEnv {
                values: self.source_env.clone(),
            },
        );
        let mut vars = self.state[0].clone();
        let mut ids = NodeIdGen::above(&tp.program);
        let probe = vec![
            Stmt::new(
                ids.fresh(),
                Span::synthetic(),
                StmtKind::VarDecl {
                    name: "__dom".into(),
                    ty: Type::RectDomain(1),
                    init: Some(plan.np.domain.clone()),
                },
            ),
            Stmt::new(
                ids.fresh(),
                Span::synthetic(),
                StmtKind::VarDecl {
                    name: "__np".into(),
                    ty: Type::Int,
                    init: Some(plan.np.num_packets.clone()),
                },
            ),
        ];
        interp
            .exec_stmts_with_vars(&plan.np.class, &probe, &mut vars)
            .map_err(CompileError::from)?;
        let Some(Value::Domain(lo, hi)) = vars.get("__dom").cloned() else {
            return Err(CompileError::new("could not evaluate PipelinedLoop domain"));
        };
        let Some(Value::Int(np_)) = vars.get("__np").cloned() else {
            return Err(CompileError::new("could not evaluate num_packets"));
        };
        if np_ <= 0 {
            return Err(CompileError::new("num_packets must be positive"));
        }
        Ok(((lo, hi), np_))
    }

    /// Runtime env for section evaluation (packet + scalar config symbols).
    fn runtime_env(&self, lo: i64, hi: i64) -> RuntimeEnv {
        let mut env = RuntimeEnv::for_packet(&self.plan.np.pkt_var, lo, hi);
        for (k, v) in &self.config {
            if let Value::Int(i) = v {
                env.symbols.insert(k.clone(), *i);
            }
        }
        env
    }

    /// Run filter `j` for packet `(lo, hi)`. `input` is the buffer received
    /// from upstream (`None` for the source filter); the result is the
    /// buffer to send downstream (`None` for the final filter).
    pub fn step(
        &mut self,
        j: usize,
        pkt: (i64, i64),
        input: Option<&[u8]>,
    ) -> CompileResult<Option<Vec<u8>>> {
        if self.use_vm {
            return self.step_vm(j, pkt, input);
        }
        let plan = self.plan;
        let tp = &plan.np.typed;
        let (lo, hi) = pkt;
        let renv = self.runtime_env(lo, hi);

        // Visible globals: full host env at the source, config-only
        // downstream (so a miscompiled plan fails loudly instead of
        // silently reading data it should have received).
        let globals = if j == 0 {
            self.source_env.clone()
        } else {
            self.config.clone()
        };
        let mut interp = Interp::new(tp, HostEnv { values: globals });

        // Packet-local bindings: persistent state + unpacked buffer.
        let mut vars: HashMap<String, Value> = self.state[j].clone();
        let mut selection: Option<Vec<i64>> = None;
        if j > 0 {
            let input = input
                .ok_or_else(|| CompileError::new(format!("filter {j} expected an input buffer")))?;
            let un = unpack(&plan.layouts[j - 1], &renv, input)?;
            selection = un.selection;
            for (k, v) in un.vars {
                vars.insert(k, v);
            }
        }
        vars.insert(plan.np.pkt_var.clone(), Value::Domain(lo, hi));
        if j == 0 {
            // The source filter owns the extern data arrays; make them
            // packable/bindable alongside the state.
            for (name, ty) in &tp.symbols.externs {
                if matches!(ty, Type::Array(_)) {
                    if let Some(v) = self.source_env.get(name) {
                        vars.insert(name.clone(), v.clone());
                    }
                }
            }
        }

        // Replicated packet-local allocations.
        let spec = &plan.filters[j];
        if !spec.replicated_decls.is_empty() {
            let decls = spec.replicated_decls.clone();
            interp
                .exec_stmts_with_vars(&plan.np.class, &decls, &mut vars)
                .map_err(CompileError::from)?;
        }

        // Execute atoms.
        let atoms = spec.atoms.clone();
        let mut k = 0usize;
        while k < atoms.len() {
            let a = atoms[k];
            match &plan.graph.atoms[a].code {
                AtomCode::Straight(ss) => {
                    let ss = ss.clone();
                    interp
                        .exec_stmts_with_vars(&plan.np.class, &ss, &mut vars)
                        .map_err(CompileError::from)?;
                }
                AtomCode::Foreach(s) => {
                    let s = s.clone();
                    interp
                        .exec_stmts_with_vars(&plan.np.class, std::slice::from_ref(&s), &mut vars)
                        .map_err(CompileError::from)?;
                }
                AtomCode::CondSelect {
                    var,
                    domain,
                    cond,
                    cond_id,
                } => {
                    // Same-filter body? Reconstitute the conditional foreach.
                    let body_here = k + 1 < atoms.len()
                        && matches!(&plan.graph.atoms[atoms[k+1]].code, AtomCode::CondBody { cond_id: c2, .. } if c2 == cond_id);
                    if body_here {
                        let AtomCode::CondBody { body, .. } = &plan.graph.atoms[atoms[k + 1]].code
                        else {
                            unreachable!("checked above");
                        };
                        let merged = reconstitute(var, domain, cond, body);
                        interp
                            .exec_stmts_with_vars(
                                &plan.np.class,
                                std::slice::from_ref(&merged),
                                &mut vars,
                            )
                            .map_err(CompileError::from)?;
                        k += 2;
                        continue;
                    }
                    // Cut here: evaluate the condition per point, collect
                    // passing absolute indices.
                    let mut passing = Vec::new();
                    let (var, domain, cond) = (var.clone(), domain.clone(), cond.clone());
                    let probe = select_probe(&var, &domain, &cond);
                    let mut pv = vars.clone();
                    interp
                        .exec_stmts_with_vars(&plan.np.class, &probe, &mut pv)
                        .map_err(CompileError::from)?;
                    if let Some(Value::Array(mask)) = pv.get("__pass") {
                        for (off, v) in mask.borrow().iter().enumerate() {
                            if matches!(v, Value::Bool(true)) {
                                passing.push(lo + off as i64);
                            }
                        }
                    }
                    selection = Some(passing);
                }
                AtomCode::CondBody { var, body, .. } => {
                    // Executed for passing points only (received or locally
                    // produced selection).
                    let sel = selection
                        .clone()
                        .ok_or_else(|| CompileError::new("CondBody without a selection list"))?;
                    let var = var.clone();
                    let body = body.clone();
                    for i in sel {
                        vars.insert(var.clone(), Value::Int(i));
                        interp
                            .exec_stmts_with_vars(&plan.np.class, &body.stmts, &mut vars)
                            .map_err(CompileError::from)?;
                    }
                    vars.remove(&var);
                }
            }
            k += 1;
        }

        // Persist reduction-root mutations (Rc-shared, so already visible in
        // state) — nothing to copy back explicitly. Pack for downstream.
        if j < plan.m - 1 {
            let layout = &plan.layouts[j];
            let buf = pack(layout, &vars, &renv, (lo, hi), selection.as_deref())?;
            Ok(Some(buf))
        } else {
            Ok(None)
        }
    }

    /// [`FilterStepper::step`] on the register VM: same globals, same
    /// packet-local bindings, same atom order (via the plan's lowered
    /// step list), same pack/unpack — only the statement executor
    /// changes. Divergence from the interpreter path is a bug; the
    /// differential suites in `cgp-lang` and `cgp-core` enforce that.
    fn step_vm(
        &mut self,
        j: usize,
        pkt: (i64, i64),
        input: Option<&[u8]>,
    ) -> CompileResult<Option<Vec<u8>>> {
        let plan = self.plan;
        let tp = &plan.np.typed;
        let (lo, hi) = pkt;
        let renv = self.runtime_env(lo, hi);
        let lowered = &plan.lowered;

        let globals = if j == 0 {
            self.source_env.clone()
        } else {
            self.config.clone()
        };
        let mut vm = Vm::new(&lowered.prog, HostEnv { values: globals });

        let mut vars: HashMap<String, Value> = self.state[j].clone();
        let mut selection: Option<Vec<i64>> = None;
        if j > 0 {
            let input = input
                .ok_or_else(|| CompileError::new(format!("filter {j} expected an input buffer")))?;
            let un = unpack(&plan.layouts[j - 1], &renv, input)?;
            selection = un.selection;
            for (k, v) in un.vars {
                vars.insert(k, v);
            }
        }
        vars.insert(plan.np.pkt_var.clone(), Value::Domain(lo, hi));
        if j == 0 {
            for (name, ty) in &tp.symbols.externs {
                if matches!(ty, Type::Array(_)) {
                    if let Some(v) = self.source_env.get(name) {
                        vars.insert(name.clone(), v.clone());
                    }
                }
            }
        }

        if let Some(code) = &lowered.replicated[j] {
            vm.exec_slice(code, &mut vars).map_err(CompileError::from)?;
        }

        for step in &lowered.steps[j] {
            match step {
                LoweredStep::Slice(code) => {
                    vm.exec_slice(code, &mut vars).map_err(CompileError::from)?;
                }
                LoweredStep::Select(code) => {
                    let mut pv = vars.clone();
                    vm.exec_slice(code, &mut pv).map_err(CompileError::from)?;
                    let mut passing = Vec::new();
                    if let Some(Value::Array(mask)) = pv.get("__pass") {
                        for (off, v) in mask.borrow().iter().enumerate() {
                            if matches!(v, Value::Bool(true)) {
                                passing.push(lo + off as i64);
                            }
                        }
                    }
                    selection = Some(passing);
                }
                LoweredStep::Body { var, code } => {
                    let sel = selection
                        .clone()
                        .ok_or_else(|| CompileError::new("CondBody without a selection list"))?;
                    for i in sel {
                        vars.insert(var.clone(), Value::Int(i));
                        vm.exec_slice(code, &mut vars).map_err(CompileError::from)?;
                    }
                    vars.remove(var);
                }
            }
        }

        if j < plan.m - 1 {
            let layout = &plan.layouts[j];
            let buf = pack(layout, &vars, &renv, (lo, hi), selection.as_deref())?;
            Ok(Some(buf))
        } else {
            Ok(None)
        }
    }

    /// Filter `j`'s reduction-variable bindings (for shipping at
    /// end-of-work in distributed executions).
    pub fn reduction_state(&self, j: usize) -> HashMap<String, Value> {
        self.plan
            .analysis
            .reduction_roots
            .iter()
            .filter_map(|r| self.state[j].get(r).map(|v| (r.clone(), v.clone())))
            .collect()
    }

    /// Merge an upstream filter's reduction partials into filter `j`'s
    /// copies via each object's `reduce` method.
    pub fn merge_reduction(
        &mut self,
        j: usize,
        partial: &HashMap<String, Value>,
    ) -> CompileResult<()> {
        let tp = &self.plan.np.typed;
        let mut interp = Interp::new(
            tp,
            HostEnv {
                values: self.config.clone(),
            },
        );
        for (root, part) in partial {
            let Some(Value::Object(own)) = self.state[j].get(root).cloned() else {
                continue;
            };
            let class = own.borrow().class.clone();
            interp
                .call_method(&class, "reduce", Some(own), vec![part.clone()])
                .map_err(CompileError::from)?;
        }
        Ok(())
    }

    /// Run the epilogue against filter `j`'s state (after all partials have
    /// been merged into it). Returns the captured `print` output.
    pub fn epilogue_at(&mut self, j: usize) -> CompileResult<Vec<String>> {
        let tp = &self.plan.np.typed;
        let mut interp = Interp::new(
            tp,
            HostEnv {
                values: self.config.clone(),
            },
        );
        let mut vars = self.state[j].clone();
        let epi = self.plan.np.epilogue.clone();
        interp
            .exec_stmts_with_vars(&self.plan.np.class, &epi, &mut vars)
            .map_err(CompileError::from)?;
        Ok(interp.output)
    }

    /// Merge reduction copies into the last filter's state and run the
    /// epilogue there. Returns the interpreter's captured `print` output.
    pub fn finalize(&mut self, host: &HostEnv) -> CompileResult<Vec<String>> {
        let plan = self.plan;
        let tp = &plan.np.typed;
        let mut interp = Interp::new(
            tp,
            HostEnv {
                values: host.values.clone(),
            },
        );
        let last = plan.m - 1;
        let red_roots: Vec<String> = plan.analysis.reduction_roots.iter().cloned().collect();
        for root in &red_roots {
            let Some(Value::Object(final_obj)) = self.state[last].get(root).cloned() else {
                continue;
            };
            let class = final_obj.borrow().class.clone();
            for j in 0..last {
                if let Some(partial) = self.state[j].get(root).cloned() {
                    interp
                        .call_method(&class, "reduce", Some(final_obj.clone()), vec![partial])
                        .map_err(CompileError::from)?;
                }
            }
        }
        let mut vars = self.state[last].clone();
        let epi = plan.np.epilogue.clone();
        interp
            .exec_stmts_with_vars(&plan.np.class, &epi, &mut vars)
            .map_err(CompileError::from)?;
        Ok(interp.output)
    }
}

/// `foreach (var in domain) { if (cond) { body } }` — rebuilt when both
/// halves share a filter.
fn reconstitute(var: &str, domain: &Expr, cond: &Expr, body: &Block) -> Stmt {
    let iff = Stmt::new(
        NodeId(u32::MAX - 2),
        Span::synthetic(),
        StmtKind::If {
            cond: cond.clone(),
            then_blk: body.clone(),
            else_blk: None,
        },
    );
    Stmt::new(
        NodeId(u32::MAX - 3),
        Span::synthetic(),
        StmtKind::Foreach {
            var: var.to_string(),
            domain: domain.clone(),
            body: Block::new(vec![iff]),
        },
    )
}

/// Statements computing `__pass[i - domain.lo()] = cond` for every point.
fn select_probe(var: &str, domain: &Expr, cond: &Expr) -> Vec<Stmt> {
    let mk = |kind| Stmt::new(NodeId(u32::MAX - 4), Span::synthetic(), kind);
    let size = Expr::new(
        Span::synthetic(),
        ExprKind::Call {
            recv: Some(Box::new(domain.clone())),
            method: "size".into(),
            args: vec![],
        },
    );
    let lo = Expr::new(
        Span::synthetic(),
        ExprKind::Call {
            recv: Some(Box::new(domain.clone())),
            method: "lo".into(),
            args: vec![],
        },
    );
    let idx = Expr::new(
        Span::synthetic(),
        ExprKind::Binary(
            BinOp::Sub,
            Box::new(Expr::new(Span::synthetic(), ExprKind::Var(var.to_string()))),
            Box::new(lo),
        ),
    );
    vec![
        mk(StmtKind::VarDecl {
            name: "__pass".into(),
            ty: Type::array_of(Type::Bool),
            init: Some(Expr::new(
                Span::synthetic(),
                ExprKind::NewArray(Type::Bool, Box::new(size)),
            )),
        }),
        mk(StmtKind::Foreach {
            var: var.to_string(),
            domain: domain.clone(),
            body: Block::new(vec![mk(StmtKind::Assign {
                target: LValue::Index(
                    Box::new(Expr::new(Span::synthetic(), ExprKind::Var("__pass".into()))),
                    Box::new(idx),
                ),
                op: AssignOp::Set,
                value: cond.clone(),
            })]),
        }),
    ]
}

/// Run the whole plan single-threaded: every packet flows through all
/// filters with real buffer packing between them; reduction merge and
/// epilogue at the end. Returns the captured `print` output (compare with a
/// sequential interpreter run of the same program).
pub fn run_plan_sequential(plan: &FilterPlan, host: &HostEnv) -> CompileResult<Vec<String>> {
    let mut stepper = FilterStepper::new(plan, host)?;
    let ((dlo, dhi), n_packets) = stepper.loop_bounds()?;
    for (lo, hi) in split_domain(dlo, dhi, n_packets as usize) {
        let mut buf: Option<Vec<u8>> = None;
        for j in 0..plan.m {
            buf = stepper.step(j, (lo, hi), buf.as_deref())?;
        }
    }
    stepper.finalize(host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{chain_costs, CostEnv};
    use crate::decompose::{decompose_dp, Problem};
    use crate::graph::build_graph;
    use crate::normalize::normalize;
    use crate::reqcomm::analyze_chain;
    use cgp_lang::frontend;
    use cgp_lang::interp::Interp as SeqInterp;

    /// Compile a source with a fixed decomposition style for `m` units.
    fn make_plan(src: &str, m: usize, decomp: DecompStyle) -> FilterPlan {
        let np = normalize(&frontend(src).unwrap()).unwrap();
        let g = build_graph(&np).unwrap();
        let ca = analyze_chain(&np, &g).unwrap();
        let n_tasks = g.atoms.len() + 1;
        let d = match decomp {
            DecompStyle::Default => Decomposition::default_style(n_tasks, m),
            DecompStyle::Spread => {
                // round-robin-ish monotone split of atoms over units
                let mut unit_of = vec![0usize];
                for i in 0..g.atoms.len() {
                    unit_of.push(((i + 1) * m / n_tasks).min(m - 1));
                }
                Decomposition {
                    unit_of,
                    cost: f64::NAN,
                }
            }
            DecompStyle::Dp => {
                let env = CostEnv::for_packet(64).with_symbol("n", 256);
                let costs = chain_costs(&np, &g, &ca.reqcomm, &env);
                let input_vol = crate::cost::volume_bytes(&np, &ca.input_set, &env, None);
                let problem = Problem::from_chain(&costs, input_vol);
                let penv = crate::cost::PipelineEnv::uniform(m, 1e6, 1e5, 1e-5);
                decompose_dp(&problem, &penv)
            }
        };
        build_plan(&np, &g, &ca, &d, m).unwrap()
    }

    enum DecompStyle {
        Default,
        Spread,
        Dp,
    }

    fn oracle(src: &str, host: &HostEnv) -> Vec<String> {
        let tp = frontend(src).unwrap();
        let mut it = SeqInterp::new(&tp, host.clone());
        it.run_main().unwrap();
        it.output
    }

    const BASE: &str = r#"
        extern int n;
        extern double[] data;
        runtime_define int num_packets;
        class Acc implements Reducinterface {
            double total;
            void reduce(Acc other) { total = total + other.total; }
            void add(double x) { total = total + x; }
        }
        class A {
            void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) {
                        double v = data[i] * 2.0 + 1.0;
                        if (v > 50.0) {
                            acc.add(v);
                        }
                    }
                }
                print(acc.total);
            }
        }
    "#;

    fn base_host(n: i64, num_packets: i64) -> HostEnv {
        let data = Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
            (0..n)
                .map(|i| Value::Double((i * 7 % 100) as f64))
                .collect(),
        )));
        HostEnv::new()
            .bind("n", Value::Int(n))
            .bind("num_packets", Value::Int(num_packets))
            .bind("data", data)
    }

    #[test]
    fn plan_structure_covers_all_atoms() {
        let plan = make_plan(BASE, 3, DecompStyle::Spread);
        let total: usize = plan.filters.iter().map(|f| f.atoms.len()).sum();
        assert_eq!(total, plan.graph.atoms.len());
        assert_eq!(plan.layouts.len(), 2);
        assert!(!plan.describe().is_empty());
    }

    #[test]
    fn sequential_plan_matches_oracle_default() {
        let host = base_host(100, 5);
        let plan = make_plan(BASE, 3, DecompStyle::Default);
        let out = run_plan_sequential(&plan, &host).unwrap();
        assert_eq!(out, oracle(BASE, &host));
    }

    #[test]
    fn sequential_plan_matches_oracle_spread() {
        let host = base_host(100, 4);
        let plan = make_plan(BASE, 3, DecompStyle::Spread);
        let out = run_plan_sequential(&plan, &host).unwrap();
        assert_eq!(out, oracle(BASE, &host));
    }

    #[test]
    fn sequential_plan_matches_oracle_dp() {
        let host = base_host(128, 8);
        let plan = make_plan(BASE, 3, DecompStyle::Dp);
        let out = run_plan_sequential(&plan, &host).unwrap();
        assert_eq!(out, oracle(BASE, &host));
    }

    #[test]
    fn works_across_pipeline_sizes_and_packet_counts() {
        for m in 1..=4 {
            for np_ in [1, 3, 7] {
                let host = base_host(64, np_);
                let plan = make_plan(BASE, m, DecompStyle::Spread);
                let out = run_plan_sequential(&plan, &host).unwrap();
                assert_eq!(out, oracle(BASE, &host), "m={m} packets={np_}");
            }
        }
    }

    #[test]
    fn filtering_cut_reduces_buffer_volume() {
        // Compare buffer sizes: a plan cut exactly at the filtering boundary
        // (upstream evaluates the condition) should ship fewer bytes than a
        // plan cutting before the select when selectivity < 1.
        let src = r#"
            extern int n;
            extern double[] data;
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; 2) {
                    foreach (i in pkt) {
                        double v = data[i];
                        if (v > 90.0) {
                            acc.add(v);
                        }
                    }
                }
                print(acc.total);
            } }
        "#;
        let np = normalize(&frontend(src).unwrap()).unwrap();
        let g = build_graph(&np).unwrap();
        let ca = analyze_chain(&np, &g).unwrap();
        let n_tasks = g.atoms.len() + 1;
        // cond boundary index:
        let (_, cond_b) = g.cond_boundaries[0];
        // Plan A: cut exactly at the filtering boundary (atoms ≤ cond_b on
        // unit 0, rest on unit 1).
        let mut unit_of = vec![0usize; n_tasks];
        for (t, u) in unit_of.iter_mut().enumerate().skip(1) {
            *u = if t - 1 <= cond_b { 0 } else { 1 };
        }
        let plan_a = build_plan(&np, &g, &ca, &Decomposition { unit_of, cost: 0.0 }, 2).unwrap();
        // Plan B: Default (everything downstream).
        let plan_b =
            build_plan(&np, &g, &ca, &Decomposition::default_style(n_tasks, 2), 2).unwrap();

        let host = base_host(100, 1);
        // Run one packet through filter 0 of each plan and compare buffers.
        let mut sa = FilterStepper::new(&plan_a, &host).unwrap();
        let buf_a = sa.step(0, (0, 99), None).unwrap().unwrap();
        let mut sb = FilterStepper::new(&plan_b, &host).unwrap();
        let buf_b = sb.step(0, (0, 99), None).unwrap().unwrap();
        assert!(
            buf_a.len() < buf_b.len() / 2,
            "filtered buffer {} vs raw {}",
            buf_a.len(),
            buf_b.len()
        );
        // And both plans still agree with the oracle.
        assert_eq!(
            run_plan_sequential(&plan_a, &host).unwrap(),
            oracle(src, &host)
        );
        assert_eq!(
            run_plan_sequential(&plan_b, &host).unwrap(),
            oracle(src, &host)
        );
    }

    /// [`run_plan_sequential`] with the stepper flipped onto the VM.
    fn run_plan_sequential_vm(plan: &FilterPlan, host: &HostEnv) -> CompileResult<Vec<String>> {
        let mut stepper = FilterStepper::new(plan, host)?.with_vm(true);
        let ((dlo, dhi), n_packets) = stepper.loop_bounds()?;
        for (lo, hi) in split_domain(dlo, dhi, n_packets as usize) {
            let mut buf: Option<Vec<u8>> = None;
            for j in 0..plan.m {
                buf = stepper.step(j, (lo, hi), buf.as_deref())?;
            }
        }
        stepper.finalize(host)
    }

    #[test]
    fn vm_stepper_matches_interpreter_stepper() {
        // Same plan, same packets, both engines — including filtering
        // cuts (Select/Body steps) and reconstituted conditionals.
        for m in 1..=4 {
            for np_ in [1, 3, 7] {
                let host = base_host(64, np_);
                let plan = make_plan(BASE, m, DecompStyle::Spread);
                let vm_out = run_plan_sequential_vm(&plan, &host).unwrap();
                let it_out = run_plan_sequential(&plan, &host).unwrap();
                assert_eq!(vm_out, it_out, "m={m} packets={np_}");
                assert_eq!(vm_out, oracle(BASE, &host), "m={m} packets={np_}");
            }
        }
    }

    #[test]
    fn vm_stepper_handles_filtering_cut_plans() {
        let host = base_host(100, 5);
        let np = normalize(&frontend(BASE).unwrap()).unwrap();
        let g = build_graph(&np).unwrap();
        let ca = analyze_chain(&np, &g).unwrap();
        let n_tasks = g.atoms.len() + 1;
        let (_, cond_b) = g.cond_boundaries[0];
        // Cut exactly at the filtering boundary so the VM executes the
        // Select probe upstream and the guarded Body downstream.
        let mut unit_of = vec![0usize; n_tasks];
        for (t, u) in unit_of.iter_mut().enumerate().skip(1) {
            *u = if t - 1 <= cond_b { 0 } else { 1 };
        }
        let plan = build_plan(&np, &g, &ca, &Decomposition { unit_of, cost: 0.0 }, 2).unwrap();
        assert!(
            plan.lowered
                .steps
                .iter()
                .flatten()
                .any(|s| matches!(s, LoweredStep::Select(_))),
            "this plan must exercise a filtering cut"
        );
        assert_eq!(
            run_plan_sequential_vm(&plan, &host).unwrap(),
            oracle(BASE, &host)
        );
    }

    #[test]
    fn multi_stage_program_with_objects() {
        let src = r#"
            extern int n;
            extern double[] xs;
            runtime_define int num_packets;
            class P { double a; double b; }
            class Stats implements Reducinterface {
                double sum;
                int cnt;
                void reduce(Stats o) { sum = sum + o.sum; cnt = cnt + o.cnt; }
                void push(double v) { sum = sum + v; cnt = cnt + 1; }
            }
            class A {
                double f(double x) { return x * x - 1.0; }
                void main() {
                    RectDomain<1> all = [0 : n - 1];
                    Stats st = new Stats();
                    PipelinedLoop (pkt in all; num_packets) {
                        foreach (i in pkt) {
                            P p = new P();
                            p.a = xs[i];
                            p.b = f(p.a);
                            if (p.b > 0.5) {
                                st.push(p.b - p.a);
                            }
                        }
                    }
                    print(st.sum);
                    print(st.cnt);
                }
            }
        "#;
        let n = 90;
        let xs = Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
            (0..n)
                .map(|i| Value::Double((i % 13) as f64 * 0.31))
                .collect(),
        )));
        let host = HostEnv::new()
            .bind("n", Value::Int(n))
            .bind("num_packets", Value::Int(6))
            .bind("xs", xs);
        for m in [2, 3, 4] {
            let plan = make_plan(src, m, DecompStyle::Spread);
            let out = run_plan_sequential(&plan, &host).unwrap();
            assert_eq!(out, oracle(src, &host), "m={m}\n{}", plan.describe());
        }
    }
}
