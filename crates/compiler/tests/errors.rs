//! Error paths: malformed or unsupported programs must fail with clear
//! diagnostics, never panic.

use cgp_compiler::cost::PipelineEnv;
use cgp_compiler::{compile, CompileOptions};

fn opts() -> CompileOptions {
    CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-5), 64)
}

fn err_of(src: &str) -> String {
    compile(src, &opts()).unwrap_err().to_string()
}

#[test]
fn missing_main_is_reported() {
    let msg = err_of("class A { void f() { } }");
    assert!(msg.contains("main"), "{msg}");
}

#[test]
fn missing_pipelined_loop_is_reported() {
    let msg = err_of("class A { void main() { int x = 1; } }");
    assert!(msg.contains("PipelinedLoop"), "{msg}");
}

#[test]
fn multiple_pipelined_loops_rejected() {
    let msg = err_of(
        r#"
        extern int n;
        class A { void main() {
            RectDomain<1> d = [0 : n - 1];
            PipelinedLoop (p in d; 2) { }
            PipelinedLoop (q in d; 2) { }
        } }
    "#,
    );
    assert!(
        msg.contains("multiple PipelinedLoop") || msg.contains("empty"),
        "{msg}"
    );
}

#[test]
fn parse_errors_carry_location() {
    let msg = err_of("class A { void main() {\n  !!! } }");
    assert!(msg.contains("2:"), "{msg}");
}

#[test]
fn type_errors_surface_through_compile() {
    let msg = err_of(
        r#"
        class A { void main() {
            RectDomain<1> d = [0 : true];
            PipelinedLoop (p in d; 2) { }
        } }
    "#,
    );
    assert!(
        msg.contains("type mismatch") || msg.contains("expected"),
        "{msg}"
    );
}

#[test]
fn cross_cut_outer_local_is_explained() {
    // A per-iteration value carried across a fission cut but declared
    // outside the loop — unsupported, and the error says why.
    let msg = err_of(
        r#"
        extern int n;
        class Acc implements Reducinterface {
            double t;
            void reduce(Acc o) { t = t + o.t; }
            void add(double v) { t = t + v; }
        }
        class A { void main() {
            RectDomain<1> d = [0 : n - 1];
            Acc acc = new Acc();
            double tmp = 0.0;
            PipelinedLoop (p in d; 2) {
                foreach (i in p) {
                    tmp = toDouble(i);
                    if (tmp > 1.0) { acc.add(tmp); }
                }
            }
            print(acc.t);
        } }
    "#,
    );
    assert!(msg.contains("fission"), "{msg}");
}

#[test]
fn reduction_without_reduce_method_rejected() {
    let msg = err_of(
        r#"
        extern int n;
        class Bad implements Reducinterface { int v; }
        class A { void main() {
            RectDomain<1> d = [0 : n - 1];
            PipelinedLoop (p in d; 2) { }
        } }
    "#,
    );
    assert!(msg.contains("reduce"), "{msg}");
}

#[test]
fn heterogeneous_pipelines_shift_the_decomposition() {
    // Not an error, but an environment-sensitivity check: making the data
    // host much weaker pushes atoms downstream.
    let src = r#"
        extern int n;
        extern double[] xs;
        class Acc implements Reducinterface {
            double t;
            void reduce(Acc o) { t = t + o.t; }
            void add(double v) { t = t + v; }
        }
        class A { void main() {
            RectDomain<1> d = [0 : n - 1];
            Acc acc = new Acc();
            PipelinedLoop (pkt in d; 8) {
                foreach (i in pkt) {
                    double v = xs[i] * xs[i] + sqrt(xs[i]);
                    if (v > 1.0) { acc.add(v); }
                }
            }
            print(acc.t);
        } }
    "#;
    let uniform = PipelineEnv::uniform(3, 1e8, 1e7, 1e-5);
    let mut weak_source = uniform.clone();
    weak_source.power[0] = 1e4; // data host is 10,000× weaker
    let base = CompileOptions::new(uniform, 512).with_symbol("n", 4096);
    let weak = CompileOptions::new(weak_source, 512).with_symbol("n", 4096);
    let c_uni = compile(src, &base).unwrap();
    let c_weak = compile(src, &weak).unwrap();
    let work_on_source = |c: &cgp_compiler::Compiled| {
        c.plan
            .decomposition
            .unit_of
            .iter()
            .skip(1)
            .filter(|u| **u == 0)
            .count()
    };
    assert!(
        work_on_source(&c_weak) <= work_on_source(&c_uni),
        "weak source must not attract more atoms: {:?} vs {:?}",
        c_weak.plan.decomposition.unit_of,
        c_uni.plan.decomposition.unit_of
    );
    assert_eq!(
        work_on_source(&c_weak),
        0,
        "{:?}",
        c_weak.plan.decomposition.unit_of
    );
}
