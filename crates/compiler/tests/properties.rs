//! Property-style tests for the compiler's core data structures: the place
//! lattice, symbolic expressions, and the pack/unpack round trip. Cases
//! come from a seeded PRNG (the build is offline, so no proptest);
//! failures reproduce deterministically from the printed parameters.

use cgp_compiler::packing::{pack, unpack, PackEntry, PackLayout, RuntimeEnv, ScalarKind};
use cgp_compiler::place::{Place, PlaceSet, Section, Sectioning, SymExpr};
use cgp_lang::Value;
use cgp_obs::SmallRng;
use std::collections::HashMap;

// ---- SymExpr algebra -------------------------------------------------------

fn random_sym(rng: &mut SmallRng, depth: usize) -> SymExpr {
    if depth == 0 || rng.gen_bool(0.35) {
        if rng.gen_bool(0.5) {
            SymExpr::konst(rng.gen_range(0, 200) as i64 - 100)
        } else {
            SymExpr::sym(["x", "y", "pkt.lo"][rng.gen_range(0, 3)])
        }
    } else {
        match rng.gen_range(0, 3) {
            0 => random_sym(rng, depth - 1).add(&random_sym(rng, depth - 1)),
            1 => random_sym(rng, depth - 1).sub(&random_sym(rng, depth - 1)),
            _ => random_sym(rng, depth - 1).scale(rng.gen_range(0, 10) as i64 - 5),
        }
    }
}

fn env(x: i64, y: i64, p: i64) -> impl Fn(&str) -> Option<i64> {
    move |s: &str| match s {
        "x" => Some(x),
        "y" => Some(y),
        "pkt.lo" => Some(p),
        _ => None,
    }
}

#[test]
fn symexpr_add_commutes() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0001);
    for _case in 0..200 {
        let a = random_sym(&mut rng, 3);
        let b = random_sym(&mut rng, 3);
        let x = rng.gen_range(0, 100) as i64 - 50;
        let y = rng.gen_range(0, 100) as i64 - 50;
        let e = env(x, y, 7);
        assert_eq!(a.add(&b).eval(&e), b.add(&a).eval(&e), "{a} + {b}");
    }
}

#[test]
fn symexpr_add_associates() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0002);
    for _case in 0..200 {
        let a = random_sym(&mut rng, 3);
        let b = random_sym(&mut rng, 3);
        let c = random_sym(&mut rng, 3);
        let e = env(3, -4, 11);
        assert_eq!(
            a.add(&b).add(&c).eval(&e),
            a.add(&b.add(&c)).eval(&e),
            "{a}, {b}, {c}"
        );
    }
}

#[test]
fn symexpr_sub_is_add_neg() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0003);
    for _case in 0..200 {
        let a = random_sym(&mut rng, 3);
        let b = random_sym(&mut rng, 3);
        let e = env(-2, 9, 0);
        assert_eq!(
            a.sub(&b).eval(&e),
            a.add(&b.scale(-1)).eval(&e),
            "{a} - {b}"
        );
    }
}

#[test]
fn symexpr_eval_matches_semantics() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0004);
    for _case in 0..200 {
        let a = random_sym(&mut rng, 3);
        let x = rng.gen_range(0, 40) as i64 - 20;
        let y = rng.gen_range(0, 40) as i64 - 20;
        // Evaluate via substitution of constants, then is_const.
        let e = env(x, y, 5);
        let direct = a.eval(&e);
        let substituted = a
            .subst("x", &SymExpr::konst(x))
            .subst("y", &SymExpr::konst(y))
            .subst("pkt.lo", &SymExpr::konst(5));
        assert_eq!(direct, substituted.is_const(), "{a} at x={x} y={y}");
    }
}

#[test]
fn symexpr_const_diff_sound() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0005);
    for _case in 0..200 {
        let a = random_sym(&mut rng, 3);
        let d = rng.gen_range(0, 100) as i64 - 50;
        let shifted = a.add(&SymExpr::konst(d));
        assert_eq!(shifted.const_diff(&a), Some(d), "{a} + {d}");
    }
}

// ---- place lattice ---------------------------------------------------------

fn random_place(rng: &mut SmallRng) -> Place {
    let root = ["a", "b", "t"][rng.gen_range(0, 3)];
    let sect = match rng.gen_range(0, 3) {
        0 => Sectioning::NotIndexed,
        1 => Sectioning::All,
        _ => {
            let lo = rng.gen_range(0, 50) as i64;
            let len = rng.gen_range(0, 50) as i64;
            Sectioning::Range(Section::dense(SymExpr::konst(lo), SymExpr::konst(lo + len)))
        }
    };
    let n_fields = rng.gen_range(0, 3);
    let fields = (0..n_fields)
        .map(|_| ["x", "y"][rng.gen_range(0, 2)].to_string())
        .collect();
    Place {
        root: root.to_string(),
        sect,
        fields,
    }
}

fn random_places(rng: &mut SmallRng, max: usize) -> Vec<Place> {
    let n = rng.gen_range(0, max + 1);
    (0..n).map(|_| random_place(rng)).collect()
}

#[test]
fn covers_is_reflexive() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0006);
    for _case in 0..300 {
        let p = random_place(&mut rng);
        assert!(p.covers(&p), "{p}");
    }
}

#[test]
fn covers_is_transitive() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0007);
    for _case in 0..2000 {
        let a = random_place(&mut rng);
        let b = random_place(&mut rng);
        let c = random_place(&mut rng);
        if a.covers(&b) && b.covers(&c) {
            assert!(a.covers(&c), "{a} ⊇ {b} ⊇ {c}");
        }
    }
}

#[test]
fn insert_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0008);
    for _case in 0..300 {
        let ps = random_places(&mut rng, 8);
        let p = random_place(&mut rng);
        let mut s1: PlaceSet = ps.iter().cloned().collect();
        s1.insert(p.clone());
        let mut s2 = s1.clone();
        s2.insert(p.clone());
        assert_eq!(s1.sorted(), s2.sorted(), "inserting {p}");
    }
}

#[test]
fn insert_preserves_coverage() {
    let mut rng = SmallRng::seed_from_u64(0xC0_0009);
    for _case in 0..300 {
        let ps = random_places(&mut rng, 8);
        let p = random_place(&mut rng);
        let mut set: PlaceSet = ps.iter().cloned().collect();
        // everything previously covered stays covered after any insert
        set.insert(p.clone());
        for q in &ps {
            assert!(set.covers_place(q), "{q} lost after inserting {p}");
        }
        assert!(set.covers_place(&p));
    }
}

#[test]
fn kill_removes_only_covered() {
    let mut rng = SmallRng::seed_from_u64(0xC0_000A);
    for _case in 0..300 {
        let ps = random_places(&mut rng, 8);
        let k = random_place(&mut rng);
        let set: PlaceSet = ps.iter().cloned().collect();
        let mut killed = set.clone();
        killed.kill(&k);
        for q in set.sorted() {
            if k.covers(q) {
                assert!(!killed.contains(q));
            } else {
                assert!(killed.contains(q), "{q} wrongly killed by {k}");
            }
        }
    }
}

// ---- pack / unpack round trip ----------------------------------------------

#[derive(Debug, Clone)]
struct WireCase {
    scalars: Vec<(String, i64)>,
    array_len: usize,
    doubles: Vec<f64>,
}

fn random_wire(rng: &mut SmallRng) -> WireCase {
    let n_ints = rng.gen_range(0, 4);
    let scalars = (0..n_ints)
        .map(|i| (format!("s{i}"), rng.gen_range(0, 2000) as i64 - 1000))
        .collect();
    let len = rng.gen_range(1, 64);
    let doubles = (0..len)
        .map(|_| (rng.gen_f64() - 0.5) * 2e6)
        .collect::<Vec<f64>>();
    WireCase {
        scalars,
        array_len: len,
        doubles,
    }
}

#[test]
fn pack_unpack_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xC0_000B);
    for case_no in 0..200 {
        let case = random_wire(&mut rng);
        let field_wise = rng.gen_bool(0.5);

        let n = case.array_len as i64;
        let arr_place = Place::sliced(
            "xs",
            Section::dense(SymExpr::konst(0), SymExpr::konst(n - 1)),
        );
        let mut entries = vec![PackEntry {
            place: arr_place,
            first_consumer: 1,
            elem: ScalarKind::F64,
        }];
        for (name, _) in &case.scalars {
            entries.push(PackEntry {
                place: Place::var(name.clone()),
                first_consumer: 2,
                elem: ScalarKind::I64,
            });
        }
        let layout = if field_wise {
            PackLayout {
                field_wise: entries,
                ..Default::default()
            }
        } else {
            PackLayout {
                instance_wise: entries,
                ..Default::default()
            }
        };

        let mut vars: HashMap<String, Value> = HashMap::new();
        vars.insert(
            "xs".into(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                case.doubles.iter().map(|d| Value::Double(*d)).collect(),
            ))),
        );
        for (name, v) in &case.scalars {
            vars.insert(name.clone(), Value::Int(*v));
        }

        let env = RuntimeEnv::for_packet("pkt", 0, n - 1);
        let buf = pack(&layout, &vars, &env, (0, n - 1), None).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        assert_eq!(un.pkt, (0, n - 1), "case {case_no}");
        assert!(un.vars["xs"].deep_eq(&vars["xs"]), "case {case_no}");
        for (name, _) in &case.scalars {
            assert!(un.vars[name].deep_eq(&vars[name]), "case {case_no}: {name}");
        }
    }
}

#[test]
fn filtered_pack_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xC0_000C);
    for case_no in 0..200 {
        let len = rng.gen_range(1, 64);
        let mask: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.5)).collect();
        let lo = rng.gen_range(0, 1000) as i64;

        let n = len as i64;
        let place = Place::sliced(
            "v",
            Section::dense(
                SymExpr::konst(0),
                SymExpr::sym("pkt.hi").sub(&SymExpr::sym("pkt.lo")),
            ),
        );
        let layout = PackLayout {
            instance_wise: vec![PackEntry {
                place,
                first_consumer: 1,
                elem: ScalarKind::F64,
            }],
            filtered: Some(0),
            ..Default::default()
        };
        let vars: HashMap<String, Value> = [(
            "v".to_string(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                (0..len).map(|i| Value::Double(i as f64 * 1.25)).collect(),
            ))),
        )]
        .into_iter()
        .collect();
        let env = RuntimeEnv::for_packet("pkt", lo, lo + n - 1);
        let selection: Vec<i64> = (0..len)
            .filter(|i| mask[*i])
            .map(|i| lo + i as i64)
            .collect();
        let buf = pack(&layout, &vars, &env, (lo, lo + n - 1), Some(&selection)).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        assert_eq!(
            un.selection.as_deref(),
            Some(&selection[..]),
            "case {case_no}"
        );
        if selection.is_empty() {
            // Nothing crossed: the binding is absent (the receiving filter
            // re-allocates packet-local arrays it needs).
            assert!(!un.vars.contains_key("v"), "case {case_no}");
        } else {
            let Value::Array(arr) = &un.vars["v"] else {
                panic!("not array")
            };
            let arr = arr.borrow();
            for i in 0..len {
                if mask[i] {
                    assert!(
                        arr[i].deep_eq(&Value::Double(i as f64 * 1.25)),
                        "case {case_no}"
                    );
                }
            }
        }
        // volume proportional to selection
        assert!(
            buf.len() <= 16 + 8 + 8 * selection.len() + 8 * (selection.len() + 1) + 8,
            "case {case_no}"
        );
    }
}
