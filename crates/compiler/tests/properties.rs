//! Property-based tests for the compiler's core data structures: the place
//! lattice, symbolic expressions, and the pack/unpack round trip.

use cgp_compiler::packing::{pack, unpack, PackEntry, PackLayout, RuntimeEnv, ScalarKind};
use cgp_compiler::place::{Place, PlaceSet, Section, Sectioning, SymExpr};
use cgp_lang::Value;
use proptest::prelude::*;
use std::collections::HashMap;

// ---- SymExpr algebra -------------------------------------------------------

fn arb_sym() -> impl Strategy<Value = SymExpr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(SymExpr::konst),
        prop_oneof![Just("x"), Just("y"), Just("pkt.lo")].prop_map(SymExpr::sym),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(&b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(&b)),
            (inner.clone(), -5i64..5).prop_map(|(a, k)| a.scale(k)),
        ]
    })
}

fn env(x: i64, y: i64, p: i64) -> impl Fn(&str) -> Option<i64> {
    move |s: &str| match s {
        "x" => Some(x),
        "y" => Some(y),
        "pkt.lo" => Some(p),
        _ => None,
    }
}

proptest! {
    #[test]
    fn symexpr_add_commutes(a in arb_sym(), b in arb_sym(), x in -50i64..50, y in -50i64..50) {
        let e = env(x, y, 7);
        prop_assert_eq!(a.add(&b).eval(&e), b.add(&a).eval(&e));
    }

    #[test]
    fn symexpr_add_associates(a in arb_sym(), b in arb_sym(), c in arb_sym()) {
        let e = env(3, -4, 11);
        prop_assert_eq!(a.add(&b).add(&c).eval(&e), a.add(&b.add(&c)).eval(&e));
    }

    #[test]
    fn symexpr_sub_is_add_neg(a in arb_sym(), b in arb_sym()) {
        let e = env(-2, 9, 0);
        prop_assert_eq!(a.sub(&b).eval(&e), a.add(&b.scale(-1)).eval(&e));
    }

    #[test]
    fn symexpr_eval_matches_semantics(a in arb_sym(), x in -20i64..20, y in -20i64..20) {
        // Evaluate via substitution of constants, then is_const.
        let e = env(x, y, 5);
        let direct = a.eval(&e);
        let substituted = a
            .subst("x", &SymExpr::konst(x))
            .subst("y", &SymExpr::konst(y))
            .subst("pkt.lo", &SymExpr::konst(5));
        prop_assert_eq!(direct, substituted.is_const());
    }

    #[test]
    fn symexpr_const_diff_sound(a in arb_sym(), d in -50i64..50) {
        let shifted = a.add(&SymExpr::konst(d));
        prop_assert_eq!(shifted.const_diff(&a), Some(d));
    }
}

// ---- place lattice ---------------------------------------------------------

fn arb_place() -> impl Strategy<Value = Place> {
    let root = prop_oneof![Just("a"), Just("b"), Just("t")];
    let fields = proptest::collection::vec(prop_oneof![Just("x"), Just("y")], 0..3);
    let sect = prop_oneof![
        Just(Sectioning::NotIndexed),
        Just(Sectioning::All),
        (0i64..50, 0i64..50).prop_map(|(lo, len)| Sectioning::Range(Section::dense(
            SymExpr::konst(lo),
            SymExpr::konst(lo + len)
        ))),
    ];
    (root, sect, fields).prop_map(|(r, s, f)| Place {
        root: r.to_string(),
        sect: s,
        fields: f.into_iter().map(String::from).collect(),
    })
}

proptest! {
    #[test]
    fn covers_is_reflexive(p in arb_place()) {
        prop_assert!(p.covers(&p));
    }

    #[test]
    fn covers_is_transitive(a in arb_place(), b in arb_place(), c in arb_place()) {
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c), "{a} ⊇ {b} ⊇ {c}");
        }
    }

    #[test]
    fn insert_is_idempotent(ps in proptest::collection::vec(arb_place(), 0..8), p in arb_place()) {
        let mut s1: PlaceSet = ps.iter().cloned().collect();
        s1.insert(p.clone());
        let mut s2 = s1.clone();
        s2.insert(p.clone());
        prop_assert_eq!(s1.sorted(), s2.sorted());
    }

    #[test]
    fn insert_preserves_coverage(ps in proptest::collection::vec(arb_place(), 0..8), p in arb_place()) {
        let mut set: PlaceSet = ps.iter().cloned().collect();
        // everything previously covered stays covered after any insert
        let before: Vec<Place> = ps.clone();
        set.insert(p.clone());
        for q in &before {
            prop_assert!(set.covers_place(q), "{q} lost after inserting {p}");
        }
        prop_assert!(set.covers_place(&p));
    }

    #[test]
    fn kill_removes_only_covered(ps in proptest::collection::vec(arb_place(), 0..8), k in arb_place()) {
        let set: PlaceSet = ps.iter().cloned().collect();
        let mut killed = set.clone();
        killed.kill(&k);
        for q in set.sorted() {
            if k.covers(q) {
                prop_assert!(!killed.contains(q));
            } else {
                prop_assert!(killed.contains(q), "{q} wrongly killed by {k}");
            }
        }
    }
}

// ---- pack / unpack round trip ----------------------------------------------

#[derive(Debug, Clone)]
struct WireCase {
    scalars: Vec<(String, i64)>,
    array_len: usize,
    doubles: Vec<f64>,
}

fn arb_wire() -> impl Strategy<Value = WireCase> {
    (
        proptest::collection::vec(-1000i64..1000, 0..4),
        1usize..64,
    )
        .prop_flat_map(|(ints, len)| {
            proptest::collection::vec(-1e6f64..1e6, len).prop_map(move |doubles| WireCase {
                scalars: ints
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (format!("s{i}"), *v))
                    .collect(),
                array_len: doubles.len(),
                doubles,
            })
        })
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip(case in arb_wire(), field_wise in any::<bool>()) {
        let n = case.array_len as i64;
        let arr_place = Place::sliced(
            "xs",
            Section::dense(SymExpr::konst(0), SymExpr::konst(n - 1)),
        );
        let mut entries = vec![PackEntry {
            place: arr_place,
            first_consumer: 1,
            elem: ScalarKind::F64,
        }];
        for (name, _) in &case.scalars {
            entries.push(PackEntry {
                place: Place::var(name.clone()),
                first_consumer: 2,
                elem: ScalarKind::I64,
            });
        }
        let layout = if field_wise {
            PackLayout { field_wise: entries, ..Default::default() }
        } else {
            PackLayout { instance_wise: entries, ..Default::default() }
        };

        let mut vars: HashMap<String, Value> = HashMap::new();
        vars.insert(
            "xs".into(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                case.doubles.iter().map(|d| Value::Double(*d)).collect(),
            ))),
        );
        for (name, v) in &case.scalars {
            vars.insert(name.clone(), Value::Int(*v));
        }

        let env = RuntimeEnv::for_packet("pkt", 0, n - 1);
        let buf = pack(&layout, &vars, &env, (0, n - 1), None).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        prop_assert_eq!(un.pkt, (0, n - 1));
        prop_assert!(un.vars["xs"].deep_eq(&vars["xs"]));
        for (name, _) in &case.scalars {
            prop_assert!(un.vars[name].deep_eq(&vars[name]), "{}", name);
        }
    }

    #[test]
    fn filtered_pack_roundtrip(
        len in 1usize..64,
        mask in proptest::collection::vec(any::<bool>(), 64),
        lo in 0i64..1000,
    ) {
        let n = len as i64;
        let place = Place::sliced(
            "v",
            Section::dense(
                SymExpr::konst(0),
                SymExpr::sym("pkt.hi").sub(&SymExpr::sym("pkt.lo")),
            ),
        );
        let layout = PackLayout {
            instance_wise: vec![PackEntry { place, first_consumer: 1, elem: ScalarKind::F64 }],
            filtered: Some(0),
            ..Default::default()
        };
        let vars: HashMap<String, Value> = [(
            "v".to_string(),
            Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
                (0..len).map(|i| Value::Double(i as f64 * 1.25)).collect(),
            ))),
        )]
        .into_iter()
        .collect();
        let env = RuntimeEnv::for_packet("pkt", lo, lo + n - 1);
        let selection: Vec<i64> = (0..len)
            .filter(|i| mask[*i])
            .map(|i| lo + i as i64)
            .collect();
        let buf = pack(&layout, &vars, &env, (lo, lo + n - 1), Some(&selection)).unwrap();
        let un = unpack(&layout, &env, &buf).unwrap();
        prop_assert_eq!(un.selection.as_deref(), Some(&selection[..]));
        if selection.is_empty() {
            // Nothing crossed: the binding is absent (the receiving filter
            // re-allocates packet-local arrays it needs).
            prop_assert!(!un.vars.contains_key("v"));
        } else {
            let Value::Array(arr) = &un.vars["v"] else { panic!("not array") };
            let arr = arr.borrow();
            for i in 0..len {
                if mask[i] {
                    prop_assert!(arr[i].deep_eq(&Value::Double(i as f64 * 1.25)));
                }
            }
        }
        // volume proportional to selection
        prop_assert!(buf.len() <= 16 + 8 + 8 * selection.len() + 8 * (selection.len() + 1) + 8);
    }
}
