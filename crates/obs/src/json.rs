//! Minimal JSON value, writer and parser.
//!
//! The build environment is offline (no serde); this module provides the
//! small subset the observability layer needs: serializing trace events
//! and metrics snapshots, and parsing them back in round-trip tests.
//! Object key order is preserved (insertion order), which keeps emitted
//! traces deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object (panics on non-objects — builder misuse).
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(entries) => entries.push((key.into(), value)),
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// JSON has no NaN/Infinity; map them to null so emitted traces always
/// parse.
fn write_num(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Integral values print without a fractional part.
            let _ = fmt::Write::write_fmt(out, format_args!("{}", v as i64));
        } else {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired here; the writer never
                            // emits them, so map lone surrogates to U+FFFD.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let mut obj = Json::obj();
        obj.set("name", Json::Str("pipe \"x\"\n".into()));
        obj.set("ts", Json::Num(12.5));
        obj.set("n", Json::Num(42.0));
        obj.set("ok", Json::Bool(true));
        obj.set("none", Json::Null);
        let doc = Json::Arr(vec![obj, Json::Arr(vec![Json::Num(-1.0)])]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(12.5).to_string(), "12.5");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"b\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("bA\n")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn key_order_is_preserved() {
        let mut o = Json::obj();
        o.set("z", Json::Num(1.0));
        o.set("a", Json::Num(2.0));
        assert_eq!(o.to_string(), "{\"z\":1,\"a\":2}");
    }
}
