//! Trace events and spans.
//!
//! The model follows Chrome's `trace_event` format: every event has a
//! name, a category, a phase character, a microsecond timestamp, and a
//! `(pid, tid)` pair that picks the row it renders on. Three "process"
//! rows partition the system:
//!
//! - [`PID_RUNTIME`] — the DataCutter executor (one tid per filter copy),
//! - [`PID_COMPILER`] — compiler phases (normalize → … → codegen),
//! - [`PID_SIM`] — the grid simulator's *virtual-time* timeline.
//!
//! Wall-clock events take their timestamp from a process-wide epoch
//! captured on first use; virtual-time producers call [`complete`] with
//! explicit timestamps (simulated seconds × 1e6), so both kinds of
//! timeline load into the same Perfetto view.
//!
//! **Hot-path discipline:** [`enabled`] is a single relaxed atomic load.
//! Every emit helper checks it first and returns before allocating, so
//! with no sink installed the instrumented code paths cost one branch.

use crate::json::Json;
use crate::sink::TraceSink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable checked by binaries to auto-install a
/// [`crate::sink::ChromeTraceSink`] writing to the named path.
pub const TRACE_ENV: &str = "CGP_TRACE";

/// Process row for the DataCutter executor (wall clock).
pub const PID_RUNTIME: u32 = 1;
/// Process row for compiler phases (wall clock).
pub const PID_COMPILER: u32 = 2;
/// Process row for the grid simulator (virtual time).
pub const PID_SIM: u32 = 3;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn TraceSink>>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch.
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Microseconds since the process trace epoch for an already-captured
/// [`Instant`] — pure arithmetic, no clock read. Hot paths that hold an
/// `Instant` anyway (blocked-time accounting) convert it instead of
/// paying a second clock read. Saturates to 0 for instants captured
/// before the (lazily initialized) epoch.
pub fn instant_us(at: Instant) -> f64 {
    at.saturating_duration_since(epoch()).as_secs_f64() * 1e6
}

/// Is a sink installed? One relaxed load — safe to call per packet.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install a sink and enable tracing. Replaces any previous sink.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    // Force the epoch before enabling so timestamps are monotone from 0.
    let _ = epoch();
    *SINK.lock().unwrap() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable tracing, flush and drop the sink.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::SeqCst);
    let sink = SINK.lock().unwrap().take();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Flush the installed sink (if any) without removing it.
pub fn flush() {
    let sink = SINK.lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// A typed event argument; renders under `args` in the trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    Int(i64),
    Float(f64),
    Str(String),
}

impl ArgValue {
    pub fn to_json(&self) -> Json {
        match self {
            ArgValue::Int(v) => Json::Num(*v as f64),
            ArgValue::Float(v) => Json::Num(*v),
            ArgValue::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One trace event, already stamped. Phase characters used here:
/// `'X'` complete (has `dur_us`), `'i'` instant, `'C'` counter,
/// `'M'` metadata (thread/process names).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    pub cat: &'static str,
    pub ph: char,
    pub ts_us: f64,
    pub dur_us: f64,
    pub pid: u32,
    pub tid: u32,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Chrome `trace_event` object for this event.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("name", Json::Str(self.name.clone()));
        o.set("cat", Json::Str(self.cat.to_string()));
        o.set("ph", Json::Str(self.ph.to_string()));
        o.set("ts", Json::Num(self.ts_us));
        if self.ph == 'X' {
            o.set("dur", Json::Num(self.dur_us));
        }
        o.set("pid", Json::Num(self.pid as f64));
        o.set("tid", Json::Num(self.tid as f64));
        if !self.args.is_empty() {
            let mut args = Json::obj();
            for (k, v) in &self.args {
                args.set(*k, v.to_json());
            }
            o.set("args", args);
        }
        o
    }
}

fn record(ev: TraceEvent) {
    let sink = SINK.lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.record(ev);
    }
}

/// Emit a pre-stamped complete event (`ph: 'X'`). This is the entry
/// point for *virtual-time* producers: the simulator converts simulated
/// seconds to microseconds itself.
pub fn complete(
    name: impl Into<String>,
    cat: &'static str,
    ts_us: f64,
    dur_us: f64,
    pid: u32,
    tid: u32,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        name: name.into(),
        cat,
        ph: 'X',
        ts_us,
        dur_us,
        pid,
        tid,
        args,
    });
}

/// Emit an instant event stamped with the wall clock.
pub fn instant(
    name: impl Into<String>,
    cat: &'static str,
    pid: u32,
    tid: u32,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        name: name.into(),
        cat,
        ph: 'i',
        ts_us: now_us(),
        dur_us: 0.0,
        pid,
        tid,
        args,
    });
}

/// Emit a counter sample (`ph: 'C'`); Perfetto renders these as a
/// stacked area chart per `(pid, name)`.
pub fn counter(name: impl Into<String>, pid: u32, tid: u32, series: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        name: name.into(),
        cat: "counter",
        ph: 'C',
        ts_us: now_us(),
        dur_us: 0.0,
        pid,
        tid,
        args: vec![(series, ArgValue::Float(value))],
    });
}

/// Name a `(pid, tid)` row in the viewer (`ph: 'M'`, `thread_name`).
pub fn name_thread(pid: u32, tid: u32, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        name: "thread_name".into(),
        cat: "__metadata",
        ph: 'M',
        ts_us: 0.0,
        dur_us: 0.0,
        pid,
        tid,
        args: vec![("name", ArgValue::Str(name.into()))],
    });
}

/// Name a pid row in the viewer (`ph: 'M'`, `process_name`).
pub fn name_process(pid: u32, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        name: "process_name".into(),
        cat: "__metadata",
        ph: 'M',
        ts_us: 0.0,
        dur_us: 0.0,
        pid,
        tid: 0,
        args: vec![("name", ArgValue::Str(name.into()))],
    });
}

/// RAII span: emits one `'X'` complete event covering its lifetime when
/// dropped. Construct via [`span`]; a disabled trace yields an inert
/// span (no timestamp read, no allocation).
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: String,
    cat: &'static str,
    pid: u32,
    tid: u32,
    start_us: f64,
    args: Vec<(&'static str, ArgValue)>,
}

/// Open a span. The completing event is emitted on drop, stamped with
/// the wall-clock interval the guard was alive.
pub fn span(name: impl Into<String>, cat: &'static str, pid: u32, tid: u32) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            name: name.into(),
            cat,
            pid,
            tid,
            start_us: now_us(),
            args: Vec::new(),
        }),
    }
}

impl Span {
    /// Attach an argument; shows under `args` on the completed event.
    /// No-op on an inert span.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value.into()));
        }
    }

    /// Is this span live (tracing was enabled at construction)?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = now_us();
            record(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                ph: 'X',
                ts_us: inner.start_us,
                dur_us: (end - inner.start_us).max(0.0),
                pid: inner.pid,
                tid: inner.tid,
                args: inner.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    // Trace state is process-global, so exercise it from one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn global_sink_lifecycle() {
        assert!(!enabled());

        // Inert span: no sink, nothing recorded.
        {
            let mut s = span("noop", "t", PID_RUNTIME, 0);
            assert!(!s.is_recording());
            s.arg("k", 1i64);
        }

        let ring = Arc::new(RingSink::new(16));
        install_sink(ring.clone());
        assert!(enabled());

        {
            let mut s = span("work", "t", PID_RUNTIME, 3);
            s.arg("packets", 7i64);
        }
        instant("mark", "t", PID_RUNTIME, 3, vec![]);
        counter("queue", PID_RUNTIME, 0, "depth", 2.0);
        complete("virtual", "sim", 1000.0, 500.0, PID_SIM, 1, vec![]);
        name_thread(PID_RUNTIME, 3, "filter:0");

        clear_sink();
        assert!(!enabled());
        // Emissions after clear are dropped.
        instant("late", "t", PID_RUNTIME, 0, vec![]);

        let evs = ring.snapshot();
        assert_eq!(evs.len(), 5);
        let work = &evs[0];
        assert_eq!(work.name, "work");
        assert_eq!(work.ph, 'X');
        assert!(work.dur_us >= 0.0);
        assert_eq!(work.args, vec![("packets", ArgValue::Int(7))]);
        let virt = &evs[3];
        assert_eq!((virt.ts_us, virt.dur_us), (1000.0, 500.0));
        assert_eq!(virt.pid, PID_SIM);

        // Ring overflow keeps the newest events.
        let small = Arc::new(RingSink::new(2));
        install_sink(small.clone());
        for i in 0..5 {
            instant(format!("e{i}"), "t", PID_RUNTIME, 0, vec![]);
        }
        clear_sink();
        let names: Vec<_> = small.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e3", "e4"]);
    }

    #[test]
    fn event_json_shape() {
        let ev = TraceEvent {
            name: "p".into(),
            cat: "phase",
            ph: 'X',
            ts_us: 10.0,
            dur_us: 5.0,
            pid: PID_COMPILER,
            tid: 0,
            args: vec![("bytes", ArgValue::Int(1024))],
        };
        let j = ev.to_json();
        assert_eq!(j.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(j.get("dur").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            j.get("args").unwrap().get("bytes").unwrap().as_f64(),
            Some(1024.0)
        );
    }
}
