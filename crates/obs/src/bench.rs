//! Micro-benchmark harness.
//!
//! The build environment is offline, so `criterion` is unavailable;
//! this module provides the slice of its API the workspace's ablation
//! benches use (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros), so
//! a bench file only changes its import line.
//!
//! Methodology: warm up briefly, size the per-sample iteration count to
//! a target sample duration, then take a fixed number of samples and
//! report min / median / mean per iteration. `CGP_BENCH_TIME_MS` scales
//! the time budget per benchmark (default 200 ms).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 12;

fn budget() -> Duration {
    let ms = std::env::var("CGP_BENCH_TIME_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(10))
}

/// Top-level harness handle. One per process; created by
/// [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            group: name,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), &mut f);
    }
}

/// A named group of benchmarks; purely organisational here.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, name.into());
        run_one(&label, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
    }

    pub fn finish(self) {}
}

/// Two-part benchmark id, rendered `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times and record the wall-clock total.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let budget = budget();
    // Warm-up + calibration: grow the batch until it costs >= 1% of
    // the budget, so per-sample batches are sized from a stable rate.
    let mut iters: u64 = 1;
    let mut warm = time_batch(f, iters);
    while warm < budget / 100 && iters < u64::MAX / 2 {
        iters *= 2;
        warm = time_batch(f, iters);
    }
    let per_iter = warm.as_secs_f64() / iters as f64;
    let sample_target = budget.as_secs_f64() / SAMPLES as f64;
    let batch = ((sample_target / per_iter.max(1e-12)) as u64).clamp(1, 1 << 40);

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| time_batch(f, batch).as_secs_f64() / batch as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[SAMPLES / 2];
    let mean = samples.iter().sum::<f64>() / SAMPLES as f64;
    println!(
        "{label:<48} min {:>12}  median {:>12}  mean {:>12}  ({batch} iters/sample)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a bench entry point: `criterion_group!(benches, f1, f2)`
/// makes `fn benches(&mut Criterion)` running each `fi`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `fn main()` running each group. CLI arguments (`--bench`,
/// filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iters() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO || count == 17);
    }

    #[test]
    fn id_renders_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("dp", "n10_m3").label, "dp/n10_m3");
    }

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
