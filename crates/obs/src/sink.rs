//! Trace sinks.
//!
//! A [`TraceSink`] receives stamped [`TraceEvent`]s from the global
//! dispatcher in [`crate::trace`]. Three implementations:
//!
//! - [`RingSink`] — fixed-capacity in-memory ring; keeps the newest
//!   events. Used by tests and by the in-process report printers.
//! - [`JsonLinesSink`] — one JSON object per line, streamed to any
//!   writer; cheap to tail while a run is live.
//! - [`ChromeTraceSink`] — buffers events and writes a single JSON
//!   array on flush: the Chrome `trace_event` format, loadable in
//!   `chrome://tracing` and Perfetto.

use crate::trace::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receiver for trace events. `record` is called under no external
/// locks; implementations synchronise internally.
pub trait TraceSink: Send + Sync {
    fn record(&self, event: TraceEvent);
    /// Persist buffered output. Called by [`crate::trace::clear_sink`]
    /// and [`crate::trace::flush`]; must be idempotent.
    fn flush(&self);
}

/// In-memory ring buffer of the most recent events.
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Drop all retained events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event);
    }

    fn flush(&self) {}
}

/// Streams one JSON object per event to a writer, newline-delimited.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(BufWriter::new(File::create(path)?))))
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, event: TraceEvent) {
        let mut line = String::new();
        event.to_json().write(&mut line);
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

/// Buffers events; `flush` writes the whole Chrome `trace_event` JSON
/// array. The array form (rather than the `traceEvents` envelope) is
/// accepted by both `chrome://tracing` and Perfetto.
pub struct ChromeTraceSink {
    state: Mutex<ChromeState>,
}

struct ChromeState {
    events: Vec<TraceEvent>,
    out: Option<Box<dyn Write + Send>>,
}

impl ChromeTraceSink {
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        ChromeTraceSink {
            state: Mutex::new(ChromeState {
                events: Vec::new(),
                out: Some(out),
            }),
        }
    }

    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(BufWriter::new(File::create(path)?))))
    }

    /// Serialize `events` as a Chrome trace array.
    pub fn render(events: &[TraceEvent]) -> String {
        let mut out = String::from("[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            ev.to_json().write(&mut out);
        }
        out.push_str("\n]\n");
        out
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&self, event: TraceEvent) {
        self.state.lock().unwrap().events.push(event);
    }

    fn flush(&self) {
        let mut state = self.state.lock().unwrap();
        // Write once; later flushes are no-ops (the array is closed).
        if let Some(mut out) = state.out.take() {
            let body = Self::render(&state.events);
            let _ = out.write_all(body.as_bytes());
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::trace::ArgValue;
    use std::sync::Arc;

    fn ev(name: &str, ts: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "t",
            ph: 'X',
            ts_us: ts,
            dur_us: 1.0,
            pid: 1,
            tid: 0,
            args: vec![("n", ArgValue::Int(3))],
        }
    }

    #[test]
    fn ring_keeps_newest() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(ev(&format!("e{i}"), i as f64));
        }
        let names: Vec<_> = ring.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        ring.clear();
        assert!(ring.snapshot().is_empty());
    }

    /// A writer into a shared buffer, so tests can inspect sink output.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonLinesSink::new(Box::new(SharedBuf(buf.clone())));
        sink.record(ev("a", 1.0));
        sink.record(ev("b", 2.0));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let parsed = Json::parse(line).unwrap();
            assert!(parsed.get("name").is_some());
        }
    }

    #[test]
    fn chrome_trace_parses_as_array() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = ChromeTraceSink::new(Box::new(SharedBuf(buf.clone())));
        sink.record(ev("a", 1.0));
        sink.record(ev("b", 2.0));
        sink.flush();
        sink.flush(); // idempotent
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let parsed = Json::parse(text.trim()).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(arr[1].get("ts").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn chrome_empty_trace_is_valid() {
        assert_eq!(
            Json::parse(ChromeTraceSink::render(&[]).trim()).unwrap(),
            Json::Arr(vec![])
        );
    }
}
