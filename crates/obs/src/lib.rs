//! # cgp-obs — observability for the compiler and the DataCutter runtime
//!
//! The paper's whole contribution is *choices*: where filter boundaries
//! land, what `ReqComm` each link carries, which decomposition the DP
//! picks. This crate is the substrate that makes those choices — and the
//! resulting pipeline behaviour — visible:
//!
//! - [`trace`] — a lightweight event/span layer. Events carry explicit
//!   microsecond timestamps so both wall-clock runs (the DataCutter
//!   executor, the compiler driver) and *virtual-time* runs (`cgp-grid`'s
//!   simulator) export into the same timeline format.
//! - [`sink`] — pluggable sinks: an in-memory ring buffer, a JSON-lines
//!   writer, and a Chrome `trace_event` exporter whose output loads
//!   directly in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//! - [`metrics`] — a counter/histogram registry with cross-registry merge
//!   (per-thread registries merged at end of run) and a lossless wire
//!   codec so registries shipped between processes merge faithfully.
//! - [`telemetry`] — the live telemetry plane: periodic in-flight
//!   pipeline samples ([`TelemetrySample`]) fanned out to a JSONL log /
//!   status line / latest-sample slot by a [`TelemetrySampler`].
//! - [`json`] — a minimal JSON writer/parser (the build environment is
//!   offline, so no serde); used by the sinks and by round-trip tests.
//!
//! **Zero cost when off.** The hot path is guarded by one relaxed atomic
//! load ([`trace::enabled`]); with no sink attached, instrumentation does
//! not allocate or take locks, so the cost model's inputs (measured
//! per-packet times) are not perturbed.
//!
//! The crate also hosts the workspace's dependency-free support modules
//! (the container cannot reach crates.io):
//!
//! - [`rng`] — a seeded SplitMix64/xoshiro-style PRNG (replaces `rand`)
//!   used for synthetic datasets and seeded property-test loops;
//! - [`bench`] — a tiny micro-benchmark harness (replaces `criterion`)
//!   used by `cgp-bench`'s ablation benches.
//!
//! ## Quick start
//!
//! ```
//! use cgp_obs::sink::RingSink;
//! use cgp_obs::trace;
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingSink::new(1024));
//! trace::install_sink(ring.clone());
//! {
//!     let _span = trace::span("compile", "phase", trace::PID_COMPILER, 0);
//!     // ... work ...
//! }
//! trace::clear_sink();
//! assert_eq!(ring.snapshot().len(), 1);
//! ```

pub mod bench;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod sink;
pub mod telemetry;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use rng::SmallRng;
pub use sink::{ChromeTraceSink, JsonLinesSink, RingSink, TraceSink};
pub use telemetry::{
    StageSample, TelemetrySample, TelemetrySampler, STATUS_EVERY_ENV, TELEMETRY_LOG_ENV,
};
pub use trace::{enabled, install_sink, span, ArgValue, Span, TraceEvent, TRACE_ENV};
