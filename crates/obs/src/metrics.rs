//! Counter / histogram metrics registry.
//!
//! Each worker (filter copy, compiler phase, bench iteration) can own a
//! private [`MetricsRegistry`] and record without contention; at end of
//! run the registries are [merged](MetricsRegistry::merge) into one
//! snapshot. Counters are monotone sums; histograms keep log-spaced
//! bucket counts plus exact sum/min/max, so merged quantile estimates
//! never require storing samples.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Monotone counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    pub value: u64,
}

impl Counter {
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }
}

/// Number of log-spaced histogram buckets. Bucket `i` covers values in
/// `[2^(i-1), 2^i)` (bucket 0 is `[0, 1)`), so 64 buckets span any u64.
const BUCKETS: usize = 64;

/// Log-2 bucketed histogram over non-negative integer samples
/// (bytes, microseconds, queue depths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        // Saturating: a wrapped or garbage stamp (u64::MAX-ish) must park
        // in the top bucket, not abort the recording thread on overflow.
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1).
    /// Coarse (factor-of-two) but merge-stable.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Interpolated quantile estimate: locates the bucket containing rank
    /// `q·count`, then interpolates linearly within the bucket's value
    /// range `[2^(i-1), 2^i)` by the rank's position among the bucket's
    /// samples. Clamped to the observed `[min, max]`, so a single-sample
    /// histogram returns the exact sample. Finer than
    /// [`quantile`](Self::quantile) (which reports only the bucket's
    /// upper bound) and equally merge-stable.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extreme quantiles are known exactly — don't interpolate.
        if q == 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket edges tightened to the observed range: the top
                // bucket is unbounded above, so its only honest upper
                // edge is `max` (interpolating toward u64::MAX would put
                // every mid-quantile estimate at the clamp).
                let lo = (if i == 0 { 0u64 } else { 1u64 << (i - 1) }).max(self.min);
                let hi = if i >= BUCKETS - 1 {
                    self.max
                } else {
                    (1u64 << i).min(self.max)
                };
                let hi = hi.max(lo);
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Lossless JSON encoding (bucket counts included, sparse), so a
    /// histogram shipped across processes can be [`merge`](Self::merge)d
    /// faithfully on the receiving side.
    pub fn to_wire_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::Num(self.count as f64));
        o.set("sum", Json::Num(self.sum as f64));
        o.set(
            "min",
            Json::Num(if self.count == 0 {
                0.0
            } else {
                self.min as f64
            }),
        );
        o.set("max", Json::Num(self.max as f64));
        let mut buckets = Vec::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                buckets.push(Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]));
            }
        }
        o.set("buckets", Json::Arr(buckets));
        o
    }

    /// Decode [`to_wire_json`](Self::to_wire_json) output. `None` on any
    /// structural mismatch (hardened against malformed remote input).
    pub fn from_wire_json(j: &Json) -> Option<Histogram> {
        let mut h = Histogram {
            count: j.get("count")?.as_f64()? as u64,
            sum: j.get("sum")?.as_f64()? as u64,
            min: j.get("min")?.as_f64()? as u64,
            max: j.get("max")?.as_f64()? as u64,
            buckets: [0; BUCKETS],
        };
        if h.count == 0 {
            return Some(Histogram::default());
        }
        let Json::Arr(buckets) = j.get("buckets")? else {
            return None;
        };
        for pair in buckets {
            let Json::Arr(kv) = pair else { return None };
            if kv.len() != 2 {
                return None;
            }
            let i = kv[0].as_f64()? as usize;
            if i >= BUCKETS {
                return None;
            }
            h.buckets[i] = kv[1].as_f64()? as u64;
        }
        if h.buckets.iter().sum::<u64>() != h.count {
            return None;
        }
        Some(h)
    }
}

/// Named counters and histograms. Keys are sorted (BTreeMap) so every
/// rendering is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&mut self, name: &str, delta: u64) {
        self.counters
            .entry(name.to_string())
            .or_default()
            .add(delta);
    }

    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    pub fn get_counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.value)
    }

    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.value))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters add, histograms merge
    /// bucket-wise. Associative and commutative, so per-thread
    /// registries can be folded in any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().add(c.value);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Fold a pre-aggregated histogram into the named histogram (e.g. a
    /// per-stage latency histogram collected outside the registry).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// JSON snapshot: `{"counters": {...}, "histograms": {name:
    /// {count, sum, min, max, mean, p50, p95, p99}}}`. Percentiles are
    /// interpolated ([`Histogram::percentile`]).
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, c) in &self.counters {
            counters.set(name.clone(), Json::Num(c.value as f64));
        }
        let mut histograms = Json::obj();
        for (name, h) in &self.histograms {
            let mut o = Json::obj();
            o.set("count", Json::Num(h.count as f64));
            o.set("sum", Json::Num(h.sum as f64));
            o.set(
                "min",
                Json::Num(if h.count == 0 { 0.0 } else { h.min as f64 }),
            );
            o.set("max", Json::Num(h.max as f64));
            o.set("mean", Json::Num(h.mean()));
            o.set("p50", Json::Num(h.percentile(0.5) as f64));
            o.set("p95", Json::Num(h.percentile(0.95) as f64));
            o.set("p99", Json::Num(h.percentile(0.99) as f64));
            histograms.set(name.clone(), o);
        }
        let mut root = Json::obj();
        root.set("counters", counters);
        root.set("histograms", histograms);
        root
    }

    /// Lossless JSON encoding of the whole registry (bucket-level
    /// histograms via [`Histogram::to_wire_json`]), for shipping a
    /// snapshot across processes and merging it on the far side.
    pub fn to_wire_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, c) in &self.counters {
            counters.set(name.clone(), Json::Num(c.value as f64));
        }
        let mut histograms = Json::obj();
        for (name, h) in &self.histograms {
            histograms.set(name.clone(), h.to_wire_json());
        }
        let mut root = Json::obj();
        root.set("counters", counters);
        root.set("histograms", histograms);
        root
    }

    /// Decode [`to_wire_json`](Self::to_wire_json) output. `None` on any
    /// structural mismatch (hardened against malformed remote input).
    pub fn from_wire_json(j: &Json) -> Option<MetricsRegistry> {
        let mut reg = MetricsRegistry::new();
        let Json::Obj(counters) = j.get("counters")? else {
            return None;
        };
        for (name, v) in counters {
            reg.counter(name, v.as_f64()? as u64);
        }
        let Json::Obj(histograms) = j.get("histograms")? else {
            return None;
        };
        for (name, v) in histograms {
            reg.histograms
                .insert(name.clone(), Histogram::from_wire_json(v)?);
        }
        Some(reg)
    }

    /// Plain-text table for report printers.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {}", c.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={} mean={:.1} min={} max={} p50={} p99={}",
                    h.count,
                    h.mean(),
                    if h.count == 0 { 0 } else { h.min },
                    h.max,
                    h.percentile(0.5),
                    h.percentile(0.99),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut r = MetricsRegistry::new();
        r.counter("packets", 3);
        r.counter("packets", 4);
        assert_eq!(r.get_counter("packets"), 7);
        assert_eq!(r.get_counter("missing"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 106);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        // p50 falls in the bucket holding 2 (values [2,4)).
        assert_eq!(h.quantile(0.5), 4);
        // p100 falls in the bucket holding 100 (values [64,128)).
        assert_eq!(h.quantile(1.0), 128);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn percentile_single_sample_is_exact() {
        let mut h = Histogram::default();
        h.record(37);
        // Every percentile of a one-sample distribution is that sample —
        // the min/max clamp recovers it despite the coarse bucket.
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(q), 37, "q={q}");
        }
    }

    #[test]
    fn percentile_interpolates_within_and_across_buckets() {
        let mut h = Histogram::default();
        for v in [2u64, 2, 3, 100] {
            h.record(v);
        }
        // Rank 2 of 4 lands in the bucket covering [2,4) which holds 3
        // samples; interpolation keeps the estimate inside the bucket,
        // strictly finer than quantile()'s upper bound of 4.
        let p50 = h.percentile(0.5);
        assert!((2..4).contains(&p50), "p50={p50}");
        // Rank 4 crosses into the [64,128) bucket; the estimate is
        // clamped to the observed max.
        let p99 = h.percentile(0.99);
        assert!((64..=100).contains(&p99), "p99={p99}");
        // Degenerate q values hit the exact extremes.
        assert_eq!(h.percentile(0.0), h.min);
        assert_eq!(h.percentile(1.0), h.max);
    }

    #[test]
    fn percentile_q0_is_min_and_q1_is_max() {
        let mut h = Histogram::default();
        for v in [5u64, 9, 1200, 77777] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 5);
        assert_eq!(h.percentile(1.0), 77777);
        // Out-of-range q is clamped, not propagated.
        assert_eq!(h.percentile(-3.0), 5);
        assert_eq!(h.percentile(7.0), 77777);
    }

    #[test]
    fn percentile_top_unbounded_bucket_interpolates_to_observed_max() {
        let mut h = Histogram::default();
        // Both samples land in the unbounded last bucket [2^62, ∞); the
        // interpolation edge must be the observed max, not u64::MAX.
        h.record(1 << 62);
        h.record(1 << 63);
        for q in [0.25, 0.5, 0.75, 0.99] {
            let p = h.percentile(q);
            assert!(
                ((1u64 << 62)..=(1u64 << 63)).contains(&p),
                "q={q} escaped the observed range: {p}"
            );
        }
        assert_eq!(h.percentile(1.0), 1 << 63);
    }

    #[test]
    fn percentile_never_leaves_observed_range() {
        let mut h = Histogram::default();
        for v in [3u64, 3, 3, 900] {
            h.record(v);
        }
        for i in 0..=100u32 {
            let q = f64::from(i) / 100.0;
            let p = h.percentile(q);
            assert!((3..=900).contains(&p), "q={q} p={p}");
        }
    }

    #[test]
    fn percentile_is_merge_stable() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in 0..200u64 {
            let h = if v % 2 == 0 { &mut a } else { &mut b };
            h.record(v * 3);
            whole.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.percentile(0.5), whole.percentile(0.5));
        assert_eq!(a.percentile(0.99), whole.percentile(0.99));
    }

    #[test]
    fn histogram_wire_roundtrip() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 5, 1000, 1 << 62] {
            h.record(v);
        }
        let j = h.to_wire_json();
        let parsed = crate::json::Json::parse(&j.to_string()).unwrap();
        let back = Histogram::from_wire_json(&parsed).unwrap();
        assert_eq!(back.count, h.count);
        assert_eq!(back.min, h.min);
        assert_eq!(back.buckets, h.buckets);
        // Empty histogram round-trips too.
        let e = Histogram::default();
        let back = Histogram::from_wire_json(&e.to_wire_json()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn histogram_wire_rejects_malformed() {
        // Bucket counts not matching `count`.
        let mut h = Histogram::default();
        h.record(7);
        let text = h
            .to_wire_json()
            .to_string()
            .replace("\"count\":1", "\"count\":2");
        let parsed = crate::json::Json::parse(&text).unwrap();
        assert!(Histogram::from_wire_json(&parsed).is_none());
        // Bucket index out of range.
        let bad = Json::parse("{\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":[[99,1]]}")
            .unwrap();
        assert!(Histogram::from_wire_json(&bad).is_none());
    }

    #[test]
    fn registry_wire_roundtrip_preserves_merge() {
        let mut a = MetricsRegistry::new();
        a.counter("net.link1.frames", 12);
        a.counter("net.link1.bytes", 4096);
        a.observe("stage.f1.residence_us", 10);
        a.observe("stage.f1.residence_us", 1000);
        let text = a.to_wire_json().to_string();
        let parsed = crate::json::Json::parse(&text).unwrap();
        let back = MetricsRegistry::from_wire_json(&parsed).unwrap();
        assert_eq!(back.get_counter("net.link1.frames"), 12);
        assert_eq!(
            back.get_histogram("stage.f1.residence_us"),
            a.get_histogram("stage.f1.residence_us")
        );
        // Merging the decoded copy equals merging the original.
        let mut m1 = MetricsRegistry::new();
        m1.counter("net.link1.frames", 1);
        let mut m2 = m1.clone();
        m1.merge(&a);
        m2.merge(&back);
        assert_eq!(m1.get_counter("net.link1.frames"), 13);
        assert_eq!(
            m1.get_histogram("stage.f1.residence_us"),
            m2.get_histogram("stage.f1.residence_us")
        );
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        // The top bucket absorbs everything from 2^62 up.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_is_commutative_and_matches_single_stream() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let mut whole = MetricsRegistry::new();
        for v in 0..100u64 {
            let r = if v % 2 == 0 { &mut a } else { &mut b };
            r.counter("n", 1);
            r.observe("lat", v * 17);
            whole.counter("n", 1);
            whole.observe("lat", v * 17);
        }
        // Disjoint names survive a merge too.
        a.counter("only_a", 5);
        whole.counter("only_a", 5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        for m in [&ab, &ba] {
            assert_eq!(m.get_counter("n"), whole.get_counter("n"));
            assert_eq!(m.get_counter("only_a"), 5);
            let (h, w) = (
                m.get_histogram("lat").unwrap(),
                whole.get_histogram("lat").unwrap(),
            );
            assert_eq!(h, w);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut r = MetricsRegistry::new();
        r.observe("x", 9);
        let before = r.get_histogram("x").unwrap().clone();
        r.merge(&MetricsRegistry::new());
        assert_eq!(r.get_histogram("x").unwrap(), &before);
    }

    #[test]
    fn json_snapshot_parses() {
        let mut r = MetricsRegistry::new();
        r.counter("c", 2);
        r.observe("h", 10);
        let text = r.to_json().to_string();
        let parsed = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("counters").unwrap().get("c").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
