//! Live telemetry plane: periodic in-flight snapshots of a running
//! pipeline.
//!
//! The metrics registry ([`crate::metrics`]) is an *end-of-run* artifact:
//! per-thread registries merge once every copy exits. This module is the
//! *during-the-run* counterpart. A [`TelemetrySampler`] receives one
//! [`TelemetrySample`] per sampling tick (every `CGP_STATUS_EVERY` ms),
//! each bundling per-stage in-flight gauges ([`StageSample`]: queue
//! depth, incremental busy time per copy, blocked time, replay-buffer
//! occupancy) plus run-wide counters and latency percentiles, and fans
//! it out to:
//!
//! - a JSONL log (`CGP_TELEMETRY_LOG`), one sample per line, written
//!   atomically per line so it can be tailed while the run is live;
//! - an optional single-line status renderer on stderr;
//! - the latest-sample slot, for pollers.
//!
//! The sampler is deliberately passive: the *probing* (lock-light atomic
//! reads against the executor's shared state) lives next to the executor
//! in `cgp-datacutter`; this crate only defines the sample model, its
//! JSON codec (used verbatim as the payload of the network `Telemetry`
//! frame), and the fan-out. Samples therefore serialize/deserialize
//! losslessly, so a launcher can merge snapshots shipped by worker
//! processes with its own.

use crate::json::Json;
use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Sampling cadence in milliseconds; unset/0 disables the telemetry
/// plane entirely (no probes, no stamping, no sampler thread).
pub const STATUS_EVERY_ENV: &str = "CGP_STATUS_EVERY";
/// JSONL sink for samples (and, on a launcher, merged registries).
pub const TELEMETRY_LOG_ENV: &str = "CGP_TELEMETRY_LOG";

/// One stage's in-flight gauges at a sampling tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageSample {
    pub stage: String,
    /// Packets waiting in the stage's input queues (including locally
    /// drained-but-unconsumed packets).
    pub queue_depth: u64,
    /// Wall-clock busy time of each copy so far, µs — maintained
    /// incrementally, so mid-run snapshots and crashed copies report
    /// real busy time.
    pub busy_us_per_copy: Vec<u64>,
    /// Fraction of each copy's busy time spent neither send-blocked nor
    /// recv-starved (i.e. actually computing), 0..=1.
    pub active_frac_per_copy: Vec<f64>,
    pub blocked_send_us: u64,
    pub blocked_recv_us: u64,
    pub buffers_in: u64,
    pub buffers_out: u64,
    /// Sent-but-unacknowledged packets buffered for replay into this
    /// stage (recovery runs only).
    pub replay_occupancy: u64,
    /// Per-stage residence latency (send → delivery), interpolated
    /// percentiles in µs; 0 when no packet has been stamped yet.
    pub residence_p50_us: u64,
    pub residence_p95_us: u64,
    pub residence_p99_us: u64,
}

/// One sampling tick over the whole (local part of the) pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySample {
    /// Which process produced this sample (`local`, `worker:2`, ...).
    pub source: String,
    /// Monotone per-source sample number (stamped by the sampler).
    pub seq: u64,
    /// Time since the run started, µs.
    pub elapsed_us: u64,
    /// Set on the last sample a source emits (end of its run).
    pub fin: bool,
    pub stages: Vec<StageSample>,
    /// Run-wide counters (pool hit/miss, `net.link<k>.*`, ...), sorted
    /// by name for deterministic rendering.
    pub counters: Vec<(String, u64)>,
    /// End-to-end (ingest origin → last-stage delivery) latency
    /// percentiles in µs, recorded at the final stage; count is the
    /// number of packets measured.
    pub e2e_count: u64,
    pub e2e_p50_us: u64,
    pub e2e_p95_us: u64,
    pub e2e_p99_us: u64,
}

impl StageSample {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("stage", Json::Str(self.stage.clone()));
        o.set("queue_depth", Json::Num(self.queue_depth as f64));
        o.set(
            "busy_us_per_copy",
            Json::Arr(
                self.busy_us_per_copy
                    .iter()
                    .map(|&v| Json::Num(v as f64))
                    .collect(),
            ),
        );
        o.set(
            "active_frac_per_copy",
            Json::Arr(
                self.active_frac_per_copy
                    .iter()
                    .map(|&v| Json::Num(v))
                    .collect(),
            ),
        );
        o.set("blocked_send_us", Json::Num(self.blocked_send_us as f64));
        o.set("blocked_recv_us", Json::Num(self.blocked_recv_us as f64));
        o.set("buffers_in", Json::Num(self.buffers_in as f64));
        o.set("buffers_out", Json::Num(self.buffers_out as f64));
        o.set("replay_occupancy", Json::Num(self.replay_occupancy as f64));
        o.set("residence_p50_us", Json::Num(self.residence_p50_us as f64));
        o.set("residence_p95_us", Json::Num(self.residence_p95_us as f64));
        o.set("residence_p99_us", Json::Num(self.residence_p99_us as f64));
        o
    }

    fn from_json(j: &Json) -> Option<StageSample> {
        let num = |k: &str| j.get(k)?.as_f64().map(|v| v as u64);
        Some(StageSample {
            stage: j.get("stage")?.as_str()?.to_string(),
            queue_depth: num("queue_depth")?,
            busy_us_per_copy: j
                .get("busy_us_per_copy")?
                .as_arr()?
                .iter()
                .map(|v| v.as_f64().map(|f| f as u64))
                .collect::<Option<Vec<_>>>()?,
            active_frac_per_copy: j
                .get("active_frac_per_copy")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<Vec<_>>>()?,
            blocked_send_us: num("blocked_send_us")?,
            blocked_recv_us: num("blocked_recv_us")?,
            buffers_in: num("buffers_in")?,
            buffers_out: num("buffers_out")?,
            replay_occupancy: num("replay_occupancy")?,
            residence_p50_us: num("residence_p50_us")?,
            residence_p95_us: num("residence_p95_us")?,
            residence_p99_us: num("residence_p99_us")?,
        })
    }
}

impl TelemetrySample {
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("source", Json::Str(self.source.clone()));
        o.set("seq", Json::Num(self.seq as f64));
        o.set("elapsed_us", Json::Num(self.elapsed_us as f64));
        o.set("fin", Json::Bool(self.fin));
        o.set(
            "stages",
            Json::Arr(self.stages.iter().map(StageSample::to_json).collect()),
        );
        let mut counters = Json::obj();
        for (name, v) in &self.counters {
            counters.set(name.clone(), Json::Num(*v as f64));
        }
        o.set("counters", counters);
        o.set("e2e_count", Json::Num(self.e2e_count as f64));
        o.set("e2e_p50_us", Json::Num(self.e2e_p50_us as f64));
        o.set("e2e_p95_us", Json::Num(self.e2e_p95_us as f64));
        o.set("e2e_p99_us", Json::Num(self.e2e_p99_us as f64));
        o
    }

    /// Decode [`to_json`](Self::to_json) output. `None` on any
    /// structural mismatch (hardened against malformed remote input).
    pub fn from_json(j: &Json) -> Option<TelemetrySample> {
        let num = |k: &str| j.get(k)?.as_f64().map(|v| v as u64);
        let Json::Obj(counter_entries) = j.get("counters")? else {
            return None;
        };
        Some(TelemetrySample {
            source: j.get("source")?.as_str()?.to_string(),
            seq: num("seq")?,
            elapsed_us: num("elapsed_us")?,
            fin: j.get("fin")?.as_bool()?,
            stages: j
                .get("stages")?
                .as_arr()?
                .iter()
                .map(StageSample::from_json)
                .collect::<Option<Vec<_>>>()?,
            counters: counter_entries
                .iter()
                .map(|(k, v)| v.as_f64().map(|f| (k.clone(), f as u64)))
                .collect::<Option<Vec<_>>>()?,
            e2e_count: num("e2e_count")?,
            e2e_p50_us: num("e2e_p50_us")?,
            e2e_p95_us: num("e2e_p95_us")?,
            e2e_p99_us: num("e2e_p99_us")?,
        })
    }

    /// Compact one-line rendering for a live status line.
    pub fn render_status_line(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "[telemetry {}] t={:.1}s",
            self.source,
            self.elapsed_us as f64 / 1e6
        );
        for s in &self.stages {
            let busy: u64 = s.busy_us_per_copy.iter().sum();
            let active = if s.active_frac_per_copy.is_empty() {
                0.0
            } else {
                s.active_frac_per_copy.iter().sum::<f64>() / s.active_frac_per_copy.len() as f64
            };
            let _ = write!(
                line,
                " | {} q={} busy={}ms act={:.0}%",
                s.stage,
                s.queue_depth,
                busy / s.busy_us_per_copy.len().max(1) as u64 / 1000,
                active * 100.0
            );
            if s.residence_p99_us > 0 {
                let _ = write!(line, " p99={}us", s.residence_p99_us);
            }
        }
        if self.e2e_count > 0 {
            let _ = write!(
                line,
                " | e2e p50={}us p99={}us",
                self.e2e_p50_us, self.e2e_p99_us
            );
        }
        line
    }
}

/// Fan-out sink for periodic [`TelemetrySample`]s: stamps sequence
/// numbers, appends JSONL lines, optionally renders a live status line,
/// and retains the latest sample for pollers. All methods take `&self`
/// (internally synchronized) so a sampler can be shared across the
/// executor's scope threads.
pub struct TelemetrySampler {
    every: Duration,
    log: Option<Mutex<File>>,
    latest: Mutex<Option<TelemetrySample>>,
    seq: AtomicU64,
    status: bool,
}

impl TelemetrySampler {
    pub fn new(every: Duration) -> Self {
        TelemetrySampler {
            every,
            log: None,
            latest: Mutex::new(None),
            seq: AtomicU64::new(0),
            status: false,
        }
    }

    /// Append samples as JSON lines to `path` (created/truncated).
    pub fn with_log_path(mut self, path: &str) -> std::io::Result<Self> {
        self.log = Some(Mutex::new(File::create(path)?));
        Ok(self)
    }

    /// Also render each sample as a one-line status update on stderr.
    pub fn with_status_line(mut self, on: bool) -> Self {
        self.status = on;
        self
    }

    /// Sampling cadence the probing loop should use.
    pub fn every(&self) -> Duration {
        self.every
    }

    /// Record one sample: stamp its sequence number, fan out, and return
    /// the stamped sample (callers that also ship samples over the wire
    /// forward the returned value).
    pub fn record(&self, mut sample: TelemetrySample) -> TelemetrySample {
        sample.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.log_json(&sample.to_json());
        if self.status {
            eprintln!("{}", sample.render_status_line());
        }
        *lock(&self.latest) = Some(sample.clone());
        sample
    }

    /// Append an arbitrary JSON line to the telemetry log (used by the
    /// launcher-side aggregator for remote samples and merged
    /// registries). A no-op without a log sink.
    pub fn log_json(&self, j: &Json) {
        if let Some(log) = &self.log {
            let mut f = log.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(f, "{j}");
        }
    }

    /// The most recent sample recorded, if any.
    pub fn latest(&self) -> Option<TelemetrySample> {
        lock(&self.latest).clone()
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySample {
        TelemetrySample {
            source: "worker:1".into(),
            seq: 0,
            elapsed_us: 1_500_000,
            fin: false,
            stages: vec![StageSample {
                stage: "f1".into(),
                queue_depth: 7,
                busy_us_per_copy: vec![1000, 900],
                active_frac_per_copy: vec![0.75, 0.5],
                blocked_send_us: 300,
                blocked_recv_us: 175,
                buffers_in: 42,
                buffers_out: 40,
                replay_occupancy: 3,
                residence_p50_us: 80,
                residence_p95_us: 200,
                residence_p99_us: 420,
            }],
            counters: vec![("pool.hits".into(), 12), ("pool.misses".into(), 2)],
            e2e_count: 40,
            e2e_p50_us: 900,
            e2e_p95_us: 2000,
            e2e_p99_us: 2500,
        }
    }

    #[test]
    fn sample_json_roundtrip() {
        let s = sample();
        let text = s.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(TelemetrySample::from_json(&parsed).unwrap(), s);
    }

    #[test]
    fn from_json_rejects_malformed() {
        let truncated = Json::parse("{\"source\":\"x\",\"seq\":1}").unwrap();
        assert!(TelemetrySample::from_json(&truncated).is_none());
        let not_obj = Json::parse("[1,2]").unwrap();
        assert!(TelemetrySample::from_json(&not_obj).is_none());
    }

    #[test]
    fn sampler_stamps_and_retains() {
        let sampler = TelemetrySampler::new(Duration::from_millis(50));
        assert!(sampler.latest().is_none());
        let a = sampler.record(sample());
        let b = sampler.record(sample());
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
        assert_eq!(sampler.samples(), 2);
        assert_eq!(sampler.latest().unwrap().seq, 1);
        assert_eq!(sampler.every(), Duration::from_millis(50));
    }

    #[test]
    fn sampler_writes_jsonl() {
        let path =
            std::env::temp_dir().join(format!("cgp_telemetry_test_{}.jsonl", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let sampler = TelemetrySampler::new(Duration::from_millis(10))
            .with_log_path(&path)
            .unwrap();
        sampler.record(sample());
        sampler.record(sample());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let parsed = Json::parse(line).unwrap();
            assert!(TelemetrySample::from_json(&parsed).is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn status_line_mentions_stages_and_latency() {
        let line = sample().render_status_line();
        assert!(line.contains("worker:1"));
        assert!(line.contains("f1"));
        assert!(line.contains("p99=420us"));
        assert!(line.contains("e2e p50=900us"));
    }
}
