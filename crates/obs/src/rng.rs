//! Seeded PRNG.
//!
//! The workspace cannot depend on the `rand` crate (offline build), so
//! this provides the small surface the apps and seeded property-test
//! loops need: xoshiro256** seeded via SplitMix64. Not cryptographic;
//! deterministic for a given seed across platforms, which is what the
//! synthetic-dataset generators and reproducible tests require.

/// xoshiro256** generator, seeded from a single u64 via SplitMix64.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Expand `seed` into the full 256-bit state (SplitMix64 stream).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`. Panics if `bound == 0`.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        // Debiased multiply-shift (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`. Panics on an empty range.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range on empty range {lo}..{hi}");
        lo + self.gen_range_u64((hi - lo) as u64) as usize
    }

    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of U[0,1) over 10k draws is near 0.5.
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds_and_hits_all() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(10, 15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
