//! Property-style tests on the applications' reduction structures: the
//! merges the runtime relies on must be associative, commutative and
//! order-insensitive, and each application must equal its brute-force
//! oracle under arbitrary packetizations. Cases come from a seeded PRNG
//! (the build is offline, so no proptest).

use cgp_apps::isosurface::{
    crossing_cubes, extract_triangles, rasterize_apix, rasterize_zbuf, transform_project,
    ActivePixels, ScalarGrid, ViewParams, ZBuffer,
};
use cgp_apps::knn::{generate_points, Candidate, KNearest};
use cgp_apps::vmscope::{decode_chunk, encode_chunk};
use cgp_obs::SmallRng;

#[test]
fn vmscope_codec_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xA9_0001);
    for _case in 0..100 {
        let len = rng.gen_range(0, 4096);
        // Mix of runs and noise so RLE-ish codecs hit both paths.
        let mut raw = Vec::with_capacity(len);
        while raw.len() < len {
            if rng.gen_bool(0.5) {
                let b = rng.gen_range_u64(256) as u8;
                let run = rng.gen_range(1, 40).min(len - raw.len());
                raw.extend(std::iter::repeat_n(b, run));
            } else {
                raw.push(rng.gen_range_u64(256) as u8);
            }
        }
        assert_eq!(decode_chunk(&encode_chunk(&raw)), raw);
    }
}

#[test]
fn knearest_merge_is_order_insensitive() {
    let mut rng = SmallRng::seed_from_u64(0xA9_0002);
    for case in 0..60 {
        let n = rng.gen_range(1, 500);
        let k = rng.gen_range(1, 64);
        let parts = rng.gen_range(2, 6);
        let seed = rng.next_u64();

        let pts = generate_points(n, seed);
        let q = [0.5, 0.5, 0.5];
        let cand = |i: usize| {
            let p = &pts[i];
            let d = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2);
            Candidate {
                dist2: d,
                index: i as u32,
            }
        };
        // Split candidates into `parts` groups, reduce in several
        // orders; results must agree with the single-pass result.
        let mut groups: Vec<KNearest> = (0..parts).map(|_| KNearest::new(k)).collect();
        for i in 0..n {
            groups[i % parts].push(cand(i));
        }
        let mut forward = KNearest::new(k);
        for g in &groups {
            forward.reduce(g);
        }
        let mut backward = KNearest::new(k);
        for g in groups.iter().rev() {
            backward.reduce(g);
        }
        let mut order: Vec<usize> = (0..parts).collect();
        rng.shuffle(&mut order);
        let mut shuffled = KNearest::new(k);
        for &gi in &order {
            shuffled.reduce(&groups[gi]);
        }
        let mut single = KNearest::new(k);
        for i in 0..n {
            single.push(cand(i));
        }
        let ctx = format!("case {case}: n={n} k={k} parts={parts} seed={seed}");
        assert_eq!(forward.digest(), single.digest(), "{ctx}");
        assert_eq!(backward.digest(), single.digest(), "{ctx}");
        assert_eq!(shuffled.digest(), single.digest(), "{ctx}");
    }
}

#[test]
fn zbuffer_merge_matches_single_pass() {
    let mut rng = SmallRng::seed_from_u64(0xA9_0003);
    for case in 0..40 {
        let dims = rng.gen_range(6, 14);
        let seed = rng.next_u64();
        let parts = rng.gen_range(2, 5);
        let iso = 0.4 + rng.gen_f64() as f32 * 0.8;

        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        let tris = extract_triangles(&g, &cubes, iso);
        let view = ViewParams::looking_at(dims as f32, 0.4, 0.3, 48);
        let st = transform_project(&tris, &view);

        let mut single = ZBuffer::new(48);
        rasterize_zbuf(&st, &mut single);

        // Rasterize chunks into separate buffers and merge in reverse order.
        let chunk = st.len().div_ceil(parts).max(1);
        let mut partials: Vec<ZBuffer> = st
            .chunks(chunk)
            .map(|c| {
                let mut z = ZBuffer::new(48);
                rasterize_zbuf(c, &mut z);
                z
            })
            .collect();
        let mut merged = ZBuffer::new(48);
        while let Some(z) = partials.pop() {
            merged.reduce(&z);
        }
        assert_eq!(
            merged.digest(),
            single.digest(),
            "case {case}: seed={seed} iso={iso}"
        );
    }
}

#[test]
fn apix_equals_zbuf_densified() {
    let mut rng = SmallRng::seed_from_u64(0xA9_0004);
    for case in 0..40 {
        let dims = rng.gen_range(6, 14);
        let seed = rng.next_u64();
        let iso = 0.4 + rng.gen_f64() as f32 * 0.8;

        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        let tris = extract_triangles(&g, &cubes, iso);
        let view = ViewParams::looking_at(dims as f32, 0.4, 0.3, 48);
        let st = transform_project(&tris, &view);
        let mut z = ZBuffer::new(48);
        rasterize_zbuf(&st, &mut z);
        let mut a = ActivePixels::new();
        rasterize_apix(&st, 48, &mut a);
        assert_eq!(
            a.to_zbuffer(48).digest(),
            z.digest(),
            "case {case}: seed={seed}"
        );
        assert!(a.len() <= 48 * 48);
    }
}

#[test]
fn crossing_cubes_equals_naive() {
    let mut rng = SmallRng::seed_from_u64(0xA9_0005);
    for case in 0..40 {
        let dims = rng.gen_range(4, 12);
        let seed = rng.next_u64();
        let iso = 0.3 + rng.gen_f64() as f32;

        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let fast = crossing_cubes(&g, 0..g.cubes(), iso);
        let naive: Vec<u32> = (0..g.cubes())
            .filter(|&c| cgp_apps::isosurface::crosses(&g.corners(c), iso))
            .map(|c| c as u32)
            .collect();
        assert_eq!(fast, naive, "case {case}: seed={seed} iso={iso}");
    }
}

#[test]
fn crossing_cubes_respects_range() {
    let mut rng = SmallRng::seed_from_u64(0xA9_0006);
    for case in 0..40 {
        let dims = rng.gen_range(4, 12);
        let seed = rng.next_u64();
        let lo_frac = rng.gen_f64();
        let len_frac = rng.gen_f64();

        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let total = g.cubes();
        let lo = (lo_frac * total as f64) as usize;
        let hi = (lo + (len_frac * (total - lo) as f64) as usize).min(total);
        let sub = crossing_cubes(&g, lo..hi, 0.8);
        for c in &sub {
            assert!((*c as usize) >= lo && (*c as usize) < hi, "case {case}");
        }
        // Subrange result == filtered full result.
        let full = crossing_cubes(&g, 0..total, 0.8);
        let expect: Vec<u32> = full
            .into_iter()
            .filter(|c| (*c as usize) >= lo && (*c as usize) < hi)
            .collect();
        assert_eq!(sub, expect, "case {case}: seed={seed}");
    }
}
