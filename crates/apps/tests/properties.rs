//! Property-based tests on the applications' reduction structures: the
//! merges the runtime relies on must be associative, commutative and
//! order-insensitive, and each application must equal its brute-force
//! oracle under arbitrary packetizations.

use cgp_apps::isosurface::{
    crossing_cubes, extract_triangles, rasterize_apix, rasterize_zbuf, transform_project,
    ActivePixels, ScalarGrid, ViewParams, ZBuffer,
};
use cgp_apps::knn::{generate_points, Candidate, KNearest};
use cgp_apps::vmscope::{decode_chunk, encode_chunk};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vmscope_codec_roundtrip(raw in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(decode_chunk(&encode_chunk(&raw)), raw);
    }

    #[test]
    fn knearest_merge_is_order_insensitive(
        n in 1usize..500,
        k in 1usize..64,
        parts in 2usize..6,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let pts = generate_points(n, seed);
        let q = [0.5, 0.5, 0.5];
        let cand = |i: usize| {
            let p = &pts[i];
            let d = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2);
            Candidate { dist2: d, index: i as u32 }
        };
        // Split candidates into `parts` groups, reduce in two different
        // orders; results must agree with the single-pass result.
        let mut groups: Vec<KNearest> = (0..parts).map(|_| KNearest::new(k)).collect();
        for i in 0..n {
            groups[i % parts].push(cand(i));
        }
        let mut forward = KNearest::new(k);
        for g in &groups {
            forward.reduce(g);
        }
        let mut backward = KNearest::new(k);
        for g in groups.iter().rev() {
            backward.reduce(g);
        }
        // pseudo-random order
        let mut order: Vec<usize> = (0..parts).collect();
        let mut s = perm_seed;
        for i in (1..parts).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut shuffled = KNearest::new(k);
        for &gi in &order {
            shuffled.reduce(&groups[gi]);
        }
        let mut single = KNearest::new(k);
        for i in 0..n {
            single.push(cand(i));
        }
        prop_assert_eq!(forward.digest(), single.digest());
        prop_assert_eq!(backward.digest(), single.digest());
        prop_assert_eq!(shuffled.digest(), single.digest());
    }

    #[test]
    fn zbuffer_merge_matches_single_pass(
        dims in 6usize..14,
        seed in any::<u64>(),
        parts in 2usize..5,
        iso in 0.4f32..1.2,
    ) {
        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        let tris = extract_triangles(&g, &cubes, iso);
        let view = ViewParams::looking_at(dims as f32, 0.4, 0.3, 48);
        let st = transform_project(&tris, &view);

        let mut single = ZBuffer::new(48);
        rasterize_zbuf(&st, &mut single);

        // Rasterize chunks into separate buffers and merge in reverse order.
        let chunk = st.len().div_ceil(parts).max(1);
        let mut partials: Vec<ZBuffer> = st
            .chunks(chunk)
            .map(|c| {
                let mut z = ZBuffer::new(48);
                rasterize_zbuf(c, &mut z);
                z
            })
            .collect();
        let mut merged = ZBuffer::new(48);
        while let Some(z) = partials.pop() {
            merged.reduce(&z);
        }
        prop_assert_eq!(merged.digest(), single.digest());
    }

    #[test]
    fn apix_equals_zbuf_densified(
        dims in 6usize..14,
        seed in any::<u64>(),
        iso in 0.4f32..1.2,
    ) {
        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        let tris = extract_triangles(&g, &cubes, iso);
        let view = ViewParams::looking_at(dims as f32, 0.4, 0.3, 48);
        let st = transform_project(&tris, &view);
        let mut z = ZBuffer::new(48);
        rasterize_zbuf(&st, &mut z);
        let mut a = ActivePixels::new();
        rasterize_apix(&st, 48, &mut a);
        prop_assert_eq!(a.to_zbuffer(48).digest(), z.digest());
        prop_assert!(a.len() <= 48 * 48);
    }

    #[test]
    fn crossing_cubes_equals_naive(dims in 4usize..12, seed in any::<u64>(), iso in 0.3f32..1.3) {
        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let fast = crossing_cubes(&g, 0..g.cubes(), iso);
        let naive: Vec<u32> = (0..g.cubes())
            .filter(|&c| cgp_apps::isosurface::crosses(&g.corners(c), iso))
            .map(|c| c as u32)
            .collect();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn crossing_cubes_respects_range(dims in 4usize..12, seed in any::<u64>(), lo_frac in 0.0f64..1.0, len_frac in 0.0f64..1.0) {
        let g = ScalarGrid::synthetic(dims, dims, dims, seed);
        let total = g.cubes();
        let lo = (lo_frac * total as f64) as usize;
        let hi = (lo + (len_frac * (total - lo) as f64) as usize).min(total);
        let sub = crossing_cubes(&g, lo..hi, 0.8);
        for c in &sub {
            prop_assert!((*c as usize) >= lo && (*c as usize) < hi);
        }
        // Subrange result == filtered full result.
        let full = crossing_cubes(&g, 0..total, 0.8);
        let expect: Vec<u32> = full
            .into_iter()
            .filter(|c| (*c as usize) >= lo && (*c as usize) < hi)
            .collect();
        prop_assert_eq!(sub, expect);
    }
}
