//! Virtual microscope (Section 6.5).
//!
//! The application serves queries against digitized microscope slides: a
//! query selects a region and a subsampling factor; the server extracts the
//! region, subsamples it, and assembles the output image. The paper's
//! slides are proprietary; we use a deterministic synthetic RGB image —
//! the pipeline (decode chunk, clip, subsample, assemble) is
//! content-independent (see DESIGN.md).
//!
//! **The decode substrate.** Real microscope slides are stored compressed;
//! the Virtual Microscope's data services decompress each chunk before any
//! filtering can happen. We model this with delta-encoded (PNG-filter-like)
//! chunks: each packet's region rows form one prediction chain, so a data
//! node must decode the *whole chunk* — no variant can skip rows inside a
//! chunk. This is what keeps the decomposed versions' advantage at the
//! paper's modest level: subsampling slashes communication, but the decode
//! cost at the data nodes is shared by every version.
//!
//! Variants:
//!
//! - **Default** — data nodes decode and ship all region pixels; compute
//!   nodes subsample and assemble.
//! - **Decomp-Manual** — data nodes decode, then subsample *with strided
//!   loops* (touch only the pixels that survive) and ship 1/f² of the
//!   pixels.
//! - **Decomp-Comp** — same decomposition, but the compiler-generated code
//!   walks every pixel of each kept row testing `x % f == 0` — the paper
//!   reports exactly this difference making the compiler version 10–50%
//!   slower than the manual one on this low-compute application.

use crate::profile::{fnv1a, timed, AppVariant, PacketProfile};

/// A synthetic RGB slide, deterministic in (x, y).
#[derive(Debug, Clone)]
pub struct Slide {
    pub width: usize,
    pub height: usize,
    pub data: Vec<u8>,
}

impl Slide {
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Slide {
        let mut data = Vec::with_capacity(width * height * 3);
        for y in 0..height {
            for x in 0..width {
                // Cheap deterministic texture.
                let h = (x as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add((y as u64).wrapping_mul(0xc2b2ae3d27d4eb4f))
                    .wrapping_add(seed)
                    .wrapping_mul(0xd6e8feb86659fd93);
                data.push((h >> 16) as u8);
                data.push((h >> 32) as u8);
                data.push((h >> 48) as u8);
            }
        }
        Slide {
            width,
            height,
            data,
        }
    }

    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Raw bytes of region rows `[y0, y1)` × columns `[x0, x0+w)`.
    fn region_rows(&self, y0: usize, y1: usize, x0: usize, w: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity((y1 - y0) * w * 3);
        for y in y0..y1 {
            let i = (y * self.width + x0) * 3;
            out.extend_from_slice(&self.data[i..i + w * 3]);
        }
        out
    }
}

/// Delta-encode a byte chunk (one prediction chain across the whole chunk,
/// PNG-filter style: decoding is inherently sequential).
pub fn encode_chunk(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len());
    let mut prev = 0u8;
    for &b in raw {
        out.push(b.wrapping_sub(prev));
        prev = b;
    }
    out
}

/// Decode a delta-encoded chunk (the data-node decompression work every
/// variant pays).
pub fn decode_chunk(enc: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(enc.len());
    let mut prev = 0u8;
    for &d in enc {
        prev = prev.wrapping_add(d);
        out.push(prev);
    }
    out
}

/// A region + subsampling query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    pub x0: usize,
    pub y0: usize,
    pub width: usize,
    pub height: usize,
    /// Every `subsample`-th pixel along each dimension is kept.
    pub subsample: usize,
}

impl Query {
    /// Output image dimensions.
    pub fn out_dims(&self) -> (usize, usize) {
        (
            self.width.div_ceil(self.subsample),
            self.height.div_ceil(self.subsample),
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmVersion {
    Default,
    DecompComp,
    DecompManual,
}

/// A runnable virtual-microscope pipeline.
pub struct VmscopePipeline {
    slide: Slide,
    query: Query,
    n_packets: usize,
    version: VmVersion,
    /// Pre-encoded storage chunks, one per packet (what the data service
    /// actually keeps on disk).
    chunks: Vec<Vec<u8>>,
    /// Assembled output image (the result viewed at the destination).
    out: Vec<u8>,
    label: String,
}

impl VmscopePipeline {
    pub fn new(
        slide: Slide,
        query: Query,
        n_packets: usize,
        version: VmVersion,
        label: impl Into<String>,
    ) -> VmscopePipeline {
        assert!(query.x0 + query.width <= slide.width);
        assert!(query.y0 + query.height <= slide.height);
        assert!(query.subsample >= 1);
        let n_packets = n_packets.max(1).min(query.height);
        let (ow, oh) = query.out_dims();
        let mut p = VmscopePipeline {
            slide,
            query,
            n_packets,
            version,
            chunks: Vec::new(),
            out: vec![0; ow * oh * 3],
            label: label.into(),
        };
        p.chunks = (0..n_packets)
            .map(|i| {
                let rows = p.packet_rows(i);
                let raw = p.slide.region_rows(
                    p.query.y0 + rows.start,
                    p.query.y0 + rows.end,
                    p.query.x0,
                    p.query.width,
                );
                encode_chunk(&raw)
            })
            .collect();
        p
    }

    /// Row range (relative to the query region) for packet `p`.
    fn packet_rows(&self, p: usize) -> std::ops::Range<usize> {
        let rows = self.query.height;
        let np = self.n_packets;
        let base = rows / np;
        let rem = rows % np;
        let start = p * base + p.min(rem);
        let len = base + usize::from(p < rem);
        start..start + len
    }

    /// Write one kept pixel to the output image.
    #[inline]
    fn emit(&mut self, rel_x: usize, rel_y: usize, px: [u8; 3]) {
        let f = self.query.subsample;
        let (ow, _) = self.query.out_dims();
        let ox = rel_x / f;
        let oy = rel_y / f;
        let i = (oy * ow + ox) * 3;
        self.out[i..i + 3].copy_from_slice(&px);
    }
}

impl AppVariant for VmscopePipeline {
    fn name(&self) -> String {
        let v = match self.version {
            VmVersion::Default => "Default",
            VmVersion::DecompComp => "Decomp-Comp",
            VmVersion::DecompManual => "Decomp-Manual",
        };
        format!("{}/{v}", self.label)
    }

    fn packets(&self) -> usize {
        self.n_packets
    }

    fn run_packet(&mut self, p: usize) -> PacketProfile {
        let rows = self.packet_rows(p);
        let q = self.query;
        let f = q.subsample;
        let w3 = q.width * 3;
        let read0 = self.chunks[p].len() as f64;
        // Stage 0 always begins by decoding the stored chunk — the
        // prediction chain makes this sequential over every row.
        match self.version {
            VmVersion::Default => {
                // Data node: decode + ship every pixel of the region rows.
                let (raw, t0) = timed(|| decode_chunk(&self.chunks[p]));
                let bytes0 = raw.len() as f64;
                // Compute node: subsample (strided) + assemble.
                let (_, t1) = timed(|| {
                    for (j, ry) in rows.clone().enumerate() {
                        if ry % f != 0 {
                            continue;
                        }
                        let row = &raw[j * w3..(j + 1) * w3];
                        let mut rx = 0;
                        while rx < q.width {
                            let px = [row[rx * 3], row[rx * 3 + 1], row[rx * 3 + 2]];
                            self.emit(rx, ry, px);
                            rx += f;
                        }
                    }
                });
                PacketProfile::new([t0, t1, 0.0], [bytes0, 0.0]).with_read(read0)
            }
            VmVersion::DecompManual => {
                // Data node: decode, then strided subsampling; ship only
                // kept pixels (instance-wise dense packing — coordinates
                // are implicit in the counts).
                let (kept, t0) = timed(|| {
                    let raw = decode_chunk(&self.chunks[p]);
                    let mut out: Vec<u8> =
                        Vec::with_capacity((rows.len() / f + 1) * (q.width / f + 1) * 3);
                    let mut ry = rows.start.next_multiple_of(f);
                    while ry < rows.end {
                        let j = ry - rows.start;
                        let row = &raw[j * w3..(j + 1) * w3];
                        let mut rx = 0;
                        while rx < q.width {
                            out.extend_from_slice(&row[rx * 3..rx * 3 + 3]);
                            rx += f;
                        }
                        ry += f;
                    }
                    out
                });
                let bytes0 = kept.len() as f64 + 16.0; // payload + row header
                                                       // Compute node: assemble (positions implied by the grid).
                let (_, t1) = timed(|| {
                    let mut it = kept.chunks_exact(3);
                    let mut ry = rows.start.next_multiple_of(f);
                    while ry < rows.end {
                        let mut rx = 0;
                        while rx < q.width {
                            let px = it.next().expect("kept pixel");
                            self.emit(rx, ry, [px[0], px[1], px[2]]);
                            rx += f;
                        }
                        ry += f;
                    }
                });
                PacketProfile::new([t0, t1, 0.0], [bytes0, 0.0]).with_read(read0)
            }
            VmVersion::DecompComp => {
                // Data node: decode, then compiler-shaped subsampling. The
                // row conditional is the filtering boundary (hoisted by
                // fission), but within a kept row the generated code walks
                // *every* pixel and tests `x % f == 0` — the conditional
                // the paper contrasts with the manual stride.
                let (kept, t0) = timed(|| {
                    let raw = decode_chunk(&self.chunks[p]);
                    let mut out: Vec<u8> =
                        Vec::with_capacity((rows.len() / f + 1) * (q.width / f + 1) * 3);
                    for ry in rows.clone() {
                        if ry % f != 0 {
                            continue;
                        }
                        let j = ry - rows.start;
                        let row = &raw[j * w3..(j + 1) * w3];
                        for rx in 0..q.width {
                            if rx % f == 0 {
                                out.extend_from_slice(&row[rx * 3..rx * 3 + 3]);
                            }
                        }
                    }
                    out
                });
                let bytes0 = kept.len() as f64 + 16.0;
                // Compute node: assemble through the same generic path.
                let (_, t1) = timed(|| {
                    let mut it = kept.chunks_exact(3);
                    for ry in rows.clone() {
                        if ry % f != 0 {
                            continue;
                        }
                        for rx in 0..q.width {
                            if rx % f == 0 {
                                let px = it.next().expect("kept pixel");
                                self.emit(rx, ry, [px[0], px[1], px[2]]);
                            }
                        }
                    }
                });
                PacketProfile::new([t0, t1, 0.0], [bytes0, 0.0]).with_read(read0)
            }
        }
    }

    fn finalize_bytes(&self) -> [f64; 2] {
        [0.0, self.out.len() as f64]
    }

    fn result_digest(&self) -> u64 {
        fnv1a(&self.out)
    }

    fn reset(&mut self) {
        self.out.fill(0);
    }
}

/// The paper's "small query": a modest region at low subsampling — too few
/// packets for good load balance at width 4.
pub fn small_query() -> Query {
    Query {
        x0: 128,
        y0: 128,
        width: 256,
        height: 256,
        subsample: 2,
    }
}

/// The paper's "large query": a big region at a higher subsampling factor.
pub fn large_query() -> Query {
    Query {
        x0: 0,
        y0: 0,
        width: 1024,
        height: 1024,
        subsample: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::run_all;

    fn mk(version: VmVersion) -> VmscopePipeline {
        let slide = Slide::synthetic(512, 512, 17);
        let q = Query {
            x0: 32,
            y0: 64,
            width: 256,
            height: 192,
            subsample: 4,
        };
        VmscopePipeline::new(slide, q, 12, version, "vm-test")
    }

    #[test]
    fn encode_decode_roundtrip() {
        let raw: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 251) as u8).collect();
        assert_eq!(decode_chunk(&encode_chunk(&raw)), raw);
        assert!(decode_chunk(&encode_chunk(&[])).is_empty());
    }

    #[test]
    fn all_versions_agree() {
        let (_, d0) = run_all(&mut mk(VmVersion::Default));
        let (_, d1) = run_all(&mut mk(VmVersion::DecompComp));
        let (_, d2) = run_all(&mut mk(VmVersion::DecompManual));
        assert_eq!(d0, d1);
        assert_eq!(d1, d2);
    }

    #[test]
    fn output_matches_direct_subsampling() {
        let mut p = mk(VmVersion::Default);
        run_all(&mut p);
        // oracle: subsample directly
        let q = p.query;
        let (ow, oh) = q.out_dims();
        let mut expect = vec![0u8; ow * oh * 3];
        for oy in 0..oh {
            for ox in 0..ow {
                let px = p
                    .slide
                    .pixel(q.x0 + ox * q.subsample, q.y0 + oy * q.subsample);
                expect[(oy * ow + ox) * 3..(oy * ow + ox) * 3 + 3].copy_from_slice(&px);
            }
        }
        assert_eq!(p.out, expect);
    }

    #[test]
    fn decomp_ships_roughly_one_over_f_squared() {
        let (pd, _) = run_all(&mut mk(VmVersion::Default));
        let (pm, _) = run_all(&mut mk(VmVersion::DecompManual));
        let bytes = |ps: &[PacketProfile]| ps.iter().map(|p| p.bytes[0]).sum::<f64>();
        // f = 4 → 16× fewer pixels.
        assert!(
            bytes(&pm) < bytes(&pd) / 10.0,
            "{} vs {}",
            bytes(&pm),
            bytes(&pd)
        );
    }

    #[test]
    fn comp_and_manual_ship_identically() {
        let (pc, _) = run_all(&mut mk(VmVersion::DecompComp));
        let (pm, _) = run_all(&mut mk(VmVersion::DecompManual));
        let b = |ps: &[PacketProfile]| ps.iter().map(|p| p.bytes[0]).sum::<f64>();
        assert_eq!(b(&pc), b(&pm));
    }

    #[test]
    fn every_version_reads_every_chunk_byte() {
        // The prediction chain forces full-chunk decode: read_bytes equal.
        let (pd, _) = run_all(&mut mk(VmVersion::Default));
        let (pm, _) = run_all(&mut mk(VmVersion::DecompManual));
        let (pc, _) = run_all(&mut mk(VmVersion::DecompComp));
        let r = |ps: &[PacketProfile]| ps.iter().map(|p| p.read_bytes).sum::<f64>();
        assert_eq!(r(&pd), r(&pm));
        assert_eq!(r(&pd), r(&pc));
        assert!(r(&pd) > 0.0);
    }

    #[test]
    fn comp_version_does_more_data_node_work() {
        let slide = Slide::synthetic(1024, 1024, 3);
        let q = Query {
            x0: 0,
            y0: 0,
            width: 1024,
            height: 1024,
            subsample: 8,
        };
        let mut comp = VmscopePipeline::new(slide.clone(), q, 8, VmVersion::DecompComp, "big");
        let mut man = VmscopePipeline::new(slide, q, 8, VmVersion::DecompManual, "big");
        let (pc, dc) = crate::profile::run_all_min(&mut comp, 3);
        let (pm, dm) = crate::profile::run_all_min(&mut man, 3);
        assert_eq!(dc, dm);
        let t = |ps: &[PacketProfile]| ps.iter().map(|p| p.seconds[0]).sum::<f64>();
        assert!(
            t(&pc) > t(&pm),
            "comp {} should exceed manual {}",
            t(&pc),
            t(&pm)
        );
    }

    #[test]
    fn queries_have_expected_output_sizes() {
        let s = small_query();
        assert_eq!(s.out_dims(), (128, 128));
        let l = large_query();
        assert_eq!(l.out_dims(), (128, 128));
    }

    #[test]
    fn packet_rows_partition_region() {
        let p = mk(VmVersion::Default);
        let mut total = 0;
        for i in 0..p.packets() {
            total += p.packet_rows(i).len();
        }
        assert_eq!(total, p.query.height);
    }

    #[test]
    fn reset_allows_remeasurement() {
        let mut p = mk(VmVersion::Default);
        let (_, d1) = run_all(&mut p);
        p.reset();
        let (_, d2) = run_all(&mut p);
        assert_eq!(d1, d2);
    }

    #[test]
    fn slide_is_deterministic() {
        let a = Slide::synthetic(64, 64, 9);
        let b = Slide::synthetic(64, 64, 9);
        assert_eq!(a.data, b.data);
    }
}
