//! The four applications written in the paper's dialect (Section 3).
//!
//! These are the compiler-path versions: each is a compact dialect program
//! (the paper reports its inputs were under 200 lines) that `cgp-compiler`
//! normalizes, analyzes, decomposes and turns into an executable
//! [`cgp_compiler::FilterPlan`]. They are deliberately simplified relative
//! to the native Rust pipelines in this crate (e.g. the isosurface program
//! renders one fragment per crossing cube instead of full triangles): the
//! native pipelines carry the performance experiments, while these carry
//! the *compiler* experiments — boundary selection, ReqComm, packing and
//! decomposition — and are validated against the sequential interpreter.

use crate::isosurface::ScalarGrid;
use crate::vmscope::Slide;
use cgp_lang::interp::HostEnv;
use cgp_lang::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Isosurface rendering with z-buffers (the paper's Figure 1 workload).
pub const ZBUF_SRC: &str = r#"
extern int ncubes;
extern Cube[] cubes;
extern double isoval;
extern int screen;
runtime_define int num_packets;

class Cube {
    double v0; double v1; double v2; double v3;
    double v4; double v5; double v6; double v7;
    double cx; double cy; double cz;
}

class ZBuf implements Reducinterface {
    double[] depth;
    double[] color;
    int size;
    void setup(int s) {
        size = s;
        depth = new double[s * s];
        color = new double[s * s];
        for (int i = 0; i < s * s; i += 1) { depth[i] = 1.0e30; }
    }
    void put(int x, int y, double d, double c) {
        int i = y * size + x;
        if (d < depth[i]) {
            depth[i] = d;
            color[i] = c;
        }
    }
    void reduce(ZBuf other) {
        for (int i = 0; i < size * size; i += 1) {
            if (other.depth[i] < depth[i]) {
                depth[i] = other.depth[i];
                color[i] = other.color[i];
            }
        }
    }
    double checksum() {
        double s = 0.0;
        for (int i = 0; i < size * size; i += 1) { s += color[i]; }
        return s;
    }
}

class IsoZbuf {
    void main() {
        RectDomain<1> all = [0 : ncubes - 1];
        ZBuf zb = new ZBuf();
        zb.setup(screen);
        PipelinedLoop (pkt in all; num_packets) {
            foreach (c in pkt) {
                double lo = min(min(min(cubes[c].v0, cubes[c].v1), min(cubes[c].v2, cubes[c].v3)),
                                min(min(cubes[c].v4, cubes[c].v5), min(cubes[c].v6, cubes[c].v7)));
                double hi = max(max(max(cubes[c].v0, cubes[c].v1), max(cubes[c].v2, cubes[c].v3)),
                                max(max(cubes[c].v4, cubes[c].v5), max(cubes[c].v6, cubes[c].v7)));
                if (lo <= isoval && hi > isoval) {
                    double t = (isoval - lo) / (hi - lo + 0.000001);
                    double px = cubes[c].cx * 0.7 + cubes[c].cz * 0.3;
                    double py = cubes[c].cy * 0.7 + cubes[c].cz * 0.2;
                    double d = cubes[c].cz * 0.9 - t;
                    int x = toInt(px) % screen;
                    int y = toInt(py) % screen;
                    zb.put(x, y, d, 0.2 + 0.8 * t);
                }
            }
        }
        print(zb.checksum());
    }
}
"#;

/// Isosurface rendering with active pixels: the sparse accumulation
/// variant — same front half, sparse reduction object.
pub const APIX_SRC: &str = r#"
extern int ncubes;
extern Cube[] cubes;
extern double isoval;
extern int screen;
runtime_define int num_packets;

class Cube {
    double v0; double v1; double v2; double v3;
    double v4; double v5; double v6; double v7;
    double cx; double cy; double cz;
}

class ActivePixels implements Reducinterface {
    int[] pix;
    double[] depth;
    double[] color;
    int count;
    int cap;
    void setup(int capacity) {
        cap = capacity;
        count = 0;
        pix = new int[capacity];
        depth = new double[capacity];
        color = new double[capacity];
    }
    void put(int p, double d, double c) {
        int found = 0 - 1;
        for (int i = 0; i < count; i += 1) {
            if (pix[i] == p) { found = i; }
        }
        if (found >= 0) {
            if (d < depth[found]) {
                depth[found] = d;
                color[found] = c;
            }
        } else {
            if (count < cap) {
                pix[count] = p;
                depth[count] = d;
                color[count] = c;
                count = count + 1;
            }
        }
    }
    void reduce(ActivePixels other) {
        for (int i = 0; i < other.count; i += 1) {
            put(other.pix[i], other.depth[i], other.color[i]);
        }
    }
    double checksum() {
        double s = 0.0;
        for (int i = 0; i < count; i += 1) { s += color[i] + toDouble(pix[i]); }
        return s;
    }
}

class IsoApix {
    void main() {
        RectDomain<1> all = [0 : ncubes - 1];
        ActivePixels ap = new ActivePixels();
        ap.setup(4096);
        PipelinedLoop (pkt in all; num_packets) {
            foreach (c in pkt) {
                double lo = min(min(min(cubes[c].v0, cubes[c].v1), min(cubes[c].v2, cubes[c].v3)),
                                min(min(cubes[c].v4, cubes[c].v5), min(cubes[c].v6, cubes[c].v7)));
                double hi = max(max(max(cubes[c].v0, cubes[c].v1), max(cubes[c].v2, cubes[c].v3)),
                                max(max(cubes[c].v4, cubes[c].v5), max(cubes[c].v6, cubes[c].v7)));
                if (lo <= isoval && hi > isoval) {
                    double t = (isoval - lo) / (hi - lo + 0.000001);
                    double px = cubes[c].cx * 0.7 + cubes[c].cz * 0.3;
                    double py = cubes[c].cy * 0.7 + cubes[c].cz * 0.2;
                    double d = cubes[c].cz * 0.9 - t;
                    int x = toInt(px) % screen;
                    int y = toInt(py) % screen;
                    ap.put(y * screen + x, d, 0.2 + 0.8 * t);
                }
            }
        }
        print(ap.checksum());
    }
}
"#;

/// k-nearest-neighbor search.
pub const KNN_SRC: &str = r#"
extern int npoints;
extern double[] px;
extern double[] py;
extern double[] pz;
extern double qx;
extern double qy;
extern double qz;
extern int k;
runtime_define int num_packets;

class KNearest implements Reducinterface {
    double[] dist;
    int[] idx;
    int count;
    int cap;
    void setup(int kk) {
        cap = kk;
        count = 0;
        dist = new double[kk];
        idx = new int[kk];
    }
    void push(double d, int i) {
        if (count < cap) {
            dist[count] = d;
            idx[count] = i;
            count = count + 1;
            int j = count - 1;
            while (j > 0 && dist[j] < dist[j - 1]) {
                double td = dist[j];
                dist[j] = dist[j - 1];
                dist[j - 1] = td;
                int ti = idx[j];
                idx[j] = idx[j - 1];
                idx[j - 1] = ti;
                j = j - 1;
            }
        } else {
            if (d < dist[cap - 1]) {
                dist[cap - 1] = d;
                idx[cap - 1] = i;
                int j2 = cap - 1;
                while (j2 > 0 && dist[j2] < dist[j2 - 1]) {
                    double td2 = dist[j2];
                    dist[j2] = dist[j2 - 1];
                    dist[j2 - 1] = td2;
                    int ti2 = idx[j2];
                    idx[j2] = idx[j2 - 1];
                    idx[j2 - 1] = ti2;
                    j2 = j2 - 1;
                }
            }
        }
    }
    void reduce(KNearest other) {
        for (int i = 0; i < other.count; i += 1) {
            push(other.dist[i], other.idx[i]);
        }
    }
    double checksum() {
        double s = 0.0;
        for (int i = 0; i < count; i += 1) { s += dist[i]; }
        return s;
    }
}

class Knn {
    void main() {
        RectDomain<1> pts = [0 : npoints - 1];
        KNearest best = new KNearest();
        best.setup(k);
        PipelinedLoop (pkt in pts; num_packets) {
            foreach (i in pkt) {
                double dx = px[i] - qx;
                double dy = py[i] - qy;
                double dz = pz[i] - qz;
                double d = dx * dx + dy * dy + dz * dz;
                best.push(d, i);
            }
        }
        print(best.checksum());
    }
}
"#;

/// Virtual microscope: clip + subsample a slide region.
pub const VMSCOPE_SRC: &str = r#"
extern int height;
extern int width;
extern int subsample;
extern double[] pixels;
runtime_define int num_packets;

class OutImage implements Reducinterface {
    double[] data;
    int w;
    void setup(int ww, int hh) {
        w = ww;
        data = new double[ww * hh];
    }
    void put(int x, int y, double v) {
        data[y * w + x] = v;
    }
    void reduce(OutImage other) {
        for (int i = 0; i < data.length(); i += 1) {
            if (other.data[i] > 0.0) {
                data[i] = other.data[i];
            }
        }
    }
    double checksum() {
        double s = 0.0;
        for (int i = 0; i < data.length(); i += 1) { s += data[i]; }
        return s;
    }
}

class Vmscope {
    void main() {
        RectDomain<1> rows = [0 : height - 1];
        OutImage img = new OutImage();
        img.setup(width / subsample, height / subsample);
        PipelinedLoop (pkt in rows; num_packets) {
            foreach (y in pkt) {
                if (y % subsample == 0) {
                    for (int sx = 0; sx < width / subsample; sx += 1) {
                        img.put(sx, y / subsample, pixels[y * width + sx * subsample]);
                    }
                }
            }
        }
        print(img.checksum());
    }
}
"#;

/// Build the host environment for the isosurface dialect programs from a
/// scalar grid (cube objects with corner values and cell coordinates).
pub fn iso_host_env(grid: &ScalarGrid, isovalue: f64, screen: i64, num_packets: i64) -> HostEnv {
    let ncubes = grid.cubes();
    let mut cubes: Vec<Value> = Vec::with_capacity(ncubes);
    for c in 0..ncubes {
        let corners = grid.corners(c);
        let (cx, cy, cz) = grid.cube_coords(c);
        let mut fields = HashMap::new();
        for (i, v) in corners.iter().enumerate() {
            fields.insert(format!("v{i}"), Value::Double(*v as f64));
        }
        fields.insert("cx".to_string(), Value::Double(cx as f64));
        fields.insert("cy".to_string(), Value::Double(cy as f64));
        fields.insert("cz".to_string(), Value::Double(cz as f64));
        cubes.push(Value::new_object("Cube", fields));
    }
    HostEnv::new()
        .bind("ncubes", Value::Int(ncubes as i64))
        .bind("cubes", Value::Array(Rc::new(RefCell::new(cubes))))
        .bind("isoval", Value::Double(isovalue))
        .bind("screen", Value::Int(screen))
        .bind("num_packets", Value::Int(num_packets))
}

/// Host environment for the knn dialect program.
pub fn knn_host_env(points: &[[f64; 3]], query: [f64; 3], k: i64, num_packets: i64) -> HostEnv {
    let arr = |sel: fn(&[f64; 3]) -> f64| {
        Value::Array(Rc::new(RefCell::new(
            points.iter().map(|p| Value::Double(sel(p))).collect(),
        )))
    };
    HostEnv::new()
        .bind("npoints", Value::Int(points.len() as i64))
        .bind("px", arr(|p| p[0]))
        .bind("py", arr(|p| p[1]))
        .bind("pz", arr(|p| p[2]))
        .bind("qx", Value::Double(query[0]))
        .bind("qy", Value::Double(query[1]))
        .bind("qz", Value::Double(query[2]))
        .bind("k", Value::Int(k))
        .bind("num_packets", Value::Int(num_packets))
}

/// Host environment for the vmscope dialect program (grayscale in (0, 1],
/// so the merge's "written" sentinel of 0 never collides with real data).
pub fn vmscope_host_env(slide: &Slide, subsample: i64, num_packets: i64) -> HostEnv {
    let pixels: Vec<Value> = (0..slide.height)
        .flat_map(|y| (0..slide.width).map(move |x| (x, y)))
        .map(|(x, y)| {
            let p = slide.pixel(x, y);
            Value::Double(0.05 + p[0] as f64 / 260.0)
        })
        .collect();
    HostEnv::new()
        .bind("height", Value::Int(slide.height as i64))
        .bind("width", Value::Int(slide.width as i64))
        .bind("subsample", Value::Int(subsample))
        .bind("pixels", Value::Array(Rc::new(RefCell::new(pixels))))
        .bind("num_packets", Value::Int(num_packets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_compiler::cost::PipelineEnv;
    use cgp_compiler::graph::BoundaryKind;
    use cgp_compiler::{compile, run_plan_sequential, CompileOptions};
    use cgp_lang::interp::Interp;

    fn oracle(src: &str, host: &HostEnv) -> Vec<String> {
        let tp = cgp_lang::frontend(src).unwrap();
        let mut it = Interp::new(&tp, host.clone());
        it.run_main().unwrap();
        it.output
    }

    fn small_iso_host() -> HostEnv {
        let grid = ScalarGrid::synthetic(8, 8, 8, 21);
        iso_host_env(&grid, 0.8, 16, 4)
    }

    #[test]
    fn zbuf_compiles_and_matches_oracle() {
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
            .with_symbol("ncubes", 343)
            .with_symbol("screen", 16)
            .with_selectivity(0, 0.15);
        let c = compile(ZBUF_SRC, &opts).unwrap();
        let host = small_iso_host();
        let out = run_plan_sequential(&c.plan, &host).unwrap();
        assert_eq!(out, oracle(ZBUF_SRC, &host), "\n{}", c.plan.describe());
    }

    #[test]
    fn zbuf_decomposition_pushes_test_to_data_node() {
        // Under the steady-state objective with a realistically fast link,
        // the crossing test (cheap, kills most of the input volume) belongs
        // on the data host and the guarded rendering goes downstream —
        // exactly the placement the paper reports for the Decomp version.
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e8, 1e-5), 512)
            .with_symbol("ncubes", 4096)
            .with_symbol("screen", 64)
            .with_selectivity(0, 0.1)
            .with_objective(cgp_compiler::Objective::SteadyState { n_packets: 64 });
        let c = compile(ZBUF_SRC, &opts).unwrap();
        let g = &c.plan.graph;
        let (_, cond_b) = g.cond_boundaries[0];
        assert_eq!(g.boundaries[cond_b].kind, BoundaryKind::CondFilter);
        // The checking computation (the min/max loop feeding the crossing
        // test) must run on the data host…
        let check_atom = g
            .atoms
            .iter()
            .position(|a| a.label.starts_with("loop"))
            .expect("check loop atom");
        assert_eq!(
            c.plan.decomposition.unit_of[check_atom + 1],
            0,
            "check loop on data host\n{}",
            c.plan.describe()
        );
        // …the rendering body must be placed downstream…
        let body_atom = cond_b + 1; // body follows the select atom
        assert!(
            c.plan.decomposition.unit_of[body_atom + 1] >= 1,
            "{}",
            c.plan.describe()
        );
        // …and the chosen decomposition must beat the Default placement on
        // the steady-state objective.
        let default = cgp_compiler::Decomposition::default_style(c.problem.n_tasks(), 3);
        let default_cost =
            cgp_compiler::decompose::stage_times(&c.problem, &c.pipeline, &default.unit_of)
                .total_time(64);
        assert!(
            c.plan.decomposition.cost < default_cost,
            "decomp {} vs default {default_cost}",
            c.plan.decomposition.cost
        );
    }

    #[test]
    fn apix_compiles_and_matches_oracle() {
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
            .with_symbol("ncubes", 343)
            .with_symbol("screen", 16)
            .with_selectivity(0, 0.15);
        let c = compile(APIX_SRC, &opts).unwrap();
        let host = small_iso_host();
        let out = run_plan_sequential(&c.plan, &host).unwrap();
        assert_eq!(out, oracle(APIX_SRC, &host));
    }

    #[test]
    fn knn_compiles_and_matches_oracle() {
        let pts = crate::knn::generate_points(300, 5);
        let host = knn_host_env(&pts, [0.3, 0.6, 0.2], 5, 6);
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 64)
            .with_symbol("npoints", 300)
            .with_symbol("k", 5);
        let c = compile(KNN_SRC, &opts).unwrap();
        let out = run_plan_sequential(&c.plan, &host).unwrap();
        assert_eq!(out, oracle(KNN_SRC, &host), "\n{}", c.plan.describe());
    }

    #[test]
    fn knn_decomposition_computes_distances_at_data_node() {
        // Raw points are 3 doubles each; the distance is 1 double — a slow
        // link favors computing distances upstream.
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e9, 1e5, 1e-4), 1024)
            .with_symbol("npoints", 100000)
            .with_symbol("k", 3);
        let c = compile(KNN_SRC, &opts).unwrap();
        // The distance-computing foreach atom must be on unit 0.
        let dist_atom = c
            .plan
            .graph
            .atoms
            .iter()
            .position(|a| a.label.starts_with("loop"))
            .expect("distance loop atom");
        assert_eq!(
            c.plan.decomposition.unit_of[dist_atom + 1],
            0,
            "{}",
            c.plan.describe()
        );
    }

    #[test]
    fn vmscope_compiles_and_matches_oracle() {
        let slide = Slide::synthetic(32, 32, 9);
        let host = vmscope_host_env(&slide, 2, 4);
        let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 8)
            .with_symbol("height", 32)
            .with_symbol("width", 32)
            .with_symbol("subsample", 2)
            .with_selectivity(0, 0.5);
        let c = compile(VMSCOPE_SRC, &opts).unwrap();
        let out = run_plan_sequential(&c.plan, &host).unwrap();
        assert_eq!(out, oracle(VMSCOPE_SRC, &host), "\n{}", c.plan.describe());
    }

    #[test]
    fn vmscope_sections_stay_rectilinear_with_known_consts() {
        let opts = CompileOptions::new(PipelineEnv::uniform(2, 1e8, 1e6, 1e-5), 8)
            .with_symbol("height", 32)
            .with_symbol("width", 32)
            .with_symbol("subsample", 2);
        let c = compile(VMSCOPE_SRC, &opts).unwrap();
        // With width/subsample known, the pixels consumption should be a
        // strided rectilinear section, not the whole array.
        let has_section =
            c.plan.analysis.input_set.iter().any(|p| {
                p.root == "pixels" && matches!(p.sect, cgp_compiler::Sectioning::Range(_))
            });
        assert!(has_section, "input set: {}", c.plan.analysis.input_set);
    }

    #[test]
    fn all_dialect_programs_under_paper_size() {
        for (name, src) in [
            ("zbuf", ZBUF_SRC),
            ("apix", APIX_SRC),
            ("knn", KNN_SRC),
            ("vmscope", VMSCOPE_SRC),
        ] {
            let lines = src.lines().filter(|l| !l.trim().is_empty()).count();
            assert!(lines < 200, "{name} is {lines} lines");
            // and they all parse + typecheck
            cgp_lang::frontend(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn pipeline_widths_consistency_zbuf() {
        // Same program, m = 2..4 — all must match the oracle.
        let host = small_iso_host();
        let expected = oracle(ZBUF_SRC, &host);
        for m in 2..=4 {
            let opts = CompileOptions::new(PipelineEnv::uniform(m, 1e8, 1e6, 1e-5), 128)
                .with_symbol("ncubes", 343)
                .with_symbol("screen", 16);
            let c = compile(ZBUF_SRC, &opts).unwrap();
            let out = run_plan_sequential(&c.plan, &host).unwrap();
            assert_eq!(out, expected, "m={m}\n{}", c.plan.describe());
        }
    }
}
