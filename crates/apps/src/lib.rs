//! # cgp-apps — the four data-driven applications
//!
//! The paper's evaluation applications (Section 6.1), each in the versions
//! the paper compares:
//!
//! - [`isosurface`] — isosurface rendering with **z-buffer** and
//!   **active-pixel** algorithms (Default vs compiler-Decomposed);
//! - [`knn`] — k-nearest neighbors (Default, Decomp-Comp, Decomp-Manual);
//! - [`vmscope`] — virtual microscope (Default, Decomp-Comp,
//!   Decomp-Manual);
//! - [`dialect`] — the same applications written in the paper's dialect,
//!   compiled through `cgp-compiler` and validated against the sequential
//!   interpreter.
//!
//! Native pipelines implement [`profile::AppVariant`]: they execute the
//! real computation packet by packet, recording per-stage seconds and
//! per-link bytes for the `cgp-grid` virtual-time simulator (the cluster
//! substitution — see DESIGN.md).

pub mod dialect;
pub mod isosurface;
pub mod knn;
pub mod profile;
pub mod vmscope;

pub use profile::{run_all, to_sim_packets, AppVariant, PacketProfile};
