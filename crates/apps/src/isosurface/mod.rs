//! Isosurface rendering (z-buffer and active-pixel algorithms).

pub mod dataset;
pub mod march;
pub mod pipelines;
pub mod render;

pub use dataset::ScalarGrid;
pub use march::{crosses, crossing_cubes, extract_triangles, Triangle};
pub use pipelines::{large_grid, small_grid, IsoPipeline, IsoVersion, Renderer, ISOVALUE};
pub use render::{
    rasterize_apix, rasterize_zbuf, transform_project, ActivePixels, ScreenTri, ViewParams, ZBuffer,
};
