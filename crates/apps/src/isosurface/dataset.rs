//! Synthetic 3-D scalar grids.
//!
//! The paper uses datasets from the ParSSim environmental simulator
//! (1.5 GB / 6 GB, 10 time-steps; one time-step — 150 MB / 600 MB — per
//! experiment). We substitute a deterministic synthetic field: a smooth
//! ramp plus Gaussian plumes, which yields a level set of controllable
//! area — isosurface extraction only cares about the field's level-set
//! geometry, so the identical code path is exercised (see DESIGN.md).

/// A dense 3-D scalar grid, x-fastest layout.
#[derive(Debug, Clone)]
pub struct ScalarGrid {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub data: Vec<f32>,
}

impl ScalarGrid {
    /// Value at grid point (x, y, z).
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> f32 {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        self.data[(z * self.ny + y) * self.nx + x]
    }

    pub fn points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of cubes (cells) along each axis and total.
    pub fn cubes(&self) -> usize {
        (self.nx - 1) * (self.ny - 1) * (self.nz - 1)
    }

    /// Bytes of raw scalar data.
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Cube index → its (cx, cy, cz) cell coordinates.
    #[inline]
    pub fn cube_coords(&self, c: usize) -> (usize, usize, usize) {
        let cx_n = self.nx - 1;
        let cy_n = self.ny - 1;
        let cx = c % cx_n;
        let cy = (c / cx_n) % cy_n;
        let cz = c / (cx_n * cy_n);
        (cx, cy, cz)
    }

    /// The 8 corner values of cube `c` in canonical order.
    #[inline]
    pub fn corners(&self, c: usize) -> [f32; 8] {
        let (x, y, z) = self.cube_coords(c);
        [
            self.at(x, y, z),
            self.at(x + 1, y, z),
            self.at(x + 1, y + 1, z),
            self.at(x, y + 1, z),
            self.at(x, y, z + 1),
            self.at(x + 1, y, z + 1),
            self.at(x + 1, y + 1, z + 1),
            self.at(x, y + 1, z + 1),
        ]
    }

    /// ParSSim-like synthetic field: smooth vertical ramp plus a few
    /// Gaussian plumes whose centers derive from `seed`.
    pub fn synthetic(nx: usize, ny: usize, nz: usize, seed: u64) -> ScalarGrid {
        assert!(nx >= 2 && ny >= 2 && nz >= 2);
        let mut data = Vec::with_capacity(nx * ny * nz);
        // Derive plume centers/widths from the seed with a splitmix step.
        let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            s ^= s >> 30;
            s = s.wrapping_mul(0xbf58476d1ce4e5b9);
            s ^= s >> 27;
            s = s.wrapping_mul(0x94d049bb133111eb);
            s ^= s >> 31;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let plumes: Vec<(f32, f32, f32, f32, f32)> = (0..4)
            .map(|_| {
                (
                    next() as f32, // cx (fractional coords)
                    next() as f32,
                    next() as f32,
                    0.08 + 0.12 * next() as f32, // sigma
                    0.5 + next() as f32,         // amplitude
                )
            })
            .collect();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let fx = x as f32 / (nx - 1) as f32;
                    let fy = y as f32 / (ny - 1) as f32;
                    let fz = z as f32 / (nz - 1) as f32;
                    let mut v = fz; // ramp: isosurface near a z-plane
                    for (px, py, pz, sig, amp) in &plumes {
                        let d2 = (fx - px).powi(2) + (fy - py).powi(2) + (fz - pz).powi(2);
                        v += amp * (-d2 / (2.0 * sig * sig)).exp();
                    }
                    data.push(v);
                }
            }
        }
        ScalarGrid { nx, ny, nz, data }
    }

    /// Packetize cubes into `n_packets` contiguous z-slab-aligned ranges of
    /// the cube index space.
    pub fn cube_packets(&self, n_packets: usize) -> Vec<std::ops::Range<usize>> {
        let total = self.cubes();
        let n = n_packets.max(1).min(total.max(1));
        let base = total / n;
        let rem = total % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for p in 0..n {
            let len = base + usize::from(p < rem);
            out.push(start..start + len);
            start += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = ScalarGrid::synthetic(8, 8, 8, 42);
        let b = ScalarGrid::synthetic(8, 8, 8, 42);
        assert_eq!(a.data, b.data);
        let c = ScalarGrid::synthetic(8, 8, 8, 43);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn indexing_roundtrip() {
        let g = ScalarGrid::synthetic(5, 6, 7, 1);
        assert_eq!(g.points(), 5 * 6 * 7);
        assert_eq!(g.cubes(), 4 * 5 * 6);
        for c in [0usize, 7, 19, g.cubes() - 1] {
            let (x, y, z) = g.cube_coords(c);
            assert!(x < 4 && y < 5 && z < 6);
            // corners must not panic and must match direct lookups
            let cs = g.corners(c);
            assert_eq!(cs[0], g.at(x, y, z));
            assert_eq!(cs[6], g.at(x + 1, y + 1, z + 1));
        }
    }

    #[test]
    fn ramp_crosses_mid_isovalue() {
        let g = ScalarGrid::synthetic(16, 16, 16, 7);
        // Values rise with z, so some cubes must straddle the mid value.
        let iso = 0.5f32;
        let crossing = (0..g.cubes())
            .filter(|&c| {
                let cs = g.corners(c);
                let above = cs.iter().filter(|v| **v > iso).count();
                above != 0 && above != 8
            })
            .count();
        assert!(crossing > 0);
        assert!(crossing < g.cubes());
    }

    #[test]
    fn packets_partition_cube_space() {
        let g = ScalarGrid::synthetic(9, 9, 9, 3);
        let pk = g.cube_packets(7);
        assert_eq!(pk.len(), 7);
        let total: usize = pk.iter().map(|r| r.len()).sum();
        assert_eq!(total, g.cubes());
        for w in pk.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn more_packets_than_cubes_clamps() {
        let g = ScalarGrid::synthetic(2, 2, 3, 0);
        let pk = g.cube_packets(100);
        assert_eq!(pk.len(), g.cubes());
    }
}
