//! Cube test and triangle extraction.
//!
//! The isosurface algorithms (Section 3 and 6.1) process the grid as a set
//! of cubes: a cube whose eight corner values all lie on one side of the
//! isovalue is discarded — this *crossing test* is exactly the loop the
//! compiler's Decomp version pushes to the data nodes. Crossing cubes
//! yield triangles approximating the surface; we use an edge-interpolation
//! scheme (a simplified marching cubes: interpolate a vertex on every
//! sign-changing edge, fan-triangulate) which exercises the same
//! per-cube computation pattern as the full table-driven algorithm.

use super::dataset::ScalarGrid;

/// A triangle in grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    pub v: [[f32; 3]; 3],
}

/// Cube edges as corner-index pairs (canonical corner order of
/// [`ScalarGrid::corners`]).
const EDGES: [(usize, usize); 12] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 0),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 4),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// Corner offsets in (x, y, z).
const CORNER_OFS: [[f32; 3]; 8] = [
    [0.0, 0.0, 0.0],
    [1.0, 0.0, 0.0],
    [1.0, 1.0, 0.0],
    [0.0, 1.0, 0.0],
    [0.0, 0.0, 1.0],
    [1.0, 0.0, 1.0],
    [1.0, 1.0, 1.0],
    [0.0, 1.0, 1.0],
];

/// Does the isosurface pass through a cube with these corner values?
#[inline]
pub fn crosses(corners: &[f32; 8], isovalue: f32) -> bool {
    let mut above = false;
    let mut below = false;
    for v in corners {
        if *v > isovalue {
            above = true;
        } else {
            below = true;
        }
        if above && below {
            return true;
        }
    }
    false
}

/// The crossing test over a cube range (the Decomp data-node loop).
/// Returns the crossing cube ids. Walks the grid with incremental
/// indexing — eight loads and compares per cube, the way a production
/// data-node filter would scan its slab.
pub fn crossing_cubes(grid: &ScalarGrid, range: std::ops::Range<usize>, isovalue: f32) -> Vec<u32> {
    let (nx, ny) = (grid.nx, grid.ny);
    let cx_n = nx - 1;
    let cy_n = ny - 1;
    let data = &grid.data[..];
    // Offsets of the 8 corners relative to the cube's (x, y, z) point.
    let ofs = [
        0,
        1,
        nx + 1,
        nx,
        nx * ny,
        nx * ny + 1,
        nx * ny + nx + 1,
        nx * ny + nx,
    ];
    let mut out = Vec::new();
    for c in range {
        let cx = c % cx_n;
        let rest = c / cx_n;
        let cy = rest % cy_n;
        let cz = rest / cy_n;
        let base = (cz * ny + cy) * nx + cx;
        let mut above = false;
        let mut below = false;
        for o in ofs {
            if data[base + o] > isovalue {
                above = true;
            } else {
                below = true;
            }
        }
        if above && below {
            out.push(c as u32);
        }
    }
    out
}

/// Extract triangles for one crossing cube given its cell coordinates.
pub fn extract_cube(
    corners: &[f32; 8],
    cell: (usize, usize, usize),
    isovalue: f32,
    out: &mut Vec<Triangle>,
) {
    // Interpolated vertex on every sign-changing edge.
    let mut verts: [[f32; 3]; 12] = [[0.0; 3]; 12];
    let mut n = 0usize;
    for (a, b) in EDGES {
        let (va, vb) = (corners[a], corners[b]);
        if (va > isovalue) != (vb > isovalue) {
            let t = if (vb - va).abs() > 1e-12 {
                ((isovalue - va) / (vb - va)).clamp(0.0, 1.0)
            } else {
                0.5
            };
            let (oa, ob) = (CORNER_OFS[a], CORNER_OFS[b]);
            verts[n] = [
                cell.0 as f32 + oa[0] + t * (ob[0] - oa[0]),
                cell.1 as f32 + oa[1] + t * (ob[1] - oa[1]),
                cell.2 as f32 + oa[2] + t * (ob[2] - oa[2]),
            ];
            n += 1;
        }
    }
    // Fan-triangulate the edge vertices.
    for k in 2..n {
        out.push(Triangle {
            v: [verts[0], verts[k - 1], verts[k]],
        });
    }
}

/// Extract triangles for a list of crossing cubes.
pub fn extract_triangles(grid: &ScalarGrid, cubes: &[u32], isovalue: f32) -> Vec<Triangle> {
    let mut out = Vec::new();
    for &c in cubes {
        let corners = grid.corners(c as usize);
        extract_cube(&corners, grid.cube_coords(c as usize), isovalue, &mut out);
    }
    out
}

/// Extract triangles from serialized crossing-cube records (id + corners),
/// as a downstream filter does after a filtering cut.
pub fn extract_from_records(
    grid_dims: (usize, usize, usize),
    records: &[(u32, [f32; 8])],
    isovalue: f32,
) -> Vec<Triangle> {
    let (nx, ny, _) = grid_dims;
    let cx_n = nx - 1;
    let cy_n = ny - 1;
    let mut out = Vec::new();
    for (c, corners) in records {
        let c = *c as usize;
        let cell = (c % cx_n, (c / cx_n) % cy_n, c / (cx_n * cy_n));
        extract_cube(corners, cell, isovalue, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_detection() {
        assert!(crosses(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0], 0.5));
        assert!(!crosses(&[0.0; 8], 0.5));
        assert!(!crosses(&[1.0; 8], 0.5));
        // boundary: values equal to isovalue count as "below"
        assert!(!crosses(&[0.5; 8], 0.5));
    }

    #[test]
    fn simple_plane_cut_yields_triangles() {
        // Corners below on z=0 face, above on z=1 face → 4 edge crossings →
        // 2 triangles.
        let corners = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let mut tris = Vec::new();
        extract_cube(&corners, (0, 0, 0), 0.5, &mut tris);
        assert_eq!(tris.len(), 2);
        // All vertices at z = 0.5 (linear interpolation).
        for t in &tris {
            for v in &t.v {
                assert!((v[2] - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn non_crossing_cube_yields_nothing() {
        let mut tris = Vec::new();
        extract_cube(&[0.0; 8], (0, 0, 0), 0.5, &mut tris);
        assert!(tris.is_empty());
    }

    #[test]
    fn extract_matches_records_path() {
        let g = ScalarGrid::synthetic(12, 12, 12, 5);
        let iso = 0.6;
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        assert!(!cubes.is_empty());
        let direct = extract_triangles(&g, &cubes, iso);
        let records: Vec<(u32, [f32; 8])> =
            cubes.iter().map(|&c| (c, g.corners(c as usize))).collect();
        let via_records = extract_from_records((g.nx, g.ny, g.nz), &records, iso);
        assert_eq!(direct.len(), via_records.len());
        for (a, b) in direct.iter().zip(&via_records) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn vertices_lie_within_cell_bounds() {
        let g = ScalarGrid::synthetic(10, 10, 10, 9);
        let iso = 0.55;
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        let tris = extract_triangles(&g, &cubes, iso);
        assert!(!tris.is_empty());
        for t in &tris {
            for v in &t.v {
                assert!(v.iter().all(|x| x.is_finite()));
                assert!(v[0] >= 0.0 && v[0] <= g.nx as f32);
            }
        }
    }

    #[test]
    fn selectivity_is_a_fraction() {
        let g = ScalarGrid::synthetic(24, 24, 24, 11);
        let cubes = crossing_cubes(&g, 0..g.cubes(), 0.6);
        let sel = cubes.len() as f64 / g.cubes() as f64;
        assert!(sel > 0.001 && sel < 0.8, "selectivity {sel}");
    }
}
