//! Isosurface pipeline variants (zbuf and active-pixels × Default/Decomp).
//!
//! - **Default** — data nodes only read and transmit: every cube's corner
//!   values cross the first link; compute nodes run the crossing test,
//!   extraction, transformation and rasterization.
//! - **Decomp** — the compiler-chosen decomposition: the crossing-test loop
//!   runs on the data nodes, and only crossing cubes (id + corners) cross
//!   the link — less communication *and* less downstream work.
//!
//! Accumulation (z-buffer or active pixels) happens at the compute stage;
//! the merged result reaches the view node once, at finalize.

use super::dataset::ScalarGrid;
use super::march::{crossing_cubes, extract_from_records, Triangle};
use super::render::{
    rasterize_apix, rasterize_zbuf, transform_project, ActivePixels, ViewParams, ZBuffer,
};
use crate::profile::{timed, timed_scan, AppVariant, PacketProfile};
use std::ops::Range;

/// Which accumulation structure the variant renders into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Renderer {
    ZBuffer,
    ActivePixels,
}

/// Which decomposition the variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsoVersion {
    Default,
    Decomp,
}

/// A runnable isosurface pipeline.
pub struct IsoPipeline {
    grid: ScalarGrid,
    packets: Vec<Range<usize>>,
    isovalue: f32,
    view: ViewParams,
    renderer: Renderer,
    version: IsoVersion,
    zbuf: ZBuffer,
    apix: ActivePixels,
    label: String,
}

/// Serialized crossing-cube record: id + 8 corners.
const RECORD_BYTES: f64 = 4.0 + 8.0 * 4.0;

impl IsoPipeline {
    pub fn new(
        grid: ScalarGrid,
        isovalue: f32,
        n_packets: usize,
        screen: usize,
        renderer: Renderer,
        version: IsoVersion,
        label: impl Into<String>,
    ) -> IsoPipeline {
        let packets = grid.cube_packets(n_packets);
        let extent = grid.nx.max(grid.ny).max(grid.nz) as f32;
        let view = ViewParams::looking_at(extent, 0.5, 0.35, screen);
        IsoPipeline {
            grid,
            packets,
            isovalue,
            view,
            renderer,
            version,
            zbuf: ZBuffer::new(screen),
            apix: ActivePixels::new(),
            label: label.into(),
        }
    }

    /// Average crossing-test selectivity (used to parameterize the
    /// compiler's cost model in examples/benches).
    pub fn measure_selectivity(&self) -> f64 {
        let total = self.grid.cubes();
        let crossing = crossing_cubes(&self.grid, 0..total, self.isovalue).len();
        crossing as f64 / total as f64
    }

    /// Point-index range of the grid slab covering a cube range (the rows
    /// of z-planes those cubes' corners live in).
    fn slab_points(&self, range: &Range<usize>) -> Range<usize> {
        let plane = (self.grid.nx - 1) * (self.grid.ny - 1);
        let z0 = range.start / plane;
        let z1 = (range.end.saturating_sub(1)) / plane;
        let pts = self.grid.nx * self.grid.ny;
        let lo = z0 * pts;
        let hi = ((z1 + 2) * pts).min(self.grid.data.len());
        lo..hi
    }

    fn render(&mut self, records: &[(u32, [f32; 8])]) -> usize {
        let tris: Vec<Triangle> = extract_from_records(
            (self.grid.nx, self.grid.ny, self.grid.nz),
            records,
            self.isovalue,
        );
        let st = transform_project(&tris, &self.view);
        match self.renderer {
            Renderer::ZBuffer => rasterize_zbuf(&st, &mut self.zbuf),
            Renderer::ActivePixels => rasterize_apix(&st, self.view.screen, &mut self.apix),
        }
        tris.len()
    }
}

impl AppVariant for IsoPipeline {
    fn name(&self) -> String {
        format!(
            "{}/{}",
            self.label,
            match self.version {
                IsoVersion::Default => "Default",
                IsoVersion::Decomp => "Decomp",
            }
        )
    }

    fn packets(&self) -> usize {
        self.packets.len()
    }

    fn run_packet(&mut self, p: usize) -> PacketProfile {
        let range = self.packets[p].clone();
        match self.version {
            IsoVersion::Default => {
                // Data node: read + ship the raw grid slab covering this
                // cube range (unique points — corners are shared by eight
                // cubes, so the slab is ~8× smaller than per-cube records).
                let (slab_bytes, t0) = timed_scan(|| {
                    let slab: Vec<f32> = self.grid.data[self.slab_points(&range)].to_vec();
                    slab.len() * 4
                });
                let bytes0 = slab_bytes as f64;
                let read0 = slab_bytes as f64;
                // Compute node: crossing test + corner gather (scan-class)
                // then extraction + render (FP-class) — reading the same
                // values the slab carries.
                let (records, t1a) = timed_scan(|| {
                    let ids = crossing_cubes(&self.grid, range.clone(), self.isovalue);
                    ids.into_iter()
                        .map(|c| (c, self.grid.corners(c as usize)))
                        .collect::<Vec<_>>()
                });
                let (_, t1b) = timed(|| self.render(&records));
                PacketProfile::new([t0, t1a + t1b, 0.0], [bytes0, 0.0]).with_read(read0)
            }
            IsoVersion::Decomp => {
                // Data node: crossing test + serialize only crossing cubes.
                let (records, t0) = timed_scan(|| {
                    let ids = crossing_cubes(&self.grid, range.clone(), self.isovalue);
                    ids.into_iter()
                        .map(|c| (c, self.grid.corners(c as usize)))
                        .collect::<Vec<_>>()
                });
                let bytes0 = records.len() as f64 * RECORD_BYTES;
                // Both versions scan the whole slab from storage.
                let read0 = (self.slab_points(&range).len() * 4) as f64;
                // Compute node: extraction + render only.
                let (_, t1) = timed(|| self.render(&records));
                PacketProfile::new([t0, t1, 0.0], [bytes0, 0.0]).with_read(read0)
            }
        }
    }

    fn finalize_bytes(&self) -> [f64; 2] {
        let result = match self.renderer {
            Renderer::ZBuffer => self.zbuf.wire_bytes() as f64,
            Renderer::ActivePixels => self.apix.wire_bytes() as f64,
        };
        [0.0, result]
    }

    fn result_digest(&self) -> u64 {
        match self.renderer {
            Renderer::ZBuffer => self.zbuf.digest(),
            // Densify so zbuf and apix digests are comparable too.
            Renderer::ActivePixels => self.apix.to_zbuffer(self.view.screen).digest(),
        }
    }

    fn reset(&mut self) {
        self.zbuf = ZBuffer::new(self.view.screen);
        self.apix = ActivePixels::new();
    }
}

/// The paper's two isosurface datasets, scaled to laptop runtimes: a
/// "small" and a "large" synthetic grid (see DESIGN.md for the
/// substitution).
pub fn small_grid() -> ScalarGrid {
    ScalarGrid::synthetic(40, 40, 40, 20030517)
}

pub fn large_grid() -> ScalarGrid {
    ScalarGrid::synthetic(64, 64, 64, 20030517)
}

/// Standard isovalue used across experiments.
pub const ISOVALUE: f32 = 0.85;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::run_all;

    fn mk(renderer: Renderer, version: IsoVersion) -> IsoPipeline {
        IsoPipeline::new(
            ScalarGrid::synthetic(20, 20, 20, 99),
            0.8,
            8,
            64,
            renderer,
            version,
            "iso-test",
        )
    }

    #[test]
    fn default_and_decomp_agree_zbuf() {
        let (_, d1) = run_all(&mut mk(Renderer::ZBuffer, IsoVersion::Default));
        let (_, d2) = run_all(&mut mk(Renderer::ZBuffer, IsoVersion::Decomp));
        assert_eq!(d1, d2);
    }

    #[test]
    fn default_and_decomp_agree_apix() {
        let (_, d1) = run_all(&mut mk(Renderer::ActivePixels, IsoVersion::Default));
        let (_, d2) = run_all(&mut mk(Renderer::ActivePixels, IsoVersion::Decomp));
        assert_eq!(d1, d2);
    }

    #[test]
    fn zbuf_and_apix_render_identically() {
        let (_, dz) = run_all(&mut mk(Renderer::ZBuffer, IsoVersion::Decomp));
        let (_, da) = run_all(&mut mk(Renderer::ActivePixels, IsoVersion::Decomp));
        assert_eq!(dz, da);
    }

    #[test]
    fn decomp_ships_fewer_bytes() {
        let (pd, _) = run_all(&mut mk(Renderer::ZBuffer, IsoVersion::Default));
        let (pc, _) = run_all(&mut mk(Renderer::ZBuffer, IsoVersion::Decomp));
        let bytes = |ps: &[PacketProfile]| ps.iter().map(|p| p.bytes[0]).sum::<f64>();
        assert!(
            bytes(&pc) < bytes(&pd) * 0.8,
            "decomp {} vs default {}",
            bytes(&pc),
            bytes(&pd)
        );
    }

    #[test]
    fn apix_finalize_smaller_than_zbuf() {
        let mut z = mk(Renderer::ZBuffer, IsoVersion::Decomp);
        let mut a = mk(Renderer::ActivePixels, IsoVersion::Decomp);
        run_all(&mut z);
        run_all(&mut a);
        assert!(a.finalize_bytes()[1] < z.finalize_bytes()[1]);
    }

    #[test]
    fn selectivity_sane() {
        let p = mk(Renderer::ZBuffer, IsoVersion::Decomp);
        let s = p.measure_selectivity();
        assert!(s > 0.0 && s < 1.0, "selectivity {s}");
    }

    #[test]
    fn packet_profiles_have_work() {
        let (ps, _) = run_all(&mut mk(Renderer::ZBuffer, IsoVersion::Default));
        assert_eq!(ps.len(), 8);
        assert!(ps.iter().all(|p| p.bytes[0] > 0.0));
        assert!(ps.iter().map(|p| p.seconds[1]).sum::<f64>() > 0.0);
    }
}
