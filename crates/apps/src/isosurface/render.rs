//! View transformation, projection, and the two accumulation structures:
//! the dense **z-buffer** and the sparse **active-pixel** set (Section 6.1).
//!
//! Both store, per screen pixel, the color at the least depth; their merge
//! operations are associative and commutative (min by depth with a
//! deterministic tie-break), which is what lets packets and transparent
//! copies accumulate independently.

use super::march::Triangle;

/// Viewing parameters: a rotation (view angle) plus a screen.
#[derive(Debug, Clone, Copy)]
pub struct ViewParams {
    /// Row-major 3×3 rotation from grid coordinates to view coordinates.
    pub rot: [[f32; 3]; 3],
    /// Screen resolution (square).
    pub screen: usize,
    /// Scale from view coordinates to pixels.
    pub scale: f32,
    /// Translation applied after rotation (centers the object).
    pub offset: [f32; 3],
}

impl ViewParams {
    /// A view rotated by `yaw` and `pitch` (radians) around the grid
    /// center, scaled to fit an object of `extent` grid units on screen.
    pub fn looking_at(extent: f32, yaw: f32, pitch: f32, screen: usize) -> ViewParams {
        let (cy, sy) = (yaw.cos(), yaw.sin());
        let (cp, sp) = (pitch.cos(), pitch.sin());
        // R = Rx(pitch) · Ry(yaw)
        let rot = [
            [cy, 0.0, sy],
            [sy * sp, cp, -cy * sp],
            [-sy * cp, sp, cy * cp],
        ];
        let scale = screen as f32 / (extent * 1.8);
        let c = extent / 2.0;
        ViewParams {
            rot,
            screen,
            scale,
            offset: [-c, -c, -c],
        }
    }

    /// Transform a grid-space point to (pixel x, pixel y, depth).
    #[inline]
    pub fn project(&self, p: [f32; 3]) -> [f32; 3] {
        let q = [
            p[0] + self.offset[0],
            p[1] + self.offset[1],
            p[2] + self.offset[2],
        ];
        let r = &self.rot;
        let vx = r[0][0] * q[0] + r[0][1] * q[1] + r[0][2] * q[2];
        let vy = r[1][0] * q[0] + r[1][1] * q[1] + r[1][2] * q[2];
        let vz = r[2][0] * q[0] + r[2][1] * q[1] + r[2][2] * q[2];
        let half = self.screen as f32 / 2.0;
        [vx * self.scale + half, vy * self.scale + half, vz]
    }
}

/// A screen-space triangle with a flat shade.
#[derive(Debug, Clone, Copy)]
pub struct ScreenTri {
    pub v: [[f32; 3]; 3],
    pub shade: f32,
}

/// Transform, project and clip triangles; compute a flat shade from the
/// grid-space normal.
pub fn transform_project(tris: &[Triangle], view: &ViewParams) -> Vec<ScreenTri> {
    let mut out = Vec::with_capacity(tris.len());
    let s = view.screen as f32;
    for t in tris {
        // Flat shade from the unnormalized normal's z component.
        let e1 = [
            t.v[1][0] - t.v[0][0],
            t.v[1][1] - t.v[0][1],
            t.v[1][2] - t.v[0][2],
        ];
        let e2 = [
            t.v[2][0] - t.v[0][0],
            t.v[2][1] - t.v[0][1],
            t.v[2][2] - t.v[0][2],
        ];
        let nx = e1[1] * e2[2] - e1[2] * e2[1];
        let ny = e1[2] * e2[0] - e1[0] * e2[2];
        let nz = e1[0] * e2[1] - e1[1] * e2[0];
        let len = (nx * nx + ny * ny + nz * nz).sqrt();
        let shade = if len > 1e-12 {
            0.2 + 0.8 * (nz / len).abs()
        } else {
            0.2
        };

        let p = [
            view.project(t.v[0]),
            view.project(t.v[1]),
            view.project(t.v[2]),
        ];
        // Clip: reject triangles entirely off screen.
        let minx = p.iter().map(|q| q[0]).fold(f32::INFINITY, f32::min);
        let maxx = p.iter().map(|q| q[0]).fold(f32::NEG_INFINITY, f32::max);
        let miny = p.iter().map(|q| q[1]).fold(f32::INFINITY, f32::min);
        let maxy = p.iter().map(|q| q[1]).fold(f32::NEG_INFINITY, f32::max);
        if maxx < 0.0 || maxy < 0.0 || minx >= s || miny >= s {
            continue;
        }
        out.push(ScreenTri { v: p, shade });
    }
    out
}

/// Dense z-buffer: per pixel, depth and color; the reduction variable of
/// the zbuf algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ZBuffer {
    pub screen: usize,
    pub depth: Vec<f32>,
    pub color: Vec<f32>,
}

impl ZBuffer {
    pub fn new(screen: usize) -> ZBuffer {
        ZBuffer {
            screen,
            depth: vec![f32::INFINITY; screen * screen],
            color: vec![0.0; screen * screen],
        }
    }

    #[inline]
    fn put(&mut self, x: usize, y: usize, depth: f32, color: f32) {
        let i = y * self.screen + x;
        // Least depth wins; on exact ties prefer the larger color for a
        // deterministic, order-independent merge.
        if depth < self.depth[i] || (depth == self.depth[i] && color > self.color[i]) {
            self.depth[i] = depth;
            self.color[i] = color;
        }
    }

    /// Accumulate another z-buffer (associative + commutative merge).
    pub fn reduce(&mut self, other: &ZBuffer) {
        assert_eq!(self.screen, other.screen);
        for i in 0..self.depth.len() {
            let (d, c) = (other.depth[i], other.color[i]);
            if d < self.depth[i] || (d == self.depth[i] && c > self.color[i]) {
                self.depth[i] = d;
                self.color[i] = c;
            }
        }
    }

    /// Bytes a full z-buffer occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.depth.len() * 8
    }

    pub fn digest(&self) -> u64 {
        crate::profile::digest_f32s(self.depth.iter().chain(self.color.iter()).copied())
    }
}

/// Sparse active-pixel set: only touched pixels are stored (Section 6.1:
/// "a sparse representation of the dense z-buffer, \[which\] avoids
/// allocating, initializing, or communicating a full z-buffer").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivePixels {
    /// pixel index → (depth, color).
    pixels: std::collections::HashMap<u32, (f32, f32)>,
}

impl ActivePixels {
    pub fn new() -> ActivePixels {
        ActivePixels::default()
    }

    #[inline]
    fn put(&mut self, idx: u32, depth: f32, color: f32) {
        let e = self.pixels.entry(idx).or_insert((f32::INFINITY, 0.0));
        if depth < e.0 || (depth == e.0 && color > e.1) {
            *e = (depth, color);
        }
    }

    /// Merge another active-pixel set (associative + commutative).
    pub fn reduce(&mut self, other: &ActivePixels) {
        for (idx, (d, c)) in &other.pixels {
            self.put(*idx, *d, *c);
        }
    }

    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Entries sorted by pixel index (deterministic view).
    pub fn sorted(&self) -> Vec<(u32, f32, f32)> {
        let mut v: Vec<(u32, f32, f32)> =
            self.pixels.iter().map(|(i, (d, c))| (*i, *d, *c)).collect();
        v.sort_by_key(|e| e.0);
        v
    }

    /// Wire size: 16 bytes per active pixel.
    pub fn wire_bytes(&self) -> usize {
        self.pixels.len() * 16
    }

    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.pixels.len() * 12);
        for (i, d, c) in self.sorted() {
            bytes.extend_from_slice(&i.to_le_bytes());
            bytes.extend_from_slice(&d.to_bits().to_le_bytes());
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        crate::profile::fnv1a(&bytes)
    }

    /// Densify into a z-buffer (what the view node displays).
    pub fn to_zbuffer(&self, screen: usize) -> ZBuffer {
        let mut z = ZBuffer::new(screen);
        for (idx, (d, c)) in &self.pixels {
            let (x, y) = ((*idx as usize) % screen, (*idx as usize) / screen);
            z.put(x, y, *d, *c);
        }
        z
    }
}

// ---------------------------------------------------------------------------
// checkpointing
//
// Both accumulation structures are the reduction state a rendering stage
// carries across packets, so they implement the runtime's `Checkpoint`
// trait: fixed little-endian byte codecs (f32 bits, not values, so the
// round trip is exact for every payload including NaN and ±inf), restore
// by merge — the same associative `reduce` the transparent copies use.

impl cgp_datacutter::Checkpoint for ZBuffer {
    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.depth.len() * 8);
        out.extend_from_slice(&(self.screen as u64).to_le_bytes());
        for d in &self.depth {
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        for c in &self.color {
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        out
    }

    fn restore(&mut self, snapshot: &[u8]) -> cgp_datacutter::FilterResult<()> {
        let bad = |msg: &str| cgp_datacutter::FilterError::malformed("zbuffer", msg.to_string());
        let screen = u64::from_le_bytes(
            snapshot
                .get(..8)
                .ok_or_else(|| bad("snapshot shorter than its header"))?
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        let n = screen * screen;
        let body = &snapshot[8..];
        if body.len() != n * 8 {
            return Err(bad(&format!(
                "snapshot body is {} bytes, expected {} for a {screen}x{screen} screen",
                body.len(),
                n * 8
            )));
        }
        let mut other = ZBuffer::new(screen);
        for i in 0..n {
            other.depth[i] = f32::from_bits(u32::from_le_bytes(
                body[i * 4..i * 4 + 4].try_into().expect("4 bytes"),
            ));
            other.color[i] = f32::from_bits(u32::from_le_bytes(
                body[n * 4 + i * 4..n * 4 + i * 4 + 4]
                    .try_into()
                    .expect("4 bytes"),
            ));
        }
        if self.screen != screen {
            return Err(bad(&format!(
                "snapshot screen {screen} does not match live screen {}",
                self.screen
            )));
        }
        self.reduce(&other);
        Ok(())
    }
}

impl cgp_datacutter::Checkpoint for ActivePixels {
    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pixels.len() * 12);
        out.extend_from_slice(&(self.pixels.len() as u64).to_le_bytes());
        for (i, d, c) in self.sorted() {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&d.to_bits().to_le_bytes());
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        out
    }

    fn restore(&mut self, snapshot: &[u8]) -> cgp_datacutter::FilterResult<()> {
        let bad =
            |msg: &str| cgp_datacutter::FilterError::malformed("active-pixels", msg.to_string());
        let n = u64::from_le_bytes(
            snapshot
                .get(..8)
                .ok_or_else(|| bad("snapshot shorter than its header"))?
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        let body = &snapshot[8..];
        if body.len() != n * 12 {
            return Err(bad(&format!(
                "snapshot body is {} bytes, expected {} for {n} pixels",
                body.len(),
                n * 12
            )));
        }
        for e in body.chunks_exact(12) {
            let idx = u32::from_le_bytes(e[..4].try_into().expect("4 bytes"));
            let d = f32::from_bits(u32::from_le_bytes(e[4..8].try_into().expect("4 bytes")));
            let c = f32::from_bits(u32::from_le_bytes(e[8..12].try_into().expect("4 bytes")));
            self.put(idx, d, c);
        }
        Ok(())
    }
}

/// Rasterize screen triangles into a dense z-buffer.
pub fn rasterize_zbuf(tris: &[ScreenTri], zbuf: &mut ZBuffer) {
    let screen = zbuf.screen;
    rasterize_with(tris, screen, |x, y, d, c| zbuf.put(x, y, d, c));
}

/// Rasterize screen triangles into an active-pixel set.
pub fn rasterize_apix(tris: &[ScreenTri], screen: usize, apix: &mut ActivePixels) {
    rasterize_with(tris, screen, |x, y, d, c| {
        apix.put((y * screen + x) as u32, d, c)
    });
}

/// Barycentric scanline rasterization with per-pixel depth interpolation.
fn rasterize_with(tris: &[ScreenTri], screen: usize, mut put: impl FnMut(usize, usize, f32, f32)) {
    let s = screen as f32;
    for t in tris {
        let (a, b, c) = (t.v[0], t.v[1], t.v[2]);
        let minx = a[0].min(b[0]).min(c[0]).max(0.0).floor() as usize;
        let maxx = (a[0].max(b[0]).max(c[0]).min(s - 1.0)).ceil() as usize;
        let miny = a[1].min(b[1]).min(c[1]).max(0.0).floor() as usize;
        let maxy = (a[1].max(b[1]).max(c[1]).min(s - 1.0)).ceil() as usize;
        let denom = (b[1] - c[1]) * (a[0] - c[0]) + (c[0] - b[0]) * (a[1] - c[1]);
        if denom.abs() < 1e-12 {
            continue; // degenerate
        }
        for y in miny..=maxy.min(screen - 1) {
            for x in minx..=maxx.min(screen - 1) {
                let px = x as f32 + 0.5;
                let py = y as f32 + 0.5;
                let w0 = ((b[1] - c[1]) * (px - c[0]) + (c[0] - b[0]) * (py - c[1])) / denom;
                let w1 = ((c[1] - a[1]) * (px - c[0]) + (a[0] - c[0]) * (py - c[1])) / denom;
                let w2 = 1.0 - w0 - w1;
                if w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0 {
                    let depth = w0 * a[2] + w1 * b[2] + w2 * c[2];
                    put(x, y, depth, t.shade);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isosurface::dataset::ScalarGrid;
    use crate::isosurface::march::{crossing_cubes, extract_triangles};

    fn scene() -> (Vec<ScreenTri>, usize) {
        let g = ScalarGrid::synthetic(16, 16, 16, 3);
        let iso = 0.6;
        let cubes = crossing_cubes(&g, 0..g.cubes(), iso);
        let tris = extract_triangles(&g, &cubes, iso);
        let view = ViewParams::looking_at(16.0, 0.4, 0.3, 64);
        (transform_project(&tris, &view), 64)
    }

    #[test]
    fn projection_lands_on_screen() {
        let (st, screen) = scene();
        assert!(!st.is_empty());
        let on_screen = st
            .iter()
            .flat_map(|t| t.v.iter())
            .filter(|v| v[0] >= 0.0 && v[0] < screen as f32)
            .count();
        assert!(on_screen > 0);
    }

    #[test]
    fn zbuf_and_apix_agree() {
        let (st, screen) = scene();
        let mut z = ZBuffer::new(screen);
        rasterize_zbuf(&st, &mut z);
        let mut a = ActivePixels::new();
        rasterize_apix(&st, screen, &mut a);
        assert!(!a.is_empty());
        assert_eq!(a.to_zbuffer(screen).digest(), z.digest());
        // Sparse representation touches fewer entries than the dense one.
        assert!(a.len() < screen * screen);
    }

    #[test]
    fn zbuffer_merge_is_commutative() {
        let (st, screen) = scene();
        let (half1, half2) = st.split_at(st.len() / 2);
        let mut za = ZBuffer::new(screen);
        rasterize_zbuf(half1, &mut za);
        let mut zb = ZBuffer::new(screen);
        rasterize_zbuf(half2, &mut zb);

        let mut ab = za.clone();
        ab.reduce(&zb);
        let mut ba = zb.clone();
        ba.reduce(&za);
        assert_eq!(ab.digest(), ba.digest());

        // And equals rasterizing everything at once.
        let mut all = ZBuffer::new(screen);
        rasterize_zbuf(&st, &mut all);
        assert_eq!(ab.digest(), all.digest());
    }

    #[test]
    fn apix_merge_is_commutative() {
        let (st, screen) = scene();
        let (h1, h2) = st.split_at(st.len() / 3);
        let mut a = ActivePixels::new();
        rasterize_apix(h1, screen, &mut a);
        let mut b = ActivePixels::new();
        rasterize_apix(h2, screen, &mut b);
        let mut ab = a.clone();
        ab.reduce(&b);
        let mut ba = b.clone();
        ba.reduce(&a);
        assert_eq!(ab.digest(), ba.digest());
    }

    #[test]
    fn apix_wire_bytes_smaller_than_zbuf() {
        let (st, screen) = scene();
        let mut z = ZBuffer::new(screen);
        rasterize_zbuf(&st, &mut z);
        let mut a = ActivePixels::new();
        rasterize_apix(&st, screen, &mut a);
        assert!(a.wire_bytes() < z.wire_bytes());
    }

    #[test]
    fn empty_rasterization_is_identity() {
        let z0 = ZBuffer::new(32);
        let mut z1 = ZBuffer::new(32);
        rasterize_zbuf(&[], &mut z1);
        assert_eq!(z0, z1);
    }

    #[test]
    fn zbuffer_checkpoint_round_trips_exactly() {
        use cgp_datacutter::Checkpoint;
        let (st, screen) = scene();
        let mut z = ZBuffer::new(screen);
        rasterize_zbuf(&st, &mut z);
        let snap = z.snapshot();
        let mut fresh = ZBuffer::new(screen);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh, z, "restore into a zero buffer is exact");
        // Restore is a merge: restoring on top of partial progress is the
        // same associative reduce the transparent copies use.
        let mut partial = ZBuffer::new(screen);
        rasterize_zbuf(&st[..st.len() / 2], &mut partial);
        partial.restore(&snap).unwrap();
        assert_eq!(partial.digest(), z.digest());
        // Corruption fails loudly.
        assert!(fresh.restore(&snap[..snap.len() - 1]).is_err());
        assert!(ZBuffer::new(screen / 2).restore(&snap).is_err());
    }

    #[test]
    fn active_pixels_checkpoint_round_trips_exactly() {
        use cgp_datacutter::Checkpoint;
        let (st, screen) = scene();
        let mut a = ActivePixels::new();
        rasterize_apix(&st, screen, &mut a);
        let snap = a.snapshot();
        let mut fresh = ActivePixels::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.sorted(), a.sorted());
        let mut partial = ActivePixels::new();
        rasterize_apix(&st[..st.len() / 3], screen, &mut partial);
        partial.restore(&snap).unwrap();
        assert_eq!(partial.digest(), a.digest());
        assert!(fresh.restore(&snap[..snap.len() - 1]).is_err());
        assert!(fresh.restore(&[1, 2, 3]).is_err());
    }
}
