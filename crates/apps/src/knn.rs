//! k-nearest-neighbor search (Section 6.4).
//!
//! The paper's dataset is 4.5 million 3-D points (108 MB → 24 bytes per
//! point), queried with k = 3 and k = 200; we generate a deterministic
//! pseudo-random point set of `f64` triples (same 24 bytes/point) scaled to
//! laptop runtimes. The dataset is memory-resident at the data nodes, as a
//! 108 MB working set would have been after its first scan.
//!
//! Variants:
//!
//! - **Default** — data nodes ship every point; compute nodes calculate
//!   distances and maintain the k-nearest set.
//! - **Decomp-Comp / Decomp-Manual** — the decomposed versions compute
//!   distances *at the data nodes* and forward only each packet's k best
//!   candidates (a per-packet partial reduction), slashing communication.
//!   The two differ only in how the received packet is iterated
//!   (compiler-generated generic unpacking vs. hand-written direct reads) —
//!   the paper found no significant difference, and the small constant
//!   overhead here reproduces that.

use crate::profile::{fnv1a, timed, AppVariant, PacketProfile};
use cgp_obs::SmallRng;

/// Deterministic 3-D point cloud (24 bytes per point, like the paper's).
pub fn generate_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| [rng.gen_f64(), rng.gen_f64(), rng.gen_f64()])
        .collect()
}

/// A candidate: squared distance plus point index (index breaks ties
/// deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    pub dist2: f64,
    pub index: u32,
}

impl Candidate {
    #[inline]
    fn key(&self) -> (f64, u32) {
        (self.dist2, self.index)
    }
}

/// The k-nearest set — the reduction variable of this application. A
/// bounded binary max-heap: `push` is `O(log k)`, so per-packet partial
/// selections stay cheap even at k = 200. The merge (`reduce`) is
/// associative and commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct KNearest {
    pub k: usize,
    /// Max-heap by (dist2, index): `heap[0]` is the current worst kept.
    heap: Vec<Candidate>,
}

impl KNearest {
    pub fn new(k: usize) -> KNearest {
        assert!(k >= 1);
        KNearest {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consider one candidate.
    #[inline]
    pub fn push(&mut self, c: Candidate) {
        if self.heap.len() < self.k {
            self.heap.push(c);
            self.sift_up(self.heap.len() - 1);
        } else if c.key() < self.heap[0].key() {
            self.heap[0] = c;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() > self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() && self.heap[l].key() > self.heap[largest].key() {
                largest = l;
            }
            if r < self.heap.len() && self.heap[r].key() > self.heap[largest].key() {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// Merge another k-nearest set (the `reduce` operation).
    pub fn reduce(&mut self, other: &KNearest) {
        for c in &other.heap {
            self.push(*c);
        }
    }

    /// Candidates sorted ascending by (dist2, index).
    pub fn sorted(&self) -> Vec<Candidate> {
        let mut v = self.heap.clone();
        v.sort_by(|a, b| a.key().partial_cmp(&b.key()).expect("no NaN distances"));
        v
    }

    /// Wire size: 12 bytes per candidate (f64 distance + u32 index).
    pub fn wire_bytes(&self) -> usize {
        self.heap.len() * 12
    }

    pub fn digest(&self) -> u64 {
        let sorted = self.sorted();
        let mut bytes = Vec::with_capacity(sorted.len() * 12);
        for c in &sorted {
            bytes.extend_from_slice(&c.dist2.to_bits().to_le_bytes());
            bytes.extend_from_slice(&c.index.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

#[inline]
fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// knn pipeline version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnVersion {
    Default,
    DecompComp,
    DecompManual,
}

/// A runnable knn pipeline.
pub struct KnnPipeline {
    points: Vec<[f64; 3]>,
    query: [f64; 3],
    k: usize,
    n_packets: usize,
    version: KnnVersion,
    result: KNearest,
    label: String,
}

impl KnnPipeline {
    pub fn new(
        points: Vec<[f64; 3]>,
        query: [f64; 3],
        k: usize,
        n_packets: usize,
        version: KnnVersion,
        label: impl Into<String>,
    ) -> KnnPipeline {
        let result = KNearest::new(k);
        KnnPipeline {
            points,
            query,
            k,
            n_packets: n_packets.max(1),
            version,
            result,
            label: label.into(),
        }
    }

    /// Final k-nearest set (after all packets ran).
    pub fn result(&self) -> &KNearest {
        &self.result
    }

    fn packet_range(&self, p: usize) -> std::ops::Range<usize> {
        let n = self.points.len();
        let np = self.n_packets;
        let base = n / np;
        let rem = n % np;
        let start = p * base + p.min(rem);
        let len = base + usize::from(p < rem);
        start..start + len
    }
}

impl AppVariant for KnnPipeline {
    fn name(&self) -> String {
        let v = match self.version {
            KnnVersion::Default => "Default",
            KnnVersion::DecompComp => "Decomp-Comp",
            KnnVersion::DecompManual => "Decomp-Manual",
        };
        format!("{}/{v}", self.label)
    }

    fn packets(&self) -> usize {
        self.n_packets
    }

    fn run_packet(&mut self, p: usize) -> PacketProfile {
        let range = self.packet_range(p);
        let q = self.query;
        match self.version {
            KnnVersion::Default => {
                // Data node: serialize raw points.
                let (raw, t0) = timed(|| {
                    let mut out = Vec::with_capacity(range.len() * 3);
                    for i in range.clone() {
                        out.extend_from_slice(&self.points[i]);
                    }
                    out
                });
                let bytes0 = raw.len() as f64 * 8.0;
                // Compute node: distances + k-selection over raw points.
                let (_, t1) = timed(|| {
                    let start = range.start;
                    for (j, chunk) in raw.chunks_exact(3).enumerate() {
                        let pt = [chunk[0], chunk[1], chunk[2]];
                        self.result.push(Candidate {
                            dist2: dist2(&pt, &q),
                            index: (start + j) as u32,
                        });
                    }
                });
                PacketProfile::new([t0, t1, 0.0], [bytes0, 0.0])
            }
            KnnVersion::DecompComp | KnnVersion::DecompManual => {
                let comp_style = self.version == KnnVersion::DecompComp;
                // Data node: distances + per-packet k-selection; ship only
                // the k best candidates.
                let (partial, t0) = timed(|| {
                    let mut part = KNearest::new(self.k);
                    for i in range.clone() {
                        part.push(Candidate {
                            dist2: dist2(&self.points[i], &q),
                            index: i as u32,
                        });
                    }
                    part
                });
                let bytes0 = partial.wire_bytes() as f64;
                // Compute node: merge the partial result. The
                // compiler-generated version iterates the received buffer
                // through the generic unpack path (an intermediate copy);
                // the manual version merges in place — the tiny difference
                // matches the paper's "no significant difference".
                let (_, t1) = timed(|| {
                    if comp_style {
                        let unpacked: Vec<Candidate> = partial.sorted();
                        for c in unpacked {
                            self.result.push(c);
                        }
                    } else {
                        self.result.reduce(&partial);
                    }
                });
                PacketProfile::new([t0, t1, 0.0], [bytes0, 0.0])
            }
        }
    }

    fn finalize_bytes(&self) -> [f64; 2] {
        [0.0, self.result.wire_bytes() as f64]
    }

    fn result_digest(&self) -> u64 {
        self.result.digest()
    }

    fn reset(&mut self) {
        self.result = KNearest::new(self.k);
    }
}

/// The paper's two test cases: k = 3 and k = 200.
pub const PAPER_KS: [usize; 2] = [3, 200];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::run_all;

    fn mk(version: KnnVersion, k: usize) -> KnnPipeline {
        KnnPipeline::new(
            generate_points(5000, 7),
            [0.25, 0.5, 0.75],
            k,
            16,
            version,
            "knn-test",
        )
    }

    #[test]
    fn knearest_keeps_k_smallest() {
        let mut kn = KNearest::new(3);
        for (d, i) in [(5.0, 0), (1.0, 1), (3.0, 2), (0.5, 3), (4.0, 4)] {
            kn.push(Candidate { dist2: d, index: i });
        }
        let dists: Vec<f64> = kn.sorted().iter().map(|c| c.dist2).collect();
        assert_eq!(dists, vec![0.5, 1.0, 3.0]);
    }

    #[test]
    fn knearest_matches_sort_oracle() {
        let pts = generate_points(3000, 13);
        let q = [0.5, 0.5, 0.5];
        for k in [1usize, 3, 17, 200, 5000] {
            let mut kn = KNearest::new(k);
            for (i, p) in pts.iter().enumerate() {
                kn.push(Candidate {
                    dist2: dist2(p, &q),
                    index: i as u32,
                });
            }
            let mut all: Vec<Candidate> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| Candidate {
                    dist2: dist2(p, &q),
                    index: i as u32,
                })
                .collect();
            all.sort_by(|a, b| a.key().partial_cmp(&b.key()).unwrap());
            all.truncate(k);
            assert_eq!(kn.sorted(), all, "k={k}");
        }
    }

    #[test]
    fn knearest_reduce_commutative() {
        let pts = generate_points(1000, 3);
        let q = [0.1, 0.2, 0.3];
        let mut a = KNearest::new(10);
        let mut b = KNearest::new(10);
        for (i, p) in pts.iter().enumerate() {
            let c = Candidate {
                dist2: dist2(p, &q),
                index: i as u32,
            };
            if i % 2 == 0 {
                a.push(c);
            } else {
                b.push(c);
            }
        }
        let mut ab = a.clone();
        ab.reduce(&b);
        let mut ba = b.clone();
        ba.reduce(&a);
        assert_eq!(ab.digest(), ba.digest());
    }

    #[test]
    fn all_versions_agree() {
        for k in [3usize, 200] {
            let (_, d0) = run_all(&mut mk(KnnVersion::Default, k));
            let (_, d1) = run_all(&mut mk(KnnVersion::DecompComp, k));
            let (_, d2) = run_all(&mut mk(KnnVersion::DecompManual, k));
            assert_eq!(d0, d1, "k={k}");
            assert_eq!(d1, d2, "k={k}");
        }
    }

    #[test]
    fn matches_brute_force_oracle() {
        let pts = generate_points(2000, 11);
        let q = [0.4, 0.4, 0.6];
        let mut pipeline =
            KnnPipeline::new(pts.clone(), q, 5, 7, KnnVersion::DecompManual, "oracle");
        run_all(&mut pipeline);
        let mut all: Vec<Candidate> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate {
                dist2: dist2(p, &q),
                index: i as u32,
            })
            .collect();
        all.sort_by(|a, b| a.key().partial_cmp(&b.key()).unwrap());
        let expect: Vec<Candidate> = all.into_iter().take(5).collect();
        assert_eq!(pipeline.result.sorted(), expect);
    }

    #[test]
    fn decomp_ships_far_fewer_bytes() {
        let (pd, _) = run_all(&mut mk(KnnVersion::Default, 3));
        let (pc, _) = run_all(&mut mk(KnnVersion::DecompManual, 3));
        let bytes = |ps: &[PacketProfile]| ps.iter().map(|p| p.bytes[0]).sum::<f64>();
        assert!(
            bytes(&pc) < bytes(&pd) / 50.0,
            "{} vs {}",
            bytes(&pc),
            bytes(&pd)
        );
    }

    #[test]
    fn k200_ships_more_than_k3() {
        let (p3, _) = run_all(&mut mk(KnnVersion::DecompManual, 3));
        let (p200, _) = run_all(&mut mk(KnnVersion::DecompManual, 200));
        let bytes = |ps: &[PacketProfile]| ps.iter().map(|p| p.bytes[0]).sum::<f64>();
        assert!(bytes(&p200) > bytes(&p3) * 10.0);
    }

    #[test]
    fn packet_ranges_partition() {
        let p = mk(KnnVersion::Default, 3);
        let mut total = 0;
        let mut prev_end = 0;
        for i in 0..p.packets() {
            let r = p.packet_range(i);
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            total += r.len();
        }
        assert_eq!(total, 5000);
    }

    #[test]
    fn points_are_deterministic() {
        assert_eq!(generate_points(100, 5), generate_points(100, 5));
        assert_ne!(generate_points(100, 5), generate_points(100, 6));
    }
}
