//! Application pipeline profiles.
//!
//! Every application variant (Default / Decomp-Comp / Decomp-Manual)
//! implements [`AppVariant`]: it runs the *real* computation of each packet,
//! stage by stage, measuring per-stage wall time and recording the exact
//! bytes each link would carry. The bench harness feeds those measurements
//! to `cgp-grid`'s virtual-time simulator to obtain figure-style execution
//! times on 1-1-1 / 2-2-1 / 4-4-1 configurations (see DESIGN.md for why the
//! cluster is simulated).
//!
//! Variants of the same application must produce identical results — a
//! `result_digest` makes that checkable.

use cgp_grid::PacketWork;
use std::time::Instant;

/// Measured profile of one packet through the three pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketProfile {
    /// Real seconds of computation at each stage (data, compute, view).
    pub seconds: [f64; 3],
    /// Bytes each link carries (data→compute, compute→view).
    pub bytes: [f64; 2],
    /// Bytes the data stage reads from its local storage (charged against
    /// the simulated disk when the grid models one).
    pub read_bytes: f64,
}

impl PacketProfile {
    pub fn new(seconds: [f64; 3], bytes: [f64; 2]) -> Self {
        PacketProfile {
            seconds,
            bytes,
            read_bytes: 0.0,
        }
    }

    pub fn with_read(mut self, read_bytes: f64) -> Self {
        self.read_bytes = read_bytes;
        self
    }

    /// As simulator work with hosts of the given power: the simulator's
    /// "standard ops" are calibrated so that `ops / power` reproduces the
    /// measured seconds on a power-`calibration` host.
    pub fn to_work(&self, calibration: f64) -> PacketWork {
        PacketWork {
            comp_ops: self.seconds.iter().map(|s| s * calibration).collect(),
            bytes: self.bytes.to_vec(),
            read_bytes: self.read_bytes,
        }
    }
}

/// One runnable application pipeline variant.
pub trait AppVariant {
    /// e.g. `zbuf-small/Default`.
    fn name(&self) -> String;

    /// Number of packets the workload splits into.
    fn packets(&self) -> usize;

    /// Execute packet `p`'s real work (all stages) and return its profile.
    fn run_packet(&mut self, p: usize) -> PacketProfile;

    /// One-time end-of-work transfer out of each stage (bytes; len 2).
    fn finalize_bytes(&self) -> [f64; 2];

    /// Digest of the final result, for cross-variant agreement checks.
    fn result_digest(&self) -> u64;

    /// Clear accumulated results so the packet sweep can be re-measured.
    fn reset(&mut self);
}

/// Run every packet of a variant, returning profiles (for the simulator)
/// and the result digest.
pub fn run_all(variant: &mut dyn AppVariant) -> (Vec<PacketProfile>, u64) {
    let profiles: Vec<PacketProfile> = (0..variant.packets())
        .map(|p| variant.run_packet(p))
        .collect();
    (profiles, variant.result_digest())
}

/// Like [`run_all`] but repeats the whole packet sweep `rounds` times
/// (resetting accumulators in between) and keeps, per packet and stage, the
/// *minimum* measured time — suppressing scheduler noise in the µs-scale
/// measurements the simulator consumes. Each round must reproduce the same
/// result and byte counts, which is asserted.
pub fn run_all_min(variant: &mut dyn AppVariant, rounds: usize) -> (Vec<PacketProfile>, u64) {
    assert!(rounds >= 1);
    let (mut best, digest) = run_all(variant);
    for _ in 1..rounds {
        variant.reset();
        let (again, digest2) = run_all(variant);
        assert_eq!(
            digest, digest2,
            "re-running the sweep must be deterministic"
        );
        for (b, a) in best.iter_mut().zip(&again) {
            debug_assert_eq!(b.bytes, a.bytes);
            for s in 0..3 {
                b.seconds[s] = b.seconds[s].min(a.seconds[s]);
            }
        }
    }
    (best, digest)
}

/// Convert measured profiles into simulator packets.
pub fn to_sim_packets(profiles: &[PacketProfile], calibration: f64) -> Vec<PacketWork> {
    profiles.iter().map(|p| p.to_work(calibration)).collect()
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Relative aging factor for memory-scan kernels (streaming loads,
/// compares, copies). The simulated testbed's global slowdown constant is
/// calibrated for floating-point compute kernels; cache-friendly scan
/// kernels aged far less between a 700 MHz Pentium III and a modern core
/// (~10× vs ~25×), so their measured time is scaled by this factor before
/// entering a profile. See EXPERIMENTS.md, "calibration".
pub const SCAN_KERNEL_SCALE: f64 = 0.4;

/// Time a scan-class kernel: measured seconds are scaled by
/// [`SCAN_KERNEL_SCALE`] so the global (FP-calibrated) slowdown constant
/// does not overcharge it.
pub fn timed_scan<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let (r, s) = timed(f);
    (r, s * SCAN_KERNEL_SCALE)
}

/// FNV-1a — small deterministic digest helper for result comparison.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest a sequence of f32s bit-exactly.
pub fn digest_f32s(vals: impl Iterator<Item = f32>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_converts_to_work() {
        let p = PacketProfile::new([0.5, 1.0, 0.0], [100.0, 10.0]);
        let w = p.to_work(1e6);
        assert_eq!(w.comp_ops, vec![5e5, 1e6, 0.0]);
        assert_eq!(w.bytes, vec![100.0, 10.0]);
    }

    #[test]
    fn fnv_digests_differ() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn digest_f32_is_bit_exact() {
        let a = digest_f32s([1.0f32, 2.0].into_iter());
        let b = digest_f32s([1.0f32, 2.0].into_iter());
        let c = digest_f32s([1.0f32, 2.0000002].into_iter());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn timed_measures_something() {
        let (v, s) = timed(|| (0..10000).sum::<u64>());
        assert_eq!(v, 49995000);
        assert!(s >= 0.0);
    }
}
