//! Ablation A3: instance-wise vs field-wise packing cost (Section 5 /
//! Figure 4) over a packet of object fields.

use cgp_compiler::packing::{pack, unpack, PackEntry, PackLayout, RuntimeEnv, ScalarKind};
use cgp_compiler::place::{Place, Section, SymExpr};
use cgp_lang::Value;
use cgp_obs::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn entry(root: &str, field: &str, n: i64, first: usize) -> PackEntry {
    let mut place = Place::sliced(
        root,
        Section::dense(SymExpr::konst(0), SymExpr::konst(n - 1)),
    );
    place.fields.push(field.to_string());
    PackEntry {
        place,
        first_consumer: first,
        elem: ScalarKind::F64,
    }
}

fn vars(n: usize) -> HashMap<String, Value> {
    let mk_obj = |x: f64| {
        let mut f = HashMap::new();
        f.insert("x".to_string(), Value::Double(x));
        f.insert("y".to_string(), Value::Double(-x));
        Value::new_object("T", f)
    };
    let arr = Value::Array(std::rc::Rc::new(std::cell::RefCell::new(
        (0..n).map(|i| mk_obj(i as f64)).collect(),
    )));
    let mut v = HashMap::new();
    v.insert("t".to_string(), arr);
    v
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    for &n in &[256usize, 4096] {
        let env = RuntimeEnv::for_packet("pkt", 0, n as i64 - 1);
        let instance = PackLayout {
            instance_wise: vec![entry("t", "x", n as i64, 1), entry("t", "y", n as i64, 1)],
            ..Default::default()
        };
        let field = PackLayout {
            field_wise: vec![entry("t", "x", n as i64, 1), entry("t", "y", n as i64, 2)],
            ..Default::default()
        };
        let v = vars(n);
        for (name, layout) in [("instance_wise", &instance), ("field_wise", &field)] {
            group.bench_with_input(
                BenchmarkId::new(format!("pack_{name}"), n),
                &(layout, &v, &env),
                |b, (layout, v, env)| {
                    b.iter(|| pack(layout, v, env, (0, n as i64 - 1), None).unwrap())
                },
            );
            let buf = pack(layout, &v, &env, (0, n as i64 - 1), None).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("unpack_{name}"), n),
                &(layout, &buf, &env),
                |b, (layout, buf, env)| b.iter(|| unpack(layout, env, buf).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
