//! Data-plane microbenchmarks: packet-echo throughput (legacy vs
//! pooled-and-batched), bulk pack/unpack over plain `f64` arrays, and
//! codec encode/decode of homogeneous array runs.
//!
//! The packet-echo pair is the tentpole measurement; its best-of rates
//! are committed in `BENCH_dataplane.json` (regenerate with
//! `cargo run --release -p cgp-bench --bin dataplane_guard -- --record`).

use cgp_bench::dataplane::{run_packet_echo, EchoConfig};
use cgp_compiler::packing::{pack, unpack, PackEntry, PackLayout, RuntimeEnv, ScalarKind};
use cgp_compiler::place::{Place, Section, SymExpr};
use cgp_core::codec::{decode_state, encode_state};
use cgp_lang::Value;
use cgp_obs::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn bench_packet_echo(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_echo");
    let (packets, payload) = (512usize, 1024usize);
    for (name, cfg) in [
        ("legacy", EchoConfig::legacy(packets, payload)),
        ("batched_pooled", EchoConfig::batched(packets, payload)),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, format!("{packets}x{payload}B")),
            &cfg,
            |b, cfg| b.iter(|| run_packet_echo(cfg)),
        );
    }
    group.finish();
}

fn f64_array(n: usize) -> Value {
    Value::Array(Rc::new(RefCell::new(
        (0..n).map(|i| Value::Double(i as f64)).collect(),
    )))
}

fn bench_pack_bulk(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_bulk");
    for &n in &[4096usize, 65536] {
        let env = RuntimeEnv::for_packet("pkt", 0, n as i64 - 1);
        let layout = PackLayout {
            instance_wise: vec![PackEntry {
                place: Place::sliced(
                    "a",
                    Section::dense(SymExpr::konst(0), SymExpr::konst(n as i64 - 1)),
                ),
                first_consumer: 1,
                elem: ScalarKind::F64,
            }],
            ..Default::default()
        };
        let mut vars = HashMap::new();
        vars.insert("a".to_string(), f64_array(n));
        group.bench_with_input(
            BenchmarkId::new("pack_f64_run", n),
            &(&layout, &vars, &env),
            |b, (layout, vars, env)| {
                b.iter(|| pack(layout, vars, env, (0, n as i64 - 1), None).unwrap())
            },
        );
        let buf = pack(&layout, &vars, &env, (0, n as i64 - 1), None).unwrap();
        group.bench_with_input(
            BenchmarkId::new("unpack_f64_run", n),
            &(&layout, &buf, &env),
            |b, (layout, buf, env)| b.iter(|| unpack(layout, env, buf).unwrap()),
        );
    }
    group.finish();
}

fn bench_codec_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for &n in &[1024usize, 16384] {
        let mut state = HashMap::new();
        state.insert("a".to_string(), f64_array(n));
        group.bench_with_input(BenchmarkId::new("encode_f64_run", n), &state, |b, state| {
            b.iter(|| encode_state(state))
        });
        let buf = encode_state(&state);
        group.bench_with_input(BenchmarkId::new("decode_f64_run", n), &buf, |b, buf| {
            b.iter(|| decode_state(buf).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_packet_echo,
    bench_pack_bulk,
    bench_codec_runs
);
criterion_main!(benches);
