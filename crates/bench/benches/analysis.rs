//! Ablation A2: throughput of the one-pass analyses (Section 4.2) — the
//! paper argues single-pass efficiency matters for JIT settings.

use cgp_core::apps::dialect::{KNN_SRC, VMSCOPE_SRC, ZBUF_SRC};
use cgp_obs::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for (name, src) in [
        ("zbuf", ZBUF_SRC),
        ("knn", KNN_SRC),
        ("vmscope", VMSCOPE_SRC),
    ] {
        group.bench_with_input(BenchmarkId::new("frontend", name), &src, |b, src| {
            b.iter(|| cgp_lang::frontend(src).unwrap())
        });
        let typed = cgp_lang::frontend(src).unwrap();
        group.bench_with_input(
            BenchmarkId::new("normalize_fission", name),
            &typed,
            |b, tp| b.iter(|| cgp_compiler::normalize(tp).unwrap()),
        );
        let np = cgp_compiler::normalize(&typed).unwrap();
        let graph = cgp_compiler::graph::build_graph(&np).unwrap();
        group.bench_with_input(
            BenchmarkId::new("gencons_reqcomm", name),
            &(&np, &graph),
            |b, (np, graph)| b.iter(|| cgp_compiler::reqcomm::analyze_chain(np, graph).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
