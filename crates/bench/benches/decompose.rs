//! Ablation A1: the paper's `O(nm)` dynamic program vs the exponential
//! brute force (Section 4.4 claims exactly this trade-off), plus the
//! `O(m)`-space rolling variant.

use cgp_core::{Decomposition, PipelineEnv};
use cgp_obs::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn synthetic_problem(n_atoms: usize) -> cgp_compiler::Problem {
    use cgp_compiler::cost::OpCount;
    let tasks: Vec<OpCount> = (0..=n_atoms)
        .map(|i| OpCount {
            flops: if i == 0 {
                0.0
            } else {
                100.0 + 37.0 * (i as f64 * 1.7).sin().abs()
            },
            iops: 10.0,
            mem: 20.0,
        })
        .collect();
    let volumes: Vec<f64> = (0..=n_atoms)
        .map(|i| {
            if i == n_atoms {
                0.0
            } else {
                1000.0 / (i as f64 + 1.0)
            }
        })
        .collect();
    cgp_compiler::Problem::synthetic(tasks, volumes)
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for &n in &[6usize, 10, 14] {
        for &m in &[3usize, 5] {
            let p = synthetic_problem(n);
            let env = PipelineEnv::uniform(m, 1e6, 1e5, 1e-5);
            group.bench_with_input(
                BenchmarkId::new("dp", format!("n{n}_m{m}")),
                &(&p, &env),
                |b, (p, env)| b.iter(|| cgp_compiler::decompose_dp(p, env)),
            );
            group.bench_with_input(
                BenchmarkId::new("dp_rolling", format!("n{n}_m{m}")),
                &(&p, &env),
                |b, (p, env)| b.iter(|| cgp_compiler::decompose::decompose_dp_cost_only(p, env)),
            );
            group.bench_with_input(
                BenchmarkId::new("brute_force", format!("n{n}_m{m}")),
                &(&p, &env),
                |b, (p, env)| b.iter(|| cgp_compiler::decompose_brute_force(p, env)),
            );
        }
    }
    group.finish();
    // keep Decomposition linked in for default_style
    let _ = Decomposition::default_style(3, 2);
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
