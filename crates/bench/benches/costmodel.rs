//! Ablation A4: virtual-time simulator throughput and agreement with the
//! paper's closed-form total-time formula (Section 4.3).

use cgp_core::grid::{analytic_total_time, simulate, GridConfig, LinkSpec, PacketWork};
use cgp_obs::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn packets(n: usize, m: usize) -> Vec<PacketWork> {
    (0..n)
        .map(|i| PacketWork {
            comp_ops: (0..m)
                .map(|s| 1e5 * (1.0 + ((i + s) % 7) as f64 / 10.0))
                .collect(),
            bytes: (0..m - 1).map(|l| 1e4 * (1.0 + l as f64)).collect(),
            read_bytes: 0.0,
        })
        .collect()
}

fn bench_costmodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("costmodel");
    let link = LinkSpec {
        bandwidth: 1e8,
        latency: 2e-5,
    };
    for &n in &[100usize, 10_000] {
        let grid = GridConfig::w_w_1(4, 1e9, link);
        let pkts = packets(n, 3);
        group.bench_with_input(BenchmarkId::new("simulate_4_4_1", n), &pkts, |b, pkts| {
            b.iter(|| simulate(&grid, pkts, &[1e6, 1e6]))
        });
    }
    let grid1 = GridConfig::uniform_chain(3, 1e9, link);
    let one = packets(1, 3).remove(0);
    group.bench_function("analytic_formula", |b| {
        b.iter(|| analytic_total_time(&grid1, &one, 10_000))
    });
    group.finish();

    // Sanity (not timed): simulator equals the closed form on uniform
    // packets over a width-1 chain.
    let uniform: Vec<PacketWork> = (0..500).map(|_| one.clone()).collect();
    let sim = simulate(&grid1, &uniform, &[]);
    let ana = analytic_total_time(&grid1, &one, 500);
    assert!((sim.makespan - ana).abs() < 1e-9 * ana);
}

criterion_group!(benches, bench_costmodel);
criterion_main!(benches);
