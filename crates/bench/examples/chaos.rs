//! Worked chaos example: run the same pipeline through the fault-tolerant
//! runtime under four injected failure modes — a mid-stream panic, a
//! plain failure, a retryable failure that recovers under the retry
//! policy, and an induced stall caught by the watchdog.
//!
//! ```sh
//! cargo run --release -p cgp-bench --example chaos
//! ```
//!
//! Every run terminates promptly with either a result or a structured
//! error naming the failing stage and copy — no hangs, no unwound
//! process, no leaked threads (the executor joins every copy).

use cgp_core::datacutter::{
    Buffer, ClosureFilter, ErrorKind, FaultPlan, FilterError, FilterIo, Pipeline, RetryPolicy,
    StageSpec,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// source → double → sum over `n` u64 packets.
fn pipeline(n: u64, total: Arc<AtomicU64>) -> Pipeline {
    Pipeline::new()
        .with_capacity(8)
        .add_stage(StageSpec::new(
            "source",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
                    for i in 0..n {
                        io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "double",
            2,
            Box::new(|_| {
                Box::new(ClosureFilter::new("double", |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        let v = b.u64_le("double")?;
                        io.write(Buffer::from_vec((v * 2).to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sum",
            1,
            Box::new(move |_| {
                let total = Arc::clone(&total);
                Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
}

fn main() {
    const N: u64 = 1000;
    let expect: u64 = (0..N).map(|i| i * 2).sum();

    // 1. Baseline: no faults.
    let total = Arc::new(AtomicU64::new(0));
    let stats = pipeline(N, Arc::clone(&total)).run().expect("clean run");
    println!(
        "baseline: sum={} (expected {expect}), wall {:?}",
        total.load(Ordering::Relaxed),
        stats.wall
    );

    // 2. Panic isolation: copy 1 of `double` panics at packet 100. The
    //    panic is caught, its streams are closed/drained, and the run
    //    returns a structured Panicked error naming double[1].
    let total = Arc::new(AtomicU64::new(0));
    let err = pipeline(N, total)
        .with_faults(FaultPlan::new().panic_at("double", 1, 100))
        .with_deadline(Duration::from_secs(30))
        .run()
        .expect_err("injected panic fails the run");
    assert_eq!(err.kind, ErrorKind::Panicked);
    println!("panic injection: {err}");

    // 3. Retryable failure + retry policy: the source fails retryably at
    //    packet 0 (before producing anything), so the retry restarts the
    //    unit of work with a fresh filter instance and the run completes.
    let total = Arc::new(AtomicU64::new(0));
    let stats = pipeline(N, Arc::clone(&total))
        .with_faults(FaultPlan::new().rule(cgp_core::datacutter::FaultRule {
            stage: Some("source".into()),
            copy: Some(0),
            trigger: cgp_core::datacutter::Trigger::Packet(0),
            action: cgp_core::datacutter::FaultAction::Fail { retryable: true },
        }))
        .with_retry(RetryPolicy::retries(2).with_backoff(Duration::from_millis(1)))
        .run()
        .expect("retry recovers");
    assert_eq!(total.load(Ordering::Relaxed), expect);
    println!(
        "retryable failure: recovered after {} retries (sum still {})",
        stats.retries(),
        expect
    );

    // 4. Stall: a filter that blocks forever (never reads its input) is
    //    caught by the deadline watchdog; the error reports where the
    //    pipeline was blocked instead of hanging the process.
    let err = Pipeline::new()
        .with_capacity(2)
        .with_deadline(Duration::from_millis(300))
        .add_stage(StageSpec::new(
            "source",
            1,
            Box::new(|_| {
                Box::new(ClosureFilter::new("source", |io: &mut FilterIo| {
                    for i in 0u64.. {
                        io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "wedged",
            1,
            Box::new(|_| {
                Box::new(ClosureFilter::new("wedged", |io: &mut FilterIo| {
                    // Never reads; spins until the run is cancelled.
                    while !io.cancelled() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(FilterError::cancelled("wedged", "gave up after cancel"))
                }))
            }),
        ))
        .run()
        .expect_err("stalled run fails");
    assert_eq!(err.kind, ErrorKind::Stalled);
    println!("stall detection: {err}");

    println!("chaos example done: all failure modes terminated promptly");
}
