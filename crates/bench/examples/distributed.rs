//! Worked distributed-execution example: split one pipeline across three
//! worker "processes" (hosted on threads here, so the example is
//! self-contained — the bench figure binaries' `--role launcher` flag
//! does the same thing with real processes) connected by loopback TCP,
//! and show that the distributed result is identical to the in-process
//! run — including when a fault is injected into the middle worker and
//! masked by checkpointed recovery.
//!
//! ```sh
//! cargo run --release -p cgp-bench --example distributed
//! ```
//!
//! The process-level equivalent, spawning one OS process per stage:
//!
//! ```sh
//! cargo run --release -p cgp-bench --bin fig05_zbuf_small -- --role launcher
//! ```

use cgp_core::datacutter::{
    Buffer, ClosureFilter, FaultPlan, FilterIo, Pipeline, RecoveryOptions, StageAssignment,
    StageSpec, WorkerEndpoints,
};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// source → double → sum over `n` u64 packets. Every worker builds the
/// same pipeline (closures can't cross process boundaries, so each
/// participant rebuilds the plan deterministically); the endpoints
/// select which stage actually runs.
fn pipeline(n: u64, faults: Option<FaultPlan>, total: Arc<AtomicU64>) -> Pipeline {
    let mut p = Pipeline::new()
        .with_capacity(8)
        .add_stage(StageSpec::new(
            "source",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
                    for i in 0..n {
                        io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "double",
            2,
            Box::new(|_| {
                Box::new(ClosureFilter::new("double", |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        let v = b.u64_le("double")?;
                        io.write(Buffer::from_vec((v * 2).to_le_bytes().to_vec()))?;
                    }
                    Ok(())
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sum",
            1,
            Box::new(move |_| {
                let total = Arc::clone(&total);
                Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ));
    if let Some(f) = faults {
        p = p.with_faults(f).with_recovery(RecoveryOptions::on());
    }
    p
}

fn run_distributed(n: u64, faults: Option<FaultPlan>) -> u64 {
    // Bind the downstream listeners first (real launchers learn the
    // ephemeral ports from each worker's `CGP_LISTENING` announcement).
    let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
    let l2 = TcpListener::bind("127.0.0.1:0").expect("bind");
    let a1 = l1.local_addr().expect("addr").to_string();
    let a2 = l2.local_addr().expect("addr").to_string();
    // The assignment each "process" would receive from a launcher.
    let assignments = [
        StageAssignment {
            stage: 0,
            widths: vec![1, 2, 1],
            listen: None,
            connect: Some(a1.clone()),
        },
        StageAssignment {
            stage: 1,
            widths: vec![1, 2, 1],
            listen: Some(a1),
            connect: Some(a2.clone()),
        },
        StageAssignment {
            stage: 2,
            widths: vec![1, 2, 1],
            listen: Some(a2),
            connect: None,
        },
    ];
    let total = Arc::new(AtomicU64::new(0));
    let mut listeners = [None, Some(l1), Some(l2)];
    std::thread::scope(|scope| {
        for (s, a) in assignments.iter().enumerate() {
            // Serialize/parse the assignment as a launcher would hand it
            // over (env var / argv), then run that one stage.
            let spec = StageAssignment::parse(&a.render()).expect("roundtrip");
            println!("  worker {s}: {spec}");
            let listener = listeners[s].take();
            let faults = faults.clone();
            let total = Arc::clone(&total);
            scope.spawn(move || {
                pipeline(n, faults, total)
                    .run_worker(WorkerEndpoints {
                        stage: spec.stage,
                        listener,
                        shm_ingress: None,
                        connect: spec.connect,
                    })
                    .expect("worker run");
            });
        }
    });
    total.load(Ordering::Relaxed)
}

fn main() {
    let n = 100u64;
    let expect = (0..n).map(|i| i * 2).sum::<u64>();

    let total = Arc::new(AtomicU64::new(0));
    pipeline(n, None, Arc::clone(&total))
        .run()
        .expect("in-process run");
    println!(
        "in-process run:           total = {}",
        total.load(Ordering::Relaxed)
    );
    assert_eq!(total.load(Ordering::Relaxed), expect);

    println!("distributed run (3 workers over loopback TCP):");
    let got = run_distributed(n, None);
    println!("  total = {got}  (identical to in-process)");
    assert_eq!(got, expect);

    println!("distributed run with a panic injected into the middle worker:");
    let got = run_distributed(n, Some(FaultPlan::new().panic_at("double", 0, 20)));
    println!("  total = {got}  (recovery masked the fault; still identical)");
    assert_eq!(got, expect);
}
