//! Worked observability example: compile a dialect program with tracing
//! on, execute the compiled plan on the threaded DataCutter runtime,
//! replay a workload on the virtual-time grid simulator, and end with a
//! Chrome trace plus the compiler's decision report.
//!
//! ```sh
//! cargo run --release -p cgp-bench --example observability
//! ```
//!
//! Then open `/tmp/cgp_observability.json` in <https://ui.perfetto.dev>
//! (or `chrome://tracing`). Three processes appear: `cgp-compiler`
//! (pid 2, the seven phase spans), `datacutter` (pid 1, one lane per
//! filter copy with per-packet send/recv instants and stall spans), and
//! `grid-sim (virtual time)` (pid 3, the simulated stage/link timeline).

use cgp_core::apps::dialect::{iso_host_env, ZBUF_SRC};
use cgp_core::apps::isosurface::ScalarGrid;
use cgp_core::grid::{simulate, GridConfig, LinkSpec, PacketWork};
use cgp_core::{compile, run_plan_threaded, CompileOptions, PipelineEnv};
use cgp_obs::trace;
use cgp_obs::ChromeTraceSink;
use std::sync::Arc;

fn main() {
    let path = "/tmp/cgp_observability.json";
    let sink = ChromeTraceSink::create(path).expect("create trace file");
    trace::install_sink(Arc::new(sink));

    // 1. Compile the z-buffer isosurface dialect program. With the sink
    //    installed this emits one span per compiler phase (normalize →
    //    graph → gencons → reqcomm → cost → decompose → codegen).
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
        .with_symbol("ncubes", 343)
        .with_symbol("screen", 16)
        .with_selectivity(0, 0.15);
    let compiled = compile(ZBUF_SRC, &opts).expect("compile");

    // 2. The decision report says *why* this decomposition won.
    println!("{}", compiled.report.render_text());

    // 3. Run the plan on real threads. Every filter copy gets a span;
    //    every packet a send/recv instant with its byte count; blocking on
    //    backpressure or starvation shows up as stall spans.
    let grid = ScalarGrid::synthetic(8, 8, 8, 21);
    let host = Arc::new(move || iso_host_env(&grid, 0.8, 16, 4));
    let out =
        run_plan_threaded(Arc::new(compiled.plan), host, Some(&[1, 2, 1])).expect("threaded run");
    println!("threaded run output: {out:?}");

    // 4. Replay a synthetic workload on the virtual-time simulator — its
    //    stage/link busy intervals land in the same trace, under virtual
    //    timestamps (1 virtual second = 1 trace second).
    let sim_grid = GridConfig::w_w_1(
        2,
        1e6,
        LinkSpec {
            bandwidth: 1e6,
            latency: 1e-4,
        },
    );
    let packets: Vec<PacketWork> = (0..32)
        .map(|i| PacketWork {
            comp_ops: vec![1e4, 5e4 + 1e3 * (i % 7) as f64, 1e3],
            bytes: vec![4096.0, 512.0],
            read_bytes: 0.0,
        })
        .collect();
    let sim = simulate(&sim_grid, &packets, &[1e3, 1e3]);
    println!(
        "simulated makespan {:.4} virtual s (bottleneck {:?}, utilization {:.0}%)",
        sim.makespan,
        sim.bottleneck(),
        100.0 * sim.bottleneck_utilization
    );

    // 5. Flush: the Chrome-trace array is written on sink teardown.
    trace::clear_sink();
    println!("trace written to {path} (open in Perfetto / chrome://tracing)");
}
