//! Ablation: automatic packet-size selection (the paper's future work).
//! Sweeps the packet count for the z-buffer isosurface program and prints
//! the predicted total time per candidate; the interior optimum shows the
//! overlap-vs-latency trade-off the paper describes.

use cgp_compiler::choose_packet_count;
use cgp_core::apps::dialect::ZBUF_SRC;
use cgp_core::{CompileOptions, Objective, PipelineEnv};

fn main() {
    let domain = 262_144i64; // cubes
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 5e-3), 4096)
        .with_symbol("ncubes", domain)
        .with_symbol("screen", 512)
        .with_selectivity(0, 0.08)
        .with_objective(Objective::SteadyState { n_packets: 64 });
    let candidates: Vec<i64> = (0..=16).map(|e| 1i64 << e).collect();
    let (best, sweep) = choose_packet_count(ZBUF_SRC, &opts, domain, &candidates).expect("sweep");
    println!("packet-count sweep, zbuf, {domain} cubes, link latency 5 ms:\n");
    println!(
        "{:>12} {:>12} {:>16}",
        "num_packets", "packet_size", "predicted (s)"
    );
    for p in &sweep {
        let marker = if p.num_packets == best.num_packets {
            "  <== best"
        } else {
            ""
        };
        println!(
            "{:>12} {:>12} {:>16.4}{marker}",
            p.num_packets, p.packet_size, p.predicted_time
        );
    }
    assert!(
        best.num_packets > 1,
        "one packet cannot be optimal with overlap available"
    );
    assert!(
        best.num_packets < *candidates.last().unwrap(),
        "per-packet latency must eventually dominate"
    );
}
