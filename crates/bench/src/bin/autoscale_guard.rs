//! Elastic-width autoscale regression guard.
//!
//! Runs the step-load benchmark (see `cgp_bench::autoscale`) with the
//! `work` stage fixed at one copy and again with the telemetry-driven
//! autoscaler armed, and compares against the committed
//! `BENCH_autoscale.json` baseline:
//!
//! ```sh
//! cargo run --release -p cgp-bench --bin autoscale_guard            # check
//! cargo run --release -p cgp-bench --bin autoscale_guard -- --record
//! ```
//!
//! The check fails (exit 1) if:
//!
//! * the fixed and elastic sums differ (autoscaling must be invisible
//!   in the output — this one fails even in `--record` mode),
//! * the elastic run never widened (the controller went deaf),
//! * throughput recovery (elastic/fixed packets/s) falls below 1.5×
//!   (machine-independent floor — the workload is latency-bound, so
//!   the ratio holds on a single-core runner),
//! * elastic throughput drops more than 30% below its baseline.
//!
//! Env knobs for CI smoke mode: `CGP_GUARD_AS_PACKETS` (default 600),
//! `CGP_GUARD_AS_WORK_US` (default 400), `CGP_GUARD_AS_REPS`
//! (default 3), `CGP_GUARD_BASELINE` (path).

use cgp_bench::autoscale::{paired_step_load, StepLoadConfig};

/// Machine-independent floor on elastic/fixed throughput recovery. The
/// autoscaler caps at 4 copies and pays grow latency plus the light
/// pre-step phase, so the ideal 4× degrades — but anything under 1.5×
/// means the controller is not actually relieving the bottleneck.
const RECOVERY_FLOOR: f64 = 1.5;
/// Cross-machine tolerance for the absolute-throughput check.
const DROP_TOLERANCE: f64 = 0.30;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pull the number following `"key":` out of the baseline JSON. The file
/// is flat and written by this binary, so a scan beats a parser dep.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let baseline_path =
        std::env::var("CGP_GUARD_BASELINE").unwrap_or_else(|_| "BENCH_autoscale.json".to_string());
    let cfg = StepLoadConfig {
        packets: env_u64("CGP_GUARD_AS_PACKETS", 600) as usize,
        work_us: env_u64("CGP_GUARD_AS_WORK_US", 400),
        ..Default::default()
    };
    let reps = env_u64("CGP_GUARD_AS_REPS", 3) as usize;

    let (fixed, elastic) = paired_step_load(&cfg, reps);
    let recovery = elastic.packets_per_sec / fixed.packets_per_sec.max(1.0);

    println!(
        "step-load autoscale ({} packets, {}us post-step service, best of {reps}):",
        cfg.packets, cfg.work_us
    );
    println!(
        "  fixed   (work width 1):     {:>12.0} packets/s",
        fixed.packets_per_sec
    );
    println!(
        "  elastic ({}):   {:>12.0} packets/s  ({} grow(s), peak width {})",
        cfg.spec, elastic.packets_per_sec, elastic.grows, elastic.peak_width
    );
    println!("  throughput recovery: {recovery:.2}x");

    // Byte-identity is non-negotiable in every mode: a baseline recorded
    // from a wrong-answer run would be worse than no baseline.
    if fixed.sum != elastic.sum {
        eprintln!(
            "FAIL: elastic output diverges from fixed-width output \
             (sum {} vs {})",
            elastic.sum, fixed.sum
        );
        std::process::exit(1);
    }

    if record {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"autoscale_step_load\",\n",
                "  \"packets\": {packets},\n",
                "  \"work_us\": {work_us},\n",
                "  \"autoscale_spec\": \"{spec}\",\n",
                "  \"fixed_packets_per_sec\": {fixed:.0},\n",
                "  \"elastic_packets_per_sec\": {elastic:.0},\n",
                "  \"recovery\": {recovery:.2},\n",
                "  \"grows\": {grows},\n",
                "  \"peak_width\": {peak}\n",
                "}}\n"
            ),
            packets = cfg.packets,
            work_us = cfg.work_us,
            spec = cfg.spec,
            fixed = fixed.packets_per_sec,
            elastic = elastic.packets_per_sec,
            recovery = recovery,
            grows = elastic.grows,
            peak = elastic.peak_width,
        );
        std::fs::write(&baseline_path, json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            eprintln!("      (record one with `--record`)");
            std::process::exit(1);
        }
    };
    let base_elastic = json_f64(&text, "elastic_packets_per_sec")
        .expect("baseline missing elastic_packets_per_sec");

    let mut failed = false;
    if elastic.grows == 0 || elastic.peak_width <= 1 {
        eprintln!(
            "FAIL: the elastic run never widened ({} grow(s), peak width {}) — \
             the controller is not reacting to the step load",
            elastic.grows, elastic.peak_width
        );
        failed = true;
    }
    if recovery < RECOVERY_FLOOR {
        eprintln!(
            "FAIL: throughput recovery {recovery:.2}x ({:.0} vs {:.0} packets/s) is \
             below the {RECOVERY_FLOOR:.1}x floor",
            elastic.packets_per_sec, fixed.packets_per_sec
        );
        failed = true;
    }
    let floor = base_elastic * (1.0 - DROP_TOLERANCE);
    if elastic.packets_per_sec < floor {
        eprintln!(
            "FAIL: elastic throughput {:.0} packets/s is more than {:.0}% below the \
             baseline {base_elastic:.0} packets/s (floor {floor:.0})",
            elastic.packets_per_sec,
            DROP_TOLERANCE * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: byte-identical output, {recovery:.2}x recovery (floor {RECOVERY_FLOOR:.1}x), \
         elastic within {:.0}% of baseline ({base_elastic:.0} packets/s)",
        DROP_TOLERANCE * 100.0
    );
}
