//! Runs every figure harness and prints both the console tables and the
//! Markdown blocks EXPERIMENTS.md embeds. Supports `CGP_TRACE=<path>` /
//! `--trace-out <path>` / `--explain` (see `cgp_bench::harness`).
use cgp_bench::figures;
use cgp_bench::harness::{DialectApp, Obs};

fn main() {
    let obs = Obs::init();
    if obs.net_mode(DialectApp::Zbuf) {
        return;
    }
    let figs = [
        figures::fig05(),
        figures::fig06(),
        figures::fig07(),
        figures::fig08(),
        figures::fig09(),
        figures::fig10(),
        figures::fig11(),
        figures::fig12(),
    ];
    for f in &figs {
        f.print();
    }
    println!("---- markdown ----\n");
    for f in &figs {
        println!("{}", f.to_markdown());
    }
    for app in [
        DialectApp::Zbuf,
        DialectApp::Apix,
        DialectApp::Knn { k: 3 },
        DialectApp::Vmscope,
    ] {
        obs.compiler_demo(app);
    }
    obs.finish();
}
