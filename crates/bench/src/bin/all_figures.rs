//! Runs every figure harness and prints both the console tables and the
//! Markdown blocks EXPERIMENTS.md embeds.
use cgp_bench::figures;

fn main() {
    let figs = [
        figures::fig05(),
        figures::fig06(),
        figures::fig07(),
        figures::fig08(),
        figures::fig09(),
        figures::fig10(),
        figures::fig11(),
        figures::fig12(),
    ];
    for f in &figs {
        f.print();
    }
    println!("---- markdown ----\n");
    for f in &figs {
        println!("{}", f.to_markdown());
    }
}
