//! Reproduces Figure 05 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig05().print();
}
