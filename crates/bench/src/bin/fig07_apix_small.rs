//! Reproduces Figure 07 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig07().print();
}
