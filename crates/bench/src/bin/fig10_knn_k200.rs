//! Reproduces Figure 10 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig10().print();
}
