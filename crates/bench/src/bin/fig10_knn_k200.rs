//! Reproduces Figure 10 of the paper. See EXPERIMENTS.md.
//! Supports `CGP_TRACE=<path>` / `--trace-out <path>` / `--explain`
//! (see `cgp_bench::harness`).
use cgp_bench::harness::{DialectApp, Obs};

fn main() {
    let obs = Obs::init();
    if obs.net_mode(DialectApp::Knn { k: 200 }) {
        return;
    }
    cgp_bench::figures::fig10().print();
    obs.compiler_demo(DialectApp::Knn { k: 200 });
    obs.finish();
}
