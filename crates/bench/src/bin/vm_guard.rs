//! Bytecode-VM regression guard.
//!
//! Measures filter-body throughput (domain elements per second through a
//! single-unit [`cgp_compiler::FilterStepper`]) on the knn and vmscope
//! dialect programs, register VM vs tree-walking interpreter, and
//! compares against the committed `BENCH_vm.json` baseline:
//!
//! ```sh
//! cargo run --release -p cgp-bench --bin vm_guard            # check
//! cargo run --release -p cgp-bench --bin vm_guard -- --record
//! ```
//!
//! The check fails (exit 1) if:
//!
//! * the VM rate on either program drops more than 30% below its
//!   baseline, or
//! * the VM/interpreter speedup on either program falls below the
//!   machine-independent 2× floor (the tentpole acceptance bar —
//!   baselines record well above it).
//!
//! Both engines run the identical plan on identical packets each rep and
//! their epilogue output is asserted byte-identical before anything is
//! timed, so the guard can never "win" by diverging.
//!
//! Env knobs for CI smoke mode: `CGP_GUARD_VM_POINTS` (default 20000
//! knn points), `CGP_GUARD_VM_ROWS` (default 192 vmscope rows),
//! `CGP_GUARD_REPS` (default 7), `CGP_GUARD_BASELINE` (path).

use cgp_compiler::FilterStepper;
use cgp_core::apps::dialect::{knn_host_env, vmscope_host_env, KNN_SRC, VMSCOPE_SRC};
use cgp_core::apps::knn::generate_points;
use cgp_core::apps::vmscope::Slide;
use cgp_core::{compile, CompileOptions, PipelineEnv};
use cgp_lang::interp::{split_domain, HostEnv};
use std::time::Instant;

/// Cross-machine tolerance for the absolute-throughput checks.
const DROP_TOLERANCE: f64 = 0.30;
/// Machine-independent floor on the VM/interpreter speedup.
const VM_SPEEDUP_FLOOR: f64 = 2.0;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pull the number following `"key":` out of the baseline JSON. The file
/// is flat and written by this binary, so a scan beats a parser dep.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One compiled single-unit filter-body microbench.
struct Case {
    name: &'static str,
    plan: cgp_compiler::FilterPlan,
    host: HostEnv,
    /// Total domain elements per sweep (the rate denominator).
    elems: u64,
    /// The cost model's weighted standard-op count per domain element
    /// for this body (from the same decision report the decomposition
    /// uses). `model_ops_per_elem × measured elems/s` is the engine's
    /// implied compute power — the number the calibrated
    /// [`cgp_compiler::cost::FilterEngine`] constants are pinned to.
    model_ops_per_elem: f64,
}

impl Case {
    /// Run one full packet sweep on the chosen engine; returns elapsed
    /// seconds. A fresh stepper per sweep mirrors one unit of work.
    fn sweep(&self, use_vm: bool) -> f64 {
        let mut stepper = FilterStepper::new(&self.plan, &self.host)
            .expect("stepper")
            .with_vm(use_vm);
        let ((lo, hi), n_packets) = stepper.loop_bounds().expect("loop bounds");
        let t0 = Instant::now();
        for (plo, phi) in split_domain(lo, hi, n_packets as usize) {
            let out = stepper.step(0, (plo, phi), None).expect("step");
            assert!(out.is_none(), "single-unit plan must not emit buffers");
        }
        t0.elapsed().as_secs_f64()
    }

    /// Epilogue output of a full run on the chosen engine.
    fn output(&self, use_vm: bool) -> Vec<String> {
        let mut stepper = FilterStepper::new(&self.plan, &self.host)
            .expect("stepper")
            .with_vm(use_vm);
        let ((lo, hi), n_packets) = stepper.loop_bounds().expect("loop bounds");
        for (plo, phi) in split_domain(lo, hi, n_packets as usize) {
            stepper.step(0, (plo, phi), None).expect("step");
        }
        stepper.finalize(&self.host).expect("finalize")
    }

    /// Paired best-of rates (elements/sec): engines interleave within
    /// each rep so both sample the same scheduler-noise window.
    fn paired_rates(&self, reps: usize) -> (f64, f64) {
        // Warm both paths so allocator and lowering cold costs never
        // land on a timed rep.
        self.sweep(true);
        self.sweep(false);
        let (mut best_vm, mut best_it) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            best_vm = best_vm.min(self.sweep(true));
            best_it = best_it.min(self.sweep(false));
        }
        (self.elems as f64 / best_vm, self.elems as f64 / best_it)
    }
}

/// Planning power used when compiling the single-unit microbench plans.
/// Only the ratio `stage_time × power` matters here — it recovers the
/// model's raw standard-op count per packet, independent of this value.
const PLAN_POWER: f64 = 1e8;

/// The model's weighted standard ops per domain element, recovered from
/// the single-unit plan's predicted stage time (`ops/pkt = T(C0) × power`,
/// one model packet is `packet_size` elements).
fn model_ops_per_elem(c: &cgp_core::Compiled, packet_size: i64) -> f64 {
    c.report.stage_times.comp[0] * PLAN_POWER / packet_size as f64
}

fn knn_case(npoints: usize) -> Case {
    let k = 8i64;
    let num_packets = 16i64;
    let pts = generate_points(npoints, 5);
    let host = knn_host_env(&pts, [0.3, 0.6, 0.2], k, num_packets);
    // Single pipeline unit: the whole filter body runs in one stepper
    // step, so the engines — not cuts or packing — are the variable.
    let opts = CompileOptions::new(PipelineEnv::uniform(1, PLAN_POWER, 1e6, 1e-5), num_packets)
        .with_symbol("npoints", npoints as i64)
        .with_symbol("k", k);
    let c = compile(KNN_SRC, &opts).expect("compile knn");
    Case {
        name: "knn",
        model_ops_per_elem: model_ops_per_elem(&c, num_packets),
        plan: c.plan,
        host,
        elems: npoints as u64,
    }
}

fn vmscope_case(rows: usize) -> Case {
    let subsample = 2i64;
    let num_packets = 16i64;
    let slide = Slide::synthetic(rows, rows, 9);
    let host = vmscope_host_env(&slide, subsample, num_packets);
    let opts = CompileOptions::new(PipelineEnv::uniform(1, PLAN_POWER, 1e6, 1e-5), num_packets)
        .with_symbol("height", rows as i64)
        .with_symbol("width", rows as i64)
        .with_symbol("subsample", subsample);
    let c = compile(VMSCOPE_SRC, &opts).expect("compile vmscope");
    Case {
        name: "vmscope",
        model_ops_per_elem: model_ops_per_elem(&c, num_packets),
        plan: c.plan,
        host,
        elems: rows as u64,
    }
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let baseline_path =
        std::env::var("CGP_GUARD_BASELINE").unwrap_or_else(|_| "BENCH_vm.json".to_string());
    let points = env_usize("CGP_GUARD_VM_POINTS", 20000);
    let rows = env_usize("CGP_GUARD_VM_ROWS", 192);
    let reps = env_usize("CGP_GUARD_REPS", 7);

    let cases = [knn_case(points), vmscope_case(rows)];
    let mut rates = Vec::new();
    for case in &cases {
        // Correctness before speed: identical epilogue output or bust.
        let vm_out = case.output(true);
        let it_out = case.output(false);
        assert_eq!(
            vm_out, it_out,
            "{}: VM and interpreter output diverged",
            case.name
        );
        let (vm, interp) = case.paired_rates(reps);
        rates.push((case.name, vm, interp));
    }

    println!("filter-body throughput (elements/s, best of {reps}, single-unit plan):");
    for ((name, vm, interp), case) in rates.iter().zip(&cases) {
        println!(
            "  {name:<8} interp: {interp:>12.0}   vm: {vm:>12.0}   speedup: {:.2}x   \
             implied power (std ops/s): interp {:.2e}, vm {:.2e}",
            vm / interp,
            interp * case.model_ops_per_elem,
            vm * case.model_ops_per_elem,
        );
    }

    let (knn_vm, knn_it) = (rates[0].1, rates[0].2);
    let (vms_vm, vms_it) = (rates[1].1, rates[1].2);
    let (knn_ops, vms_ops) = (cases[0].model_ops_per_elem, cases[1].model_ops_per_elem);
    let knn_speedup = knn_vm / knn_it;
    let vms_speedup = vms_vm / vms_it;

    if record {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"vm_filter_body\",\n",
                "  \"knn_points\": {points},\n",
                "  \"vmscope_rows\": {rows},\n",
                "  \"knn_interp_elems_per_sec\": {knn_it:.0},\n",
                "  \"knn_vm_elems_per_sec\": {knn_vm:.0},\n",
                "  \"knn_speedup\": {knn_speedup:.2},\n",
                "  \"knn_model_ops_per_elem\": {knn_ops:.1},\n",
                "  \"vmscope_interp_elems_per_sec\": {vms_it:.0},\n",
                "  \"vmscope_vm_elems_per_sec\": {vms_vm:.0},\n",
                "  \"vmscope_speedup\": {vms_speedup:.2},\n",
                "  \"vmscope_model_ops_per_elem\": {vms_ops:.1}\n",
                "}}\n"
            ),
            points = points,
            rows = rows,
            knn_it = knn_it,
            knn_vm = knn_vm,
            knn_speedup = knn_speedup,
            knn_ops = knn_ops,
            vms_it = vms_it,
            vms_vm = vms_vm,
            vms_speedup = vms_speedup,
            vms_ops = vms_ops,
        );
        std::fs::write(&baseline_path, json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            eprintln!("      (record one with `--record`)");
            std::process::exit(1);
        }
    };

    let mut failed = false;
    let mut check_drop = |name: &str, measured: f64, key: &str| {
        let Some(base) = json_f64(&text, key) else {
            eprintln!("FAIL: baseline missing {key}");
            failed = true;
            return;
        };
        let floor = base * (1.0 - DROP_TOLERANCE);
        if measured < floor {
            eprintln!(
                "FAIL: {name} VM throughput {measured:.0} elems/s is more than {:.0}% below \
                 the baseline {base:.0} elems/s (floor {floor:.0})",
                DROP_TOLERANCE * 100.0
            );
            failed = true;
        }
    };
    check_drop("knn", knn_vm, "knn_vm_elems_per_sec");
    check_drop("vmscope", vms_vm, "vmscope_vm_elems_per_sec");
    for (name, speedup) in [("knn", knn_speedup), ("vmscope", vms_speedup)] {
        if speedup < VM_SPEEDUP_FLOOR {
            eprintln!(
                "FAIL: {name} VM/interpreter speedup {speedup:.2}x is below the \
                 {VM_SPEEDUP_FLOOR:.1}x floor"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: VM within {:.0}% of baseline and above the {VM_SPEEDUP_FLOOR:.1}x speedup floor \
         on both programs (knn {knn_speedup:.2}x, vmscope {vms_speedup:.2}x)",
        DROP_TOLERANCE * 100.0
    );
}
