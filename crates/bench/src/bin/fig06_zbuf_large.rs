//! Reproduces Figure 06 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig06().print();
}
