//! Data-plane regression guard.
//!
//! Measures packet-echo throughput in the legacy (per-packet, no pool)
//! and batched + pooled configurations and compares the batched rate
//! against the committed `BENCH_dataplane.json` baseline:
//!
//! ```sh
//! cargo run --release -p cgp-bench --bin dataplane_guard            # check
//! cargo run --release -p cgp-bench --bin dataplane_guard -- --record
//! ```
//!
//! The check fails (exit 1) if batched throughput drops more than 30%
//! below the baseline, if the batched/legacy speedup falls below the
//! machine-independent floor of 1.5× (the baseline records ≥ 2×), or if
//! enabling telemetry sampling costs more than 5% of the batched rate.
//! `--record` rewrites the baseline from a fresh measurement.
//!
//! Env knobs for CI smoke mode: `CGP_GUARD_PACKETS` (default 16384),
//! `CGP_GUARD_REPS` (default 11), `CGP_GUARD_BASELINE` (path). The
//! defaults are sized so the telemetry plane's fixed per-run setup
//! (sampler thread, probes — tens of µs) amortizes below the 5%
//! sampling tolerance and paired best-of filters scheduler noise.

use cgp_bench::dataplane::{echo_packets_per_sec, echo_paired_packets_per_sec, EchoConfig};

const PAYLOAD: usize = 1024;
/// Cross-machine tolerance for the absolute-throughput check.
const DROP_TOLERANCE: f64 = 0.30;
/// Machine-independent floor on the batched/legacy speedup.
const SPEEDUP_FLOOR: f64 = 1.5;
/// Telemetry sampling may cost at most this fraction of batched
/// throughput (the probes are relaxed atomics off the packet path).
const SAMPLING_TOLERANCE: f64 = 0.05;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pull the number following `"key":` out of the baseline JSON. The file
/// is flat and written by this binary, so a scan beats a parser dep.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let baseline_path =
        std::env::var("CGP_GUARD_BASELINE").unwrap_or_else(|_| "BENCH_dataplane.json".to_string());
    let packets = env_usize("CGP_GUARD_PACKETS", 16384);
    let reps = env_usize("CGP_GUARD_REPS", 11);

    let legacy_cfg = EchoConfig::legacy(packets, PAYLOAD);
    let batched_cfg = EchoConfig::batched(packets, PAYLOAD);
    // Warm both paths once so thread-spawn and allocator cold costs do
    // not land on the first timed rep.
    let _ = echo_packets_per_sec(&legacy_cfg, 1);
    let legacy = echo_packets_per_sec(&legacy_cfg, reps);
    // Paired (interleaved) reps for the sampling comparison: the 5%
    // tolerance is far below run-to-run machine noise, so both
    // configurations must sample the same noise window. A first
    // estimate over the tolerance is re-measured once with doubled
    // reps — scheduler noise shrinks with samples, a real regression
    // does not.
    let sampled_cfg = batched_cfg.clone().with_sampling();
    let (mut batched, mut sampled) = echo_paired_packets_per_sec(&batched_cfg, &sampled_cfg, reps);
    if sampled < batched * (1.0 - SAMPLING_TOLERANCE) {
        eprintln!(
            "note: sampling estimate {:.1}% over tolerance; re-measuring with {} reps",
            (1.0 - sampled / batched) * 100.0,
            reps * 2
        );
        (batched, sampled) = echo_paired_packets_per_sec(&batched_cfg, &sampled_cfg, reps * 2);
    }
    let speedup = batched / legacy;
    let sampling_cost = 1.0 - sampled / batched;

    println!("packet-echo ({packets} packets x {PAYLOAD} B, best of {reps}):");
    println!("  legacy  (batch=1, no pool): {legacy:>12.0} packets/s");
    println!(
        "  batched (batch={}, pooled):  {batched:>12.0} packets/s",
        batched_cfg.batch
    );
    println!("  sampled (telemetry on):     {sampled:>12.0} packets/s");
    println!("  speedup: {speedup:.2}x");
    println!("  sampling cost: {:.1}%", sampling_cost.max(0.0) * 100.0);

    if record {
        let json = format!(
            "{{\n  \"bench\": \"dataplane_packet_echo\",\n  \"packets\": {packets},\n  \"payload_bytes\": {PAYLOAD},\n  \"batch\": {},\n  \"legacy_packets_per_sec\": {legacy:.0},\n  \"batched_packets_per_sec\": {batched:.0},\n  \"speedup\": {speedup:.2}\n}}\n",
            batched_cfg.batch
        );
        std::fs::write(&baseline_path, json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            eprintln!("      (record one with `--record`)");
            std::process::exit(1);
        }
    };
    let base_batched = json_f64(&text, "batched_packets_per_sec")
        .expect("baseline missing batched_packets_per_sec");
    let floor = base_batched * (1.0 - DROP_TOLERANCE);

    let mut failed = false;
    if batched < floor {
        eprintln!(
            "FAIL: batched throughput {batched:.0} packets/s is more than {:.0}% below \
             the baseline {base_batched:.0} packets/s (floor {floor:.0})",
            DROP_TOLERANCE * 100.0
        );
        failed = true;
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: batched/legacy speedup {speedup:.2}x is below the {SPEEDUP_FLOOR:.1}x floor"
        );
        failed = true;
    }
    if sampled < batched * (1.0 - SAMPLING_TOLERANCE) {
        eprintln!(
            "FAIL: telemetry sampling costs {:.1}% of batched throughput \
             ({sampled:.0} vs {batched:.0} packets/s; tolerance {:.0}%)",
            sampling_cost * 100.0,
            SAMPLING_TOLERANCE * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: within {:.0}% of baseline ({base_batched:.0} packets/s), above the \
         {SPEEDUP_FLOOR:.1}x speedup floor, and sampling within {:.0}%",
        DROP_TOLERANCE * 100.0,
        SAMPLING_TOLERANCE * 100.0
    );
}
