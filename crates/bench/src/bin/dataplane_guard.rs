//! Data-plane regression guard.
//!
//! Measures packet-echo throughput in the legacy (per-packet, no pool,
//! mutex), batched + pooled mutex, and SPSC-ring configurations, plus
//! the distributed echo over both same-host transports (loopback TCP
//! vs shared memory), and compares against the committed
//! `BENCH_dataplane.json` baseline:
//!
//! ```sh
//! cargo run --release -p cgp-bench --bin dataplane_guard            # check
//! cargo run --release -p cgp-bench --bin dataplane_guard -- --record
//! ```
//!
//! The check fails (exit 1) if:
//!
//! * batched or spsc throughput drops more than 30% below its baseline,
//! * the batched/legacy speedup falls below 1.5× (baseline records ≥ 2×),
//! * the SPSC ring link falls below 1.5× the mutex link on the bare
//!   per-packet link bench (the ring acceptance bar; with 8-packet
//!   transfer batches both links measure at parity because one lock
//!   amortizes over the batch, so the gate runs at the granularity
//!   where the link implementation is the variable),
//! * the shm transport fails to beat loopback TCP on the same run, or
//! * enabling telemetry sampling costs more than 5% of the batched rate.
//!
//! `--record` rewrites the baseline from a fresh measurement.
//!
//! Env knobs for CI smoke mode: `CGP_GUARD_PACKETS` (default 16384),
//! `CGP_GUARD_LINK_PACKETS` (default 262144), `CGP_GUARD_DIST_PACKETS`
//! (default 8192), `CGP_GUARD_REPS` (default 11), `CGP_GUARD_BASELINE`
//! (path). The defaults are sized so the telemetry plane's fixed
//! per-run setup (sampler thread, probes — tens of µs) amortizes below
//! the 5% sampling tolerance and paired best-of filters scheduler
//! noise.

use cgp_bench::dataplane::{
    echo_packets_per_sec, echo_paired_packets_per_sec, link_paired_packets_per_sec,
    transport_paired_packets_per_sec, EchoConfig,
};
use cgp_core::datacutter::shm_supported;

const PAYLOAD: usize = 1024;
/// Cross-machine tolerance for the absolute-throughput checks.
const DROP_TOLERANCE: f64 = 0.30;
/// Machine-independent floor on the batched/legacy speedup.
const SPEEDUP_FLOOR: f64 = 1.5;
/// Machine-independent floor on the ring/mutex speedup for a bare
/// per-packet 1→1 link.
const RING_SPEEDUP_FLOOR: f64 = 1.5;
/// Payload for the bare-link bench: small, so the link dominates.
const LINK_PAYLOAD: usize = 64;
/// The shm transport must beat loopback TCP on the same run.
const SHM_OVER_TCP_FLOOR: f64 = 1.0;
/// Telemetry sampling may cost at most this fraction of batched
/// throughput (the probes are relaxed atomics off the packet path).
const SAMPLING_TOLERANCE: f64 = 0.05;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Pull the number following `"key":` out of the baseline JSON. The file
/// is flat and written by this binary, so a scan beats a parser dep.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let baseline_path =
        std::env::var("CGP_GUARD_BASELINE").unwrap_or_else(|_| "BENCH_dataplane.json".to_string());
    let packets = env_usize("CGP_GUARD_PACKETS", 16384);
    let link_packets = env_usize("CGP_GUARD_LINK_PACKETS", 262144);
    let dist_packets = env_usize("CGP_GUARD_DIST_PACKETS", 8192);
    let reps = env_usize("CGP_GUARD_REPS", 11);

    let legacy_cfg = EchoConfig::legacy(packets, PAYLOAD);
    let batched_cfg = EchoConfig::batched(packets, PAYLOAD);
    let spsc_cfg = EchoConfig::spsc(packets, PAYLOAD);
    // Warm both paths once so thread-spawn and allocator cold costs do
    // not land on the first timed rep.
    let _ = echo_packets_per_sec(&legacy_cfg, 1);
    let legacy = echo_packets_per_sec(&legacy_cfg, reps);
    // Paired (interleaved) reps wherever two rates are compared against
    // each other: the tolerances are below run-to-run machine noise, so
    // both configurations must sample the same noise window.
    let (batched, spsc) = echo_paired_packets_per_sec(&batched_cfg, &spsc_cfg, reps);
    // A first sampling estimate over the tolerance is re-measured once
    // with doubled reps — scheduler noise shrinks with samples, a real
    // regression does not.
    let sampled_cfg = batched_cfg.clone().with_sampling();
    let (mut batched_s, mut sampled) =
        echo_paired_packets_per_sec(&batched_cfg, &sampled_cfg, reps);
    if sampled < batched_s * (1.0 - SAMPLING_TOLERANCE) {
        eprintln!(
            "note: sampling estimate {:.1}% over tolerance; re-measuring with {} reps",
            (1.0 - sampled / batched_s) * 100.0,
            reps * 2
        );
        (batched_s, sampled) = echo_paired_packets_per_sec(&batched_cfg, &sampled_cfg, reps * 2);
    }
    let speedup = batched / legacy;
    let sampling_cost = 1.0 - sampled / batched_s;

    // Bare 1→1 link at per-packet granularity: the shape where the
    // link implementation (ring vs mutex) is the variable.
    let (link_mutex, link_spsc) = link_paired_packets_per_sec(link_packets, LINK_PAYLOAD, reps);
    let ring_speedup = link_spsc / link_mutex;

    // Same-host transports: distributed echo across three worker
    // threads, loopback TCP vs shared memory (skipped where shm is
    // unsupported — the launcher falls back to TCP there too).
    let (tcp, shm) = if shm_supported() {
        transport_paired_packets_per_sec(dist_packets, PAYLOAD, reps)
    } else {
        (0.0, 0.0)
    };

    println!("packet-echo ({packets} packets x {PAYLOAD} B, best of {reps}):");
    println!("  legacy  (batch=1, no pool): {legacy:>12.0} packets/s");
    println!(
        "  batched (batch={}, pooled):  {batched:>12.0} packets/s",
        batched_cfg.batch
    );
    println!("  spsc    (ring links):       {spsc:>12.0} packets/s");
    println!("  sampled (telemetry on):     {sampled:>12.0} packets/s");
    println!("  batched/legacy speedup: {speedup:.2}x");
    println!("  sampling cost: {:.1}%", sampling_cost.max(0.0) * 100.0);
    println!("bare 1->1 link, per-packet ({link_packets} packets x {LINK_PAYLOAD} B):");
    println!("  mutex stream:               {link_mutex:>12.0} packets/s");
    println!("  spsc ring:                  {link_spsc:>12.0} packets/s");
    println!("  ring/mutex speedup:     {ring_speedup:.2}x");
    if shm_supported() {
        println!("distributed echo ({dist_packets} packets x {PAYLOAD} B, 3 workers):");
        println!("  tcp (loopback):             {tcp:>12.0} packets/s");
        println!("  shm (shared-memory ring):   {shm:>12.0} packets/s");
        println!("  shm/tcp speedup:        {:.2}x", shm / tcp);
    } else {
        println!("distributed echo: shm transport unsupported on this platform; skipped");
    }

    if record {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"dataplane_packet_echo\",\n",
                "  \"packets\": {packets},\n",
                "  \"payload_bytes\": {payload},\n",
                "  \"batch\": {batch},\n",
                "  \"legacy_packets_per_sec\": {legacy:.0},\n",
                "  \"batched_packets_per_sec\": {batched:.0},\n",
                "  \"spsc_packets_per_sec\": {spsc:.0},\n",
                "  \"speedup\": {speedup:.2},\n",
                "  \"link_packets\": {link_packets},\n",
                "  \"link_payload_bytes\": {link_payload},\n",
                "  \"link_mutex_packets_per_sec\": {link_mutex:.0},\n",
                "  \"link_spsc_packets_per_sec\": {link_spsc:.0},\n",
                "  \"ring_speedup\": {ring_speedup:.2},\n",
                "  \"dist_packets\": {dist_packets},\n",
                "  \"tcp_packets_per_sec\": {tcp:.0},\n",
                "  \"shm_packets_per_sec\": {shm:.0},\n",
                "  \"shm_over_tcp\": {shm_over_tcp:.2}\n",
                "}}\n"
            ),
            packets = packets,
            payload = PAYLOAD,
            batch = batched_cfg.batch,
            legacy = legacy,
            batched = batched,
            spsc = spsc,
            speedup = speedup,
            link_packets = link_packets,
            link_payload = LINK_PAYLOAD,
            link_mutex = link_mutex,
            link_spsc = link_spsc,
            ring_speedup = ring_speedup,
            dist_packets = dist_packets,
            tcp = tcp,
            shm = shm,
            shm_over_tcp = if tcp > 0.0 { shm / tcp } else { 0.0 },
        );
        std::fs::write(&baseline_path, json).expect("write baseline");
        println!("baseline written to {baseline_path}");
        return;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            eprintln!("      (record one with `--record`)");
            std::process::exit(1);
        }
    };
    let base_batched = json_f64(&text, "batched_packets_per_sec")
        .expect("baseline missing batched_packets_per_sec");

    let mut failed = false;
    let mut check_drop = |name: &str, measured: f64, base: f64| {
        let floor = base * (1.0 - DROP_TOLERANCE);
        if measured < floor {
            eprintln!(
                "FAIL: {name} throughput {measured:.0} packets/s is more than {:.0}% below \
                 the baseline {base:.0} packets/s (floor {floor:.0})",
                DROP_TOLERANCE * 100.0
            );
            failed = true;
        }
    };
    check_drop("batched", batched, base_batched);
    // Older baselines predate the spsc field; the machine-independent
    // ring floor below still gates the ring path there.
    if let Some(base_spsc) = json_f64(&text, "spsc_packets_per_sec") {
        check_drop("spsc", spsc, base_spsc);
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: batched/legacy speedup {speedup:.2}x is below the {SPEEDUP_FLOOR:.1}x floor"
        );
        failed = true;
    }
    if ring_speedup < RING_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: ring/mutex link speedup {ring_speedup:.2}x \
             ({link_spsc:.0} vs {link_mutex:.0} packets/s per-packet) is below the \
             {RING_SPEEDUP_FLOOR:.1}x floor"
        );
        failed = true;
    }
    if shm_supported() && shm < tcp * SHM_OVER_TCP_FLOOR {
        eprintln!(
            "FAIL: shm transport ({shm:.0} packets/s) does not beat loopback TCP \
             ({tcp:.0} packets/s)"
        );
        failed = true;
    }
    if sampled < batched_s * (1.0 - SAMPLING_TOLERANCE) {
        eprintln!(
            "FAIL: telemetry sampling costs {:.1}% of batched throughput \
             ({sampled:.0} vs {batched_s:.0} packets/s; tolerance {:.0}%)",
            sampling_cost * 100.0,
            SAMPLING_TOLERANCE * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: within {:.0}% of baseline ({base_batched:.0} packets/s batched), above the \
         {SPEEDUP_FLOOR:.1}x batched and {RING_SPEEDUP_FLOOR:.1}x ring speedup floors, \
         shm beats loopback TCP, and sampling within {:.0}%",
        DROP_TOLERANCE * 100.0,
        SAMPLING_TOLERANCE * 100.0
    );
}
