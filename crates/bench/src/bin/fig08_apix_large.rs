//! Reproduces Figure 08 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig08().print();
}
