//! Reproduces Figure 08 of the paper. See EXPERIMENTS.md.
//! Supports `CGP_TRACE=<path>` / `--trace-out <path>` / `--explain`
//! (see `cgp_bench::harness`).
use cgp_bench::harness::{DialectApp, Obs};

fn main() {
    let obs = Obs::init();
    if obs.net_mode(DialectApp::Apix) {
        return;
    }
    cgp_bench::figures::fig08().print();
    obs.compiler_demo(DialectApp::Apix);
    obs.finish();
}
