//! Reproduces Figure 11 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig11().print();
}
