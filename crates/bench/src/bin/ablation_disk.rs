//! Ablation: the storage model. With data on 2003-era disks at the data
//! nodes, reading dominates both versions and the decomposition gain
//! compresses — the regime the headline figures avoid by keeping datasets
//! memory-resident (as the paper's repeated-run measurements would).

use cgp_bench::workloads::iso_variant;
use cgp_bench::{env, grid_with_bandwidth};
use cgp_core::apps::isosurface::{IsoVersion, Renderer};
use cgp_core::{simulate_variant, DISK_BANDWIDTH};

fn main() {
    println!("zbuf small dataset, 1-1-1, memory-resident vs disk-resident data:\n");
    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "storage", "Default(s)", "Decomp(s)", "gain"
    );
    for disk in [false, true] {
        let base = grid_with_bandwidth(1, env::ISO_BANDWIDTH);
        let grid = if disk {
            base.with_stage0_disk(DISK_BANDWIDTH)
        } else {
            base
        };
        let d = simulate_variant(
            &mut iso_variant(false, Renderer::ZBuffer, IsoVersion::Default),
            &grid,
        );
        let c = simulate_variant(
            &mut iso_variant(false, Renderer::ZBuffer, IsoVersion::Decomp),
            &grid,
        );
        assert_eq!(d.result_digest, c.result_digest);
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>7.1}%",
            if disk { "disk 35 MB/s" } else { "memory" },
            d.makespan,
            c.makespan,
            (d.makespan / c.makespan - 1.0) * 100.0
        );
    }
}
