//! Reproduces Figure 12 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig12().print();
}
