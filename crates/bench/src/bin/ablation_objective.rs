//! Ablation: the paper's per-packet-latency DP vs the steady-state
//! (bottleneck) objective vs the Default placement, evaluated under the
//! paper's §4.3 total-time formula on all four dialect applications.

use cgp_compiler::decompose::stage_times;
use cgp_core::apps::dialect::{APIX_SRC, KNN_SRC, VMSCOPE_SRC, ZBUF_SRC};
use cgp_core::{compile, CompileOptions, Decomposition, Objective, PipelineEnv};

fn options(app: &str) -> CompileOptions {
    let env = PipelineEnv::uniform(3, 1e8, 1e8, 2e-5);
    match app {
        "zbuf" | "apix" => CompileOptions::new(env, 4096)
            .with_symbol("ncubes", 262_144)
            .with_symbol("screen", 512)
            .with_selectivity(0, 0.08),
        "knn" => CompileOptions::new(env, 16_384)
            .with_symbol("npoints", 1_000_000)
            .with_symbol("k", 3),
        "vmscope" => CompileOptions::new(env, 32)
            .with_symbol("height", 2048)
            .with_symbol("width", 2048)
            .with_symbol("subsample", 8)
            .with_selectivity(0, 0.125),
        _ => unreachable!(),
    }
}

fn main() {
    const N_PACKETS: u64 = 64;
    println!("predicted total time (s) over {N_PACKETS} packets, m = 3, formula of §4.3\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "app", "Default", "latency DP", "steady-state"
    );
    for (app, src) in [
        ("zbuf", ZBUF_SRC),
        ("apix", APIX_SRC),
        ("knn", KNN_SRC),
        ("vmscope", VMSCOPE_SRC),
    ] {
        let base = options(app);
        let latency = compile(src, &base.clone()).expect("latency compile");
        let steady = compile(
            src,
            &base.clone().with_objective(Objective::SteadyState {
                n_packets: N_PACKETS,
            }),
        )
        .expect("steady compile");
        let n_tasks = latency.problem.n_tasks();
        let default = Decomposition::default_style(n_tasks, 3);
        let eval = |c: &cgp_core::Compiled, d: &Decomposition| {
            stage_times(&c.problem, &c.pipeline, &d.unit_of).total_time(N_PACKETS)
        };
        let t_def = eval(&latency, &default);
        let t_lat = eval(&latency, &latency.plan.decomposition);
        let t_ste = eval(&steady, &steady.plan.decomposition);
        println!("{app:<10} {t_def:>14.4} {t_lat:>14.4} {t_ste:>14.4}");
        assert!(t_ste <= t_def * (1.0 + 1e-9));
        assert!(t_ste <= t_lat * (1.0 + 1e-9));
    }
    println!("\nsteady-state never loses to either alternative under this formula ✓");
}
