//! Ablation: adapting the decomposition when the environment changes at
//! runtime (the paper's future work: "an environment where available
//! compute and communication resources can change at runtime").
//!
//! Scenario (z-buffer isosurface): during phase 1 the data host is shared
//! with another job (its available power drops 6×) while the network is
//! fast — the Default placement wins because it keeps the loaded data host
//! down to reading slabs. In phase 2 the data host frees up but the link
//! collapses — the compiler's decomposition wins because only crossing
//! cubes travel. Re-decomposing at the switch beats both static choices.

use cgp_core::apps::isosurface::{IsoPipeline, IsoVersion, Renderer, ScalarGrid, ISOVALUE};
use cgp_core::apps::profile::{run_all_min, to_sim_packets};
use cgp_core::grid::{simulate_phased, GridConfig, LinkSpec, PacketWork, Phase};
use cgp_core::{CALIBRATION, PENTIUM_SLOWDOWN};

fn grid(bandwidth: f64, data_host_share: f64) -> GridConfig {
    let mut g = GridConfig::w_w_1(
        1,
        CALIBRATION / PENTIUM_SLOWDOWN,
        LinkSpec {
            bandwidth,
            latency: 2.0e-5,
        },
    );
    for h in &mut g.stages[0].hosts {
        h.power *= data_host_share;
    }
    g
}

fn halves(version: IsoVersion) -> (Vec<PacketWork>, Vec<PacketWork>) {
    let mut v = IsoPipeline::new(
        ScalarGrid::synthetic(96, 96, 96, 20030517),
        ISOVALUE,
        64,
        512,
        Renderer::ZBuffer,
        version,
        "adaptive",
    );
    let (profiles, _) = run_all_min(&mut v, 3);
    let packets = to_sim_packets(&profiles, CALIBRATION);
    let half = packets.len() / 2;
    (packets[..half].to_vec(), packets[half..].to_vec())
}

fn main() {
    // Phase 1: loaded data host (1/6 power), fast link. Phase 2: idle data
    // host, collapsed link.
    let (phase1, phase2) = (grid(2.0e8, 1.0 / 6.0), grid(5.0e6, 1.0));
    let (def_a, def_b) = halves(IsoVersion::Default);
    let (dec_a, dec_b) = halves(IsoVersion::Decomp);
    let penalty = 0.01; // drain + re-place filters

    let zbuf_bytes = 512.0 * 512.0 * 8.0;
    let run = |a: &[PacketWork], b: &[PacketWork], switch: bool| {
        simulate_phased(
            &[
                Phase {
                    grid: phase1.clone(),
                    packets: a.to_vec(),
                },
                Phase {
                    grid: phase2.clone(),
                    packets: b.to_vec(),
                },
            ],
            &[switch],
            if switch { penalty } else { 0.0 },
            &[0.0, zbuf_bytes],
        )
        .makespan
    };
    let static_default = run(&def_a, &def_b, false);
    let static_decomp = run(&dec_a, &dec_b, false);
    let adaptive = run(&def_a, &dec_b, true);

    println!("zbuf 96^3: phase 1 = loaded data host + 200 MB/s; phase 2 = idle host + 5 MB/s\n");
    println!("  static Default         : {static_default:.4} s");
    println!("  static Decomp          : {static_decomp:.4} s");
    println!("  adaptive (re-decompose): {adaptive:.4} s  (includes {penalty}s redeploy)");
    let best_static = static_default.min(static_decomp);
    println!(
        "\nadaptive vs best static: {:.1}% faster",
        (best_static / adaptive - 1.0) * 100.0
    );
    assert!(
        adaptive < best_static,
        "adaptation must beat both static choices in this scenario"
    );
}
