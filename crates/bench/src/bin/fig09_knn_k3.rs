//! Reproduces Figure 09 of the paper. See EXPERIMENTS.md.
fn main() {
    cgp_bench::figures::fig09().print();
}
