//! Observability wiring shared by the figure binaries.
//!
//! Every figure binary accepts:
//!
//! - `CGP_TRACE=<path>` (env) or `--trace-out <path>` (flag, wins over the
//!   env var) — write a Chrome `trace_event` JSON file covering the run:
//!   the virtual-time simulator timeline, the seven compiler phases of the
//!   matching dialect program, and a real threaded DataCutter execution of
//!   its compiled plan (per-filter-copy spans, per-packet events);
//! - `--explain` — print the compiler's decision report for the matching
//!   dialect program: candidate boundary graph, per-boundary
//!   Gen/Cons/ReqComm byte volumes, every candidate decomposition's cost,
//!   and why the winner won;
//! - `CGP_FAULTS=<spec>` (env) or `--faults <spec>` (flag, wins) — inject
//!   deterministic faults into the threaded demo run (see
//!   [`cgp_core::datacutter::FaultPlan::parse`] for the spec grammar),
//!   plus `CGP_DEADLINE_MS`/`--deadline-ms`, `CGP_STALL_MS` and
//!   `CGP_RETRIES` for the matching watchdog/retry knobs;
//! - `CGP_RECOVER=1` (env) or `--recover` (flag) — mask the injected
//!   faults with checkpointed restarts and ack/replay delivery, with
//!   `CGP_CHECKPOINT_EVERY`/`--checkpoint-every` controlling commit
//!   frequency; if a stage still exhausts its restart budget, the
//!   harness replans the decomposition over the surviving units with the
//!   cost model and re-runs (`[obs] failover: ...`).
//!
//! When none is given the binaries run exactly as before — no sink is
//! installed and the tracing hooks reduce to one relaxed atomic load.

use cgp_compiler::calibrate::CalibrationReport;
use cgp_compiler::decompose::decompose_dp;
use cgp_compiler::failover::replan;
use cgp_core::apps::dialect::{
    iso_host_env, knn_host_env, vmscope_host_env, APIX_SRC, KNN_SRC, VMSCOPE_SRC, ZBUF_SRC,
};
use cgp_core::apps::isosurface::ScalarGrid;
use cgp_core::apps::vmscope::Slide;
use cgp_core::datacutter::{
    decode_telemetry_payload, shm_dir, shm_supported, FaultPlan, RunControl, ShmIngress,
    DEFAULT_SHM_CAPACITY, SHM_PREFIX,
};
use cgp_core::{
    compile, run_plan_threaded_stats, run_plan_worker_io, CompileOptions, Compiled, CoreError,
    ExecOptions, NetRole, PipelineEnv, WorkerIngress,
};
use cgp_obs::metrics::MetricsRegistry;
use cgp_obs::telemetry::{TelemetrySample, TelemetrySampler};
use cgp_obs::trace::{self, TraceEvent};
use cgp_obs::{ChromeTraceSink, Json, TraceSink};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Command-line options shared by every figure binary — one parser so the
/// binaries cannot drift apart in flag spelling or precedence. Supports
/// both `--flag value` and `--flag=value`; unrecognized arguments are
/// ignored (figures keep their own flags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommonOpts {
    pub explain: bool,
    pub trace_path: Option<String>,
    pub faults_spec: Option<String>,
    pub deadline_ms: Option<u64>,
    /// `--recover`: mask injected faults with checkpoint/replay restarts.
    pub recover: bool,
    /// `--checkpoint-every <k>`: packets between checkpoint commits.
    pub checkpoint_every: Option<u64>,
    /// `--role <local|launcher|worker:<stage>>`: how this process
    /// participates in a distributed run (see [`cgp_core::NetRole`]).
    pub role: Option<String>,
    /// `--listen <host:port>`: worker ingress bind address (port 0 picks
    /// a free port, announced as `CGP_LISTENING <port>` on stdout).
    pub listen: Option<String>,
    /// `--connect <host:port>`: downstream worker's listener address.
    pub connect: Option<String>,
    /// `--transport <shm|tcp>`: data plane between co-located workers in
    /// launcher mode (default: shared memory when supported, else TCP).
    pub transport: Option<String>,
    /// `--status-every <ms>`: sample in-flight telemetry at this cadence
    /// (live status line on stderr, latency percentiles, calibration).
    /// `0` disables in-flight sampling.
    pub status_every_ms: Option<u64>,
    /// `--telemetry-log <path>`: append telemetry samples (merged across
    /// workers in launcher mode) as JSON lines.
    pub telemetry_log: Option<String>,
    /// `--checkpoint-dir <path>`: persist checkpoint commits as durable,
    /// crash-consistent snapshot files a freshly exec'd replacement
    /// process can restore.
    pub checkpoint_dir: Option<String>,
    /// `--heartbeat-ms <ms>`: heartbeat cadence on idle distributed
    /// links, so a silently hung peer trips a liveness deadline instead
    /// of stalling the run. `0` disables.
    pub heartbeat_ms: Option<u64>,
    /// `--max-worker-restarts <n>`: per-stage crash budget for the
    /// supervised launcher; exhaustion triggers cost-model failover.
    pub max_worker_restarts: Option<u32>,
    /// `--autoscale <spec>`: elastic copy-width autoscaling — `on` for
    /// defaults, or `key=value` pairs (`max`, `grow`, `shrink`,
    /// `cooldown`, `escalate`). Rides the telemetry sampler clock.
    pub autoscale: Option<String>,
    /// `--max-copies <n>`: override the autoscaler's copy-count ceiling
    /// (inert without `--autoscale`).
    pub max_copies: Option<usize>,
}

/// Parse the shared flags out of an argument stream.
pub fn parse_common_opts(args: impl IntoIterator<Item = String>) -> CommonOpts {
    let mut o = CommonOpts::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--explain" => o.explain = true,
            "--recover" => o.recover = true,
            "--trace-out" => o.trace_path = args.next(),
            "--faults" => o.faults_spec = args.next(),
            "--deadline-ms" => o.deadline_ms = args.next().and_then(|v| v.parse().ok()),
            "--checkpoint-every" => o.checkpoint_every = args.next().and_then(|v| v.parse().ok()),
            "--role" => o.role = args.next(),
            "--listen" => o.listen = args.next(),
            "--connect" => o.connect = args.next(),
            "--transport" => o.transport = args.next(),
            "--status-every" => o.status_every_ms = args.next().and_then(|v| v.parse().ok()),
            "--telemetry-log" => o.telemetry_log = args.next(),
            "--checkpoint-dir" => o.checkpoint_dir = args.next(),
            "--heartbeat-ms" => o.heartbeat_ms = args.next().and_then(|v| v.parse().ok()),
            "--max-worker-restarts" => {
                o.max_worker_restarts = args.next().and_then(|v| v.parse().ok())
            }
            "--autoscale" => o.autoscale = args.next(),
            "--max-copies" => o.max_copies = args.next().and_then(|v| v.parse().ok()),
            _ => {
                if let Some(p) = a.strip_prefix("--trace-out=") {
                    o.trace_path = Some(p.to_string());
                } else if let Some(s) = a.strip_prefix("--faults=") {
                    o.faults_spec = Some(s.to_string());
                } else if let Some(d) = a.strip_prefix("--deadline-ms=") {
                    o.deadline_ms = d.parse().ok();
                } else if let Some(k) = a.strip_prefix("--checkpoint-every=") {
                    o.checkpoint_every = k.parse().ok();
                } else if let Some(r) = a.strip_prefix("--role=") {
                    o.role = Some(r.to_string());
                } else if let Some(l) = a.strip_prefix("--listen=") {
                    o.listen = Some(l.to_string());
                } else if let Some(c) = a.strip_prefix("--connect=") {
                    o.connect = Some(c.to_string());
                } else if let Some(t) = a.strip_prefix("--transport=") {
                    o.transport = Some(t.to_string());
                } else if let Some(s) = a.strip_prefix("--status-every=") {
                    o.status_every_ms = s.parse().ok();
                } else if let Some(t) = a.strip_prefix("--telemetry-log=") {
                    o.telemetry_log = Some(t.to_string());
                } else if let Some(d) = a.strip_prefix("--checkpoint-dir=") {
                    o.checkpoint_dir = Some(d.to_string());
                } else if let Some(h) = a.strip_prefix("--heartbeat-ms=") {
                    o.heartbeat_ms = h.parse().ok();
                } else if let Some(r) = a.strip_prefix("--max-worker-restarts=") {
                    o.max_worker_restarts = r.parse().ok();
                } else if let Some(s) = a.strip_prefix("--autoscale=") {
                    o.autoscale = Some(s.to_string());
                } else if let Some(n) = a.strip_prefix("--max-copies=") {
                    o.max_copies = n.parse().ok();
                }
            }
        }
    }
    o
}

/// Which dialect program matches the figure being run.
#[derive(Debug, Clone, Copy)]
pub enum DialectApp {
    Zbuf,
    Apix,
    Knn { k: i64 },
    Vmscope,
}

/// Forwards to the Chrome sink while accumulating a per-phase timing
/// summary of the compiler spans.
struct SummarySink {
    inner: ChromeTraceSink,
    phases: Mutex<Vec<(String, f64)>>,
}

impl TraceSink for SummarySink {
    fn record(&self, event: TraceEvent) {
        if event.ph == 'X' && event.cat == "compiler-phase" {
            self.phases
                .lock()
                .unwrap()
                .push((event.name.clone(), event.dur_us));
        }
        self.inner.record(event);
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Per-run observability state for a figure binary.
pub struct Obs {
    explain: bool,
    trace_path: Option<String>,
    sink: Option<Arc<SummarySink>>,
    exec: ExecOptions,
    chaos: bool,
    /// Telemetry plane requested (`--status-every`/`--telemetry-log` or
    /// their env forms): sample in-flight state, report latency
    /// percentiles, and calibrate the cost model post-run.
    telemetry: bool,
}

impl Obs {
    /// Parse `--trace-out`/`--explain`/`--faults`/`--deadline-ms` from the
    /// command line and `CGP_TRACE`/`CGP_FAULTS`/`CGP_DEADLINE_MS`/
    /// `CGP_STALL_MS`/`CGP_RETRIES` from the environment; install the
    /// trace sink if tracing is asked for.
    pub fn init() -> Obs {
        let opts = parse_common_opts(std::env::args().skip(1));
        let explain = opts.explain;
        let trace_path = opts
            .trace_path
            .or_else(|| std::env::var(trace::TRACE_ENV).ok());
        let mut exec = ExecOptions::from_env()
            .unwrap_or_else(|e| panic!("bad fault-injection environment: {e}"));
        if let Some(spec) = &opts.faults_spec {
            exec.faults =
                FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad --faults spec: {e}"));
        }
        if let Some(ms) = opts.deadline_ms {
            exec.deadline = Some(Duration::from_millis(ms));
        }
        if opts.recover {
            exec.recover = true;
        }
        if opts.checkpoint_every.is_some() {
            exec.checkpoint_every = opts.checkpoint_every;
        }
        if let Some(role) = &opts.role {
            exec.role =
                ExecOptions::parse_role(role).unwrap_or_else(|e| panic!("bad --role spec: {e}"));
        }
        if opts.listen.is_some() {
            exec.listen = opts.listen;
        }
        if opts.connect.is_some() {
            exec.connect = opts.connect;
        }
        if let Some(t) = &opts.transport {
            if t != "shm" && t != "tcp" {
                panic!("bad --transport value `{t}`: expected `shm` or `tcp`");
            }
            exec.transport = opts.transport.clone();
        }
        if let Some(ms) = opts.status_every_ms {
            // `0` is an explicit off switch for in-flight sampling, not
            // a "fastest possible" cadence.
            exec.status_every = Some(Duration::from_millis(ms));
        }
        if opts.telemetry_log.is_some() {
            exec.telemetry_log = opts.telemetry_log;
        }
        if opts.checkpoint_dir.is_some() {
            exec.checkpoint_dir = opts.checkpoint_dir;
        }
        if let Some(ms) = opts.heartbeat_ms {
            // `0` is an explicit off switch, mirroring `CGP_HEARTBEAT_MS`.
            exec.heartbeat = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if opts.max_worker_restarts.is_some() {
            exec.max_worker_restarts = opts.max_worker_restarts;
        }
        if let Some(spec) = &opts.autoscale {
            // Fail at startup on a typo, not mid-run inside a worker.
            cgp_core::datacutter::AutoscaleConfig::parse(spec)
                .unwrap_or_else(|e| panic!("bad --autoscale spec: {e}"));
            exec.autoscale = opts.autoscale.clone();
        }
        if opts.max_copies.is_some() {
            exec.max_copies = opts.max_copies;
        }
        let chaos = !exec.faults.is_empty() || exec.deadline.is_some();
        // `--status-every 0` means sampling is explicitly disabled; only
        // a positive cadence (or a log sink) brings up the telemetry
        // plane.
        let sampling = exec.sampling_enabled();
        let telemetry = sampling || exec.telemetry_log.is_some();
        let sink = trace_path.as_ref().map(|p| {
            let inner = ChromeTraceSink::create(p)
                .unwrap_or_else(|e| panic!("cannot create trace file {p}: {e}"));
            let sink = Arc::new(SummarySink {
                inner,
                phases: Mutex::new(Vec::new()),
            });
            trace::install_sink(sink.clone());
            sink
        });
        Obs {
            explain,
            trace_path,
            sink,
            exec,
            chaos,
            telemetry,
        }
    }

    fn active(&self) -> bool {
        self.explain || self.sink.is_some() || self.chaos || self.telemetry
    }

    /// Handle a distributed role (`--role`/`CGP_ROLE`), if one was
    /// requested. Returns `true` when this process acted as a worker or
    /// launcher for `app` — the figure binary should return immediately,
    /// because a worker's stdout is part of the distributed protocol
    /// (`CGP_LISTENING <port>` followed by the last stage's result
    /// lines). Returns `false` for the default local role.
    pub fn net_mode(&self, app: DialectApp) -> bool {
        match self.exec.role {
            NetRole::Local => false,
            NetRole::Worker(stage) => {
                self.run_as_worker(app, stage);
                true
            }
            NetRole::Launcher => {
                self.run_as_launcher(app);
                true
            }
        }
    }

    /// Execute one stage of `app`'s demo plan as a distributed worker.
    /// Everything informational goes to stderr; stdout carries only the
    /// protocol marker and (for the last stage) the result lines.
    fn run_as_worker(&self, app: DialectApp, stage: usize) {
        let (name, src, opts) = demo_config(app);
        let compiled = compile(src, &opts).unwrap_or_else(|e| {
            eprintln!("[obs] worker {stage}: dialect compile failed for {name}: {e}");
            std::process::exit(1);
        });
        let m = compiled.plan.m;
        let ingress = (stage > 0).then(|| {
            let addr = self.exec.listen.as_deref().unwrap_or("127.0.0.1:0");
            if let Some(base) = addr.strip_prefix(SHM_PREFIX) {
                if !shm_supported() {
                    eprintln!(
                        "[obs] worker {stage}: transport `shm` requested but this build \
                         has no shared-memory support (shm_supported() is false)"
                    );
                    std::process::exit(1);
                }
                // Shared-memory ingress: create the ring(s) before
                // announcing, so a producer that attaches right after
                // the marker finds them. Worker-mode plans spec one copy
                // per stage, but under autoscale an interior upstream
                // stage is provisioned at the copy cap and each of its
                // copies owns an egress writer — the ring count must
                // match that provisioned width, not the spec width.
                let base = if base.is_empty() || base == "auto" {
                    shm_dir()
                        .join(format!("cgp-{name}-{}-l{stage}", std::process::id()))
                        .display()
                        .to_string()
                } else {
                    base.to_string()
                };
                let producers = self
                    .exec
                    .provisioned_width(stage - 1, m, 1)
                    .unwrap_or_else(|e| {
                        eprintln!("[obs] worker {stage}: bad autoscale spec: {e}");
                        std::process::exit(1);
                    });
                let shm = ShmIngress::create(&base, producers, DEFAULT_SHM_CAPACITY, None)
                    .unwrap_or_else(|e| {
                        eprintln!("[obs] worker {stage}: cannot create shm rings at {base}: {e}");
                        std::process::exit(1);
                    });
                println!(
                    "{} {SHM_PREFIX}{}",
                    crate::launcher::LISTENING_MARKER,
                    shm.base()
                );
                let _ = std::io::stdout().flush();
                WorkerIngress::Shm(shm)
            } else {
                let l = TcpListener::bind(addr).unwrap_or_else(|e| {
                    eprintln!("[obs] worker {stage}: cannot bind {addr}: {e}");
                    std::process::exit(1);
                });
                let port = l
                    .local_addr()
                    .expect("bound listener has an address")
                    .port();
                println!("{} {port}", crate::launcher::LISTENING_MARKER);
                let _ = std::io::stdout().flush();
                WorkerIngress::Tcp(l)
            }
        });
        match run_plan_worker_io(
            Arc::new(compiled.plan),
            demo_host_builder(app),
            stage,
            ingress,
            self.exec.connect.clone(),
            None,
            &self.exec,
        ) {
            Ok((out, stats)) => {
                for line in &out {
                    println!("{line}");
                }
                let net: Vec<String> = stats
                    .net_links
                    .iter()
                    .map(|(l, st)| format!("link {l}: {} frames, {} bytes", st.frames, st.bytes))
                    .collect();
                if self.exec.recover && stats.recoveries() > 0 {
                    eprintln!(
                        "[obs] worker {stage}/{m} for {name} recovered: {} restarts, \
                         {} replayed packets",
                        stats.recoveries(),
                        stats.replayed_packets()
                    );
                }
                eprintln!(
                    "[obs] worker {stage}/{m} for {name} finished ({})",
                    net.join("; ")
                );
            }
            Err(e) => {
                eprintln!("[obs] worker {stage}/{m} for {name} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Run `app`'s demo plan twice — in-process, then split one worker
    /// process per pipeline unit over loopback TCP — and fail loudly
    /// unless the outputs are byte-identical.
    fn run_as_launcher(&self, app: DialectApp) {
        let (name, src, opts) = demo_config(app);
        let compiled = compile(src, &opts).unwrap_or_else(|e| {
            eprintln!("[obs] launcher: dialect compile failed for {name}: {e}");
            std::process::exit(1);
        });
        let m = compiled.plan.m;
        // The reference run stays untelemetered — its output is the
        // byte-identity oracle, and the merged telemetry log belongs to
        // the distributed run being observed — and fixed-width: an
        // autoscaled distributed run must match the *static* plan's
        // output exactly, so the oracle must not scale itself.
        let mut reference_exec = self.exec.clone();
        reference_exec.status_every = None;
        reference_exec.telemetry_log = None;
        reference_exec.telemetry_addr = None;
        reference_exec.autoscale = None;
        let expected = match run_plan_threaded_stats(
            Arc::new(compiled.plan.clone()),
            demo_host_builder(app),
            None,
            &reference_exec,
        ) {
            Ok((out, _)) => out,
            Err(e) => {
                eprintln!("[obs] launcher: in-process reference run for {name} failed: {e}");
                std::process::exit(1);
            }
        };
        let passthrough =
            crate::launcher::strip_net_flags(&std::env::args().skip(1).collect::<Vec<_>>());
        let aggregator = self
            .telemetry
            .then(|| TelemetryAggregator::start(m, &self.exec));
        let telemetry_addr = aggregator.as_ref().map(|a| a.addr.clone());
        let transport = crate::launcher::Transport::select(self.exec.transport.as_deref());
        eprintln!("[obs] launcher: data plane is {transport:?}");
        // Supervision rides on the recovery switch: with `--recover` the
        // launcher masks worker crashes with prefix restarts; without it
        // a dead worker fails the run, exactly as before.
        let mut lopts = crate::launcher::LaunchOptions::new(transport);
        lopts.telemetry = telemetry_addr.clone();
        lopts.supervise = self.exec.recover;
        if let Some(n) = self.exec.max_worker_restarts {
            lopts.max_worker_restarts = n;
        }
        lopts.heartbeat_ms = self.exec.heartbeat.map(|d| (d.as_millis() as u64).max(1));
        lopts.checkpoint_dir = self.exec.checkpoint_dir.clone();
        let got = match crate::launcher::launch_supervised(m, &passthrough, &lopts) {
            Ok(report) => {
                if report.restart_events > 0 {
                    eprintln!(
                        "[obs] launcher: masked {} worker crash(es) with prefix restarts \
                         ({} total restarts)",
                        report.restart_events,
                        report.total_restarts()
                    );
                }
                report.lines
            }
            Err(crate::launcher::LaunchError::BudgetExhausted {
                stage,
                restarts,
                last,
            }) => {
                // Worker-mode plans run one pipeline unit per stage, so
                // the dead stage index *is* the dead unit: treat its host
                // as lost, replan the decomposition over the survivors
                // with the cost model, and re-run in-process.
                if let Some(agg) = aggregator {
                    agg.finish(name, &compiled);
                }
                println!(
                    "[obs] chaos run for {name} exhausted restarts: worker stage {stage} \
                     kept dying after {restarts} masked restart(s) (last exit: {last})"
                );
                match self.failover_replan_run(
                    name,
                    src,
                    &opts,
                    &compiled,
                    demo_host_builder(app),
                    stage,
                ) {
                    Some(out) if out == expected => {
                        println!(
                            "[obs] distributed run for {name} failed over to a replanned \
                             in-process run; output matches ({} lines)",
                            out.len()
                        );
                        return;
                    }
                    Some(out) => {
                        eprintln!(
                            "[obs] launcher: failover output diverges for {name}: expected \
                             {expected:?}, got {out:?}"
                        );
                        std::process::exit(1);
                    }
                    None => std::process::exit(1),
                }
            }
            Err(e) => {
                eprintln!("[obs] launcher: distributed run for {name} failed: {e}");
                std::process::exit(1);
            }
        };
        if let Some(agg) = aggregator {
            agg.finish(name, &compiled);
        }
        if got != expected {
            eprintln!(
                "[obs] launcher: distributed output diverges from the in-process run for \
                 {name}: expected {expected:?}, got {got:?}"
            );
            std::process::exit(1);
        }
        println!(
            "[obs] distributed run for {name} across {m} workers matches the in-process \
             run ({} output lines)",
            got.len()
        );
    }

    /// Compile (and, when tracing, execute on real threads) the dialect
    /// program matching this figure, on a demo-sized workload. Emits the
    /// seven compiler phase spans, the decision report, and the runtime's
    /// per-filter spans into the trace; prints the report with `--explain`.
    pub fn compiler_demo(&self, app: DialectApp) {
        if !self.active() {
            return;
        }
        let (name, src, opts) = demo_config(app);
        let compiled = match compile(src, &opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("[obs] dialect compile failed for {name}: {e}");
                return;
            }
        };
        if self.explain {
            println!("--- {name}: compiler decision report ---");
            print!("{}", compiled.report.render_text());
        }
        if self.sink.is_some() || self.chaos || self.telemetry {
            let builder = demo_host_builder(app);
            let plan = Arc::new(compiled.plan.clone());
            let mut exec = self.exec.clone();
            let registry = self.telemetry.then(|| {
                let reg = Arc::new(Mutex::new(MetricsRegistry::default()));
                exec.metrics = Some(Arc::clone(&reg));
                reg
            });
            match run_plan_threaded_stats(plan, Arc::clone(&builder), None, &exec) {
                Ok((out, stats)) => {
                    if let Some(reg) = &registry {
                        let reg = reg.lock().unwrap_or_else(|e| e.into_inner());
                        match CalibrationReport::from_run(&compiled.report, &reg) {
                            Some(cal) => {
                                println!("--- {name}: cost-model calibration ---");
                                print!("{}", cal.render_text());
                            }
                            None => eprintln!("[obs] no telemetry recorded for {name}"),
                        }
                    }
                    if self.chaos {
                        println!("[obs] chaos run for {name} completed despite injection");
                        if self.exec.recover {
                            println!(
                                "[obs] recovery: {} restarts, {} replayed packets, \
                                 {} checkpoints ({} bytes)",
                                stats.recoveries(),
                                stats.replayed_packets(),
                                stats.checkpoints(),
                                stats.checkpoint_bytes()
                            );
                        }
                    }
                    if stats.autoscale.escalation.is_some() {
                        self.escalation_rerun(
                            name,
                            src,
                            &opts,
                            &compiled,
                            Arc::clone(&builder),
                            &stats,
                            &out,
                        );
                    }
                }
                Err(e) => {
                    if self.chaos && self.exec.recover {
                        // Restart budget exhausted on some unit: treat the
                        // unit's host as dead, replan over the survivors
                        // with the cost model, and re-run from checkpoints.
                        println!("[obs] chaos run for {name} exhausted restarts: {e}");
                        self.failover_rerun(name, src, &opts, &compiled, builder, &e);
                    } else if self.chaos {
                        // Under injection a structured failure is the
                        // expected outcome — report it, don't die.
                        println!("[obs] chaos run for {name} failed as injected: {e}");
                    } else {
                        eprintln!("[obs] threaded demo run failed for {name}: {e}");
                    }
                }
            }
        }
    }

    /// Cost-model-driven failover: map the failed stage label back to a
    /// pipeline unit, drop that unit from the environment, re-run the
    /// decomposition DP over the survivors, recompile, and re-run. The
    /// fault plan stays armed — the recovery layer masks it on the new
    /// placement, so a completed re-run really demonstrates end-to-end
    /// self-healing.
    fn failover_rerun(
        &self,
        name: &str,
        src: &str,
        copts: &CompileOptions,
        compiled: &Compiled,
        builder: cgp_core::HostBuilder,
        err: &CoreError,
    ) {
        let Some(dead) = dead_unit_of(err) else {
            println!("[obs] failover: cannot identify a dead unit in `{err}`; giving up");
            return;
        };
        let _ = self.failover_replan_run(name, src, copts, compiled, builder, dead);
    }

    /// Drop pipeline unit `dead` from the environment, re-run the
    /// decomposition DP over the survivors, recompile, and re-run
    /// in-process. Returns the re-run's output lines on success so the
    /// caller can diff them against a reference.
    fn failover_replan_run(
        &self,
        name: &str,
        src: &str,
        copts: &CompileOptions,
        compiled: &Compiled,
        builder: cgp_core::HostBuilder,
        dead: usize,
    ) -> Option<Vec<String>> {
        self.replan_run(name, src, copts, compiled, builder, dead, &self.exec)
    }

    /// The replan-and-rerun core shared by crash failover and autoscale
    /// escalation; `exec` lets the escalation path seed the re-run with
    /// carried busy time.
    #[allow(clippy::too_many_arguments)]
    fn replan_run(
        &self,
        name: &str,
        src: &str,
        copts: &CompileOptions,
        compiled: &Compiled,
        builder: cgp_core::HostBuilder,
        dead: usize,
        exec: &ExecOptions,
    ) -> Option<Vec<String>> {
        let current = decompose_dp(&compiled.problem, &compiled.pipeline);
        let plan = match replan(&compiled.problem, &compiled.pipeline, &current, dead) {
            Ok(p) => p,
            Err(e) => {
                println!("[obs] failover: {e}");
                return None;
            }
        };
        print!("[obs] {}", plan.render_text());
        let reduced = CompileOptions {
            pipeline: plan.env.clone(),
            ..copts.clone()
        };
        let recompiled = match compile(src, &reduced) {
            Ok(c) => c,
            Err(e) => {
                println!("[obs] failover recompile failed for {name}: {e}");
                return None;
            }
        };
        let mut exec = exec.clone();
        if !exec.busy_carry.is_empty() {
            // Remap carried busy time through the survivor index map
            // (satellite of the failover plan): unit widths may change
            // under the new decomposition, so each surviving unit's
            // carry is summed over its old copies — per-stage totals
            // stay monotone across the handover even though per-copy
            // identity does not survive a re-decomposition.
            let mut carry = vec![Vec::new(); plan.env.m()];
            for (j, per_copy) in exec.busy_carry.iter().enumerate() {
                if let Some(nj) = plan.surviving_index(j) {
                    carry[nj] = vec![per_copy.iter().sum::<Duration>()];
                }
            }
            exec.busy_carry = carry;
        }
        // The fault plan stays armed — the recovery layer masks it on
        // the new placement, so a completed re-run really demonstrates
        // end-to-end self-healing. (Process-level `CGP_KILL` specs only
        // arm in worker roles, so this in-process run can't shoot
        // itself.)
        match run_plan_threaded_stats(Arc::new(recompiled.plan), builder, None, &exec) {
            Ok((out, stats)) => {
                println!(
                    "[obs] failover run for {name} completed on {} units \
                     ({} restarts, {} replayed packets)",
                    plan.env.m(),
                    stats.recoveries(),
                    stats.replayed_packets()
                );
                Some(out)
            }
            Err(e) => {
                println!("[obs] failover run for {name} failed: {e}");
                None
            }
        }
    }

    /// Autoscale escalation: the controller saturated a stage at its
    /// copy cap and the backlog never relieved — widening cannot fix a
    /// decomposition that is structurally wrong for the observed costs.
    /// Map the advised stage label back to its pipeline unit, re-plan
    /// the decomposition around it with the same cost-model replanner
    /// the crash-failover path uses, and re-run in-process seeded with
    /// the busy time already accumulated, diffing the output against
    /// the first run: re-decomposition must be invisible in the bytes.
    #[allow(clippy::too_many_arguments)]
    fn escalation_rerun(
        &self,
        name: &str,
        src: &str,
        copts: &CompileOptions,
        compiled: &Compiled,
        builder: cgp_core::HostBuilder,
        stats: &cgp_core::datacutter::RunStats,
        expected: &[String],
    ) {
        let Some(advice) = stats.autoscale.escalation.as_deref() else {
            return;
        };
        let Some(unit) = unit_of_stage_label(advice) else {
            println!("[obs] autoscale: cannot map escalated stage `{advice}` to a pipeline unit");
            return;
        };
        println!(
            "[obs] autoscale: {advice} stayed the bottleneck at its copy cap \
             after {} grow(s); escalating to re-decomposition around unit {unit}",
            stats.autoscale.grows()
        );
        let mut exec = self.exec.clone();
        exec.busy_carry = stats
            .stages
            .iter()
            .map(|s| s.busy_per_copy.clone())
            .collect();
        match self.replan_run(name, src, copts, compiled, builder, unit, &exec) {
            Some(out) if out == expected => println!(
                "[obs] autoscale: re-decomposed run for {name} matches the elastic run \
                 ({} lines)",
                out.len()
            ),
            Some(out) => eprintln!(
                "[obs] autoscale: re-decomposed output diverges for {name}: expected \
                 {expected:?}, got {out:?}"
            ),
            None => {}
        }
    }

    /// Flush the trace (writes the Chrome JSON array) and print the
    /// phase-timing summary.
    pub fn finish(self) {
        let Some(sink) = self.sink else { return };
        trace::clear_sink();
        let phases = sink.phases.lock().unwrap();
        if !phases.is_empty() {
            println!("--- compiler phase timings ---");
            for (name, dur_us) in phases.iter() {
                println!("  {name:<12} {dur_us:>10.1} us");
            }
        }
        if let Some(p) = &self.trace_path {
            println!("trace written to {p} (open in Perfetto / chrome://tracing)");
        }
    }
}

/// Pre-restart cumulative busy time the aggregator carries for each
/// source: source → stage name → `busy_us_per_copy` at the moment the
/// source's connection died without a `fin`.
type BusyCarry = BTreeMap<String, BTreeMap<String, Vec<u64>>>;

/// Launcher-side telemetry aggregator: a TCP listener workers ship
/// `Telemetry` frames to, fanned into one JSONL log, one merged live
/// status line, and one cross-process registry for calibration.
struct TelemetryAggregator {
    /// Address workers connect to (bound before any worker is spawned —
    /// workers connect with a single attempt).
    addr: String,
    control: Arc<RunControl>,
    sampler: Arc<TelemetrySampler>,
    registries: Arc<Mutex<BTreeMap<String, MetricsRegistry>>>,
    /// Latest in-flight sample per live worker (entries retired on `fin`
    /// or disconnect, so a dead worker never lingers in the status line).
    latest: Arc<Mutex<BTreeMap<String, TelemetrySample>>>,
    /// `busy_us_per_copy` carried across a worker restart: a respawned
    /// process restarts its probes from zero, so without this fold the
    /// merged view's busy time would jump backwards mid-run.
    carry: Arc<Mutex<BusyCarry>>,
    handle: std::thread::JoinHandle<()>,
}

impl TelemetryAggregator {
    fn start(workers: usize, exec: &ExecOptions) -> TelemetryAggregator {
        let every = exec
            .status_every
            .filter(|d| *d > Duration::ZERO)
            .unwrap_or(Duration::from_millis(500));
        let mut sampler = TelemetrySampler::new(every);
        if let Some(path) = &exec.telemetry_log {
            sampler = sampler.with_log_path(path).unwrap_or_else(|e| {
                eprintln!("[obs] cannot create telemetry log {path}: {e}");
                std::process::exit(1);
            });
        }
        let sampler = Arc::new(sampler);
        let registries: Arc<Mutex<BTreeMap<String, MetricsRegistry>>> = Arc::default();
        let latest: Arc<Mutex<BTreeMap<String, TelemetrySample>>> = Arc::default();
        let carry: Arc<Mutex<BusyCarry>> = Arc::default();
        // Worker connection id → source name, and the sources whose final
        // (`fin`) update arrived. A disconnect without a fin is a dead
        // worker: its stale sample must leave the status line, and its
        // partial registry snapshot must not pollute the merged
        // calibration (a restarted replacement re-reports from scratch).
        let sources: Arc<Mutex<BTreeMap<u32, String>>> = Arc::default();
        let finished: Arc<Mutex<std::collections::BTreeSet<String>>> = Arc::default();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
            eprintln!("[obs] cannot bind telemetry aggregator: {e}");
            std::process::exit(1);
        });
        let addr = listener.local_addr().expect("bound listener").to_string();
        let control = RunControl::new();
        let show_status = exec.sampling_enabled();
        let handle = {
            let control = Arc::clone(&control);
            let sampler = Arc::clone(&sampler);
            let registries = Arc::clone(&registries);
            let latest = Arc::clone(&latest);
            let carry = Arc::clone(&carry);
            let sources = Arc::clone(&sources);
            let finished = Arc::clone(&finished);
            std::thread::spawn(move || {
                let on_update = {
                    let latest = Arc::clone(&latest);
                    let registries = Arc::clone(&registries);
                    let carry = Arc::clone(&carry);
                    let sources = Arc::clone(&sources);
                    let finished = Arc::clone(&finished);
                    move |worker: u32, payload: Vec<u8>| {
                        let Ok(mut update) = decode_telemetry_payload(&payload) else {
                            return;
                        };
                        sources
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(worker, update.source.clone());
                        // Fold any carried pre-restart busy time into the
                        // incoming sample before it is logged or shown:
                        // the restarted process's probes start from zero,
                        // but the *source* has been busy since the run
                        // began, and the merged view must stay monotone.
                        if let Some(sample) = update.sample.as_mut() {
                            let carry = carry.lock().unwrap_or_else(|e| e.into_inner());
                            if let Some(per_stage) = carry.get(&update.source) {
                                for st in &mut sample.stages {
                                    let Some(prev) = per_stage.get(&st.stage) else {
                                        continue;
                                    };
                                    if prev.len() > st.busy_us_per_copy.len() {
                                        st.busy_us_per_copy.resize(prev.len(), 0);
                                    }
                                    for (b, p) in st.busy_us_per_copy.iter_mut().zip(prev) {
                                        *b += *p;
                                    }
                                }
                            }
                        }
                        if update.fin {
                            // The source finished for real — nothing left
                            // to carry into a future incarnation.
                            carry
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&update.source);
                            finished
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .insert(update.source.clone());
                            // The run is over — no in-flight state left
                            // to show for this worker.
                            latest
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&update.source);
                        }
                        if let Some(sample) = update.sample {
                            sampler.log_json(&sample.to_json());
                            if !update.fin {
                                let mut latest = latest.lock().unwrap_or_else(|e| e.into_inner());
                                latest.insert(update.source.clone(), sample);
                                if show_status {
                                    // One merged line for the whole
                                    // distributed pipeline: latest sample
                                    // per live worker, in stage order
                                    // (sources sort as worker:<k>).
                                    let line: Vec<String> =
                                        latest.values().map(|s| s.render_status_line()).collect();
                                    eprintln!("{}", line.join("  "));
                                }
                            }
                        }
                        if let Some(reg) = update.registry {
                            // Registry snapshots are cumulative: keep the
                            // latest per source, never sum successive ones.
                            registries
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .insert(update.source, reg);
                        }
                    }
                };
                let on_disconnect = move |worker: u32| {
                    let Some(source) = sources
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get(&worker)
                        .cloned()
                    else {
                        return;
                    };
                    let last = latest
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&source);
                    if !finished
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .contains(&source)
                    {
                        // A disconnect without a fin is a crash: the last
                        // sample we saw (already carry-folded) becomes
                        // the carry for the restarted replacement, so the
                        // source's cumulative busy time survives any
                        // number of restarts (replace, never add — the
                        // folded sample already includes earlier carry).
                        if let Some(sample) = last {
                            let mut carry = carry.lock().unwrap_or_else(|e| e.into_inner());
                            let per_stage = carry.entry(source.clone()).or_default();
                            for st in &sample.stages {
                                per_stage.insert(st.stage.clone(), st.busy_us_per_copy.clone());
                            }
                        }
                        let dropped = registries
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .remove(&source)
                            .is_some();
                        eprintln!(
                            "[obs] telemetry: {source} disconnected before finishing{}",
                            if dropped {
                                "; dropped its partial snapshot"
                            } else {
                                ""
                            }
                        );
                    }
                };
                let _ = cgp_core::datacutter::serve_telemetry_events(
                    listener,
                    workers,
                    Some(control),
                    on_update,
                    on_disconnect,
                );
            })
        };
        TelemetryAggregator {
            addr,
            control,
            sampler,
            registries,
            latest,
            carry,
            handle,
        }
    }

    /// Stop serving (the workers have exited), merge the per-worker
    /// registry snapshots, append the merged registry + calibration to
    /// the telemetry log, and print the calibration report.
    fn finish(self, name: &str, compiled: &Compiled) {
        self.control.cancel("distributed run complete");
        let _ = self.handle.join();
        let stale = self.latest.lock().unwrap_or_else(|e| e.into_inner());
        if !stale.is_empty() {
            let names: Vec<&str> = stale.keys().map(String::as_str).collect();
            eprintln!(
                "[obs] telemetry: worker(s) still marked live at shutdown: {}",
                names.join(", ")
            );
        }
        drop(stale);
        let carried = self.carry.lock().unwrap_or_else(|e| e.into_inner());
        if !carried.is_empty() {
            // Sources that died and were restarted mid-run: their busy
            // time was folded forward, so the log's view stayed monotone.
            eprintln!(
                "[obs] telemetry: carried busy time across restart(s) of: {}",
                carried.keys().cloned().collect::<Vec<_>>().join(", ")
            );
        }
        drop(carried);
        let registries = self.registries.lock().unwrap_or_else(|e| e.into_inner());
        if registries.is_empty() {
            eprintln!("[obs] telemetry: no worker snapshots received for {name}");
            return;
        }
        let mut merged = MetricsRegistry::default();
        for reg in registries.values() {
            merged.merge(reg);
        }
        let mut line = Json::obj();
        line.set("source", Json::Str("launcher".to_string()));
        line.set(
            "workers",
            Json::Arr(registries.keys().map(|k| Json::Str(k.clone())).collect()),
        );
        line.set("merged_registry", merged.to_wire_json());
        match CalibrationReport::from_run(&compiled.report, &merged) {
            Some(cal) => {
                line.set("calibration", cal.to_json());
                println!("--- {name}: cost-model calibration (distributed) ---");
                print!("{}", cal.render_text());
            }
            None => eprintln!("[obs] telemetry: merged registry for {name} is not calibratable"),
        }
        self.sampler.log_json(&line);
        println!(
            "[obs] telemetry: merged {} worker snapshot(s) for {name}",
            registries.len()
        );
    }
}

/// Demo-sized compile configuration per app (small workloads — these runs
/// exist to populate traces and reports, not to measure).
fn demo_config(app: DialectApp) -> (&'static str, &'static str, CompileOptions) {
    // knn and vmscope plan at the calibrated VM compute power (the engine
    // that actually runs their filter bodies; see
    // `cgp_compiler::cost::FilterEngine`). The iso programs stay on the
    // legacy conservative 1e8: their bodies are dominated by boxed
    // `cubes[c].vN` field reads, which both engines execute well below
    // the calibrated standard-op rate — raising their planning power
    // would widen, not shrink, their calibration residuals.
    let vm_power = cgp_compiler::cost::FilterEngine::Vm.power();
    match app {
        DialectApp::Zbuf => (
            "zbuf",
            ZBUF_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
                .with_symbol("ncubes", 343)
                .with_symbol("screen", 16)
                .with_selectivity(0, 0.15),
        ),
        DialectApp::Apix => (
            "apix",
            APIX_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
                .with_symbol("ncubes", 343)
                .with_symbol("screen", 16)
                .with_selectivity(0, 0.15),
        ),
        DialectApp::Knn { k } => (
            "knn",
            KNN_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, vm_power, 1e6, 1e-5), 64)
                .with_symbol("npoints", 300)
                .with_symbol("k", k.min(50)),
        ),
        DialectApp::Vmscope => (
            "vmscope",
            VMSCOPE_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, vm_power, 1e6, 1e-5), 8)
                .with_symbol("height", 32)
                .with_symbol("width", 32)
                .with_symbol("subsample", 2)
                .with_selectivity(0, 0.5),
        ),
    }
}

/// Map an executor stage label (`f{j+1}` as the probes name stages, or
/// `f{j+1}[c]` as failures name copies) back to the pipeline unit `j`.
fn unit_of_stage_label(label: &str) -> Option<usize> {
    let rest = label.strip_prefix('f')?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<usize>().ok()?.checked_sub(1)
}

/// Map a failed stage label back to the pipeline unit index `j`.
fn dead_unit_of(err: &CoreError) -> Option<usize> {
    let CoreError::Runtime(fe) = err else {
        return None;
    };
    unit_of_stage_label(&fe.filter)
}

fn demo_host_builder(app: DialectApp) -> cgp_core::HostBuilder {
    match app {
        DialectApp::Zbuf | DialectApp::Apix => {
            let grid = ScalarGrid::synthetic(8, 8, 8, 21);
            Arc::new(move || iso_host_env(&grid, 0.8, 16, 4))
        }
        DialectApp::Knn { k } => {
            let pts = cgp_core::apps::knn::generate_points(300, 5);
            let k = k.min(50);
            Arc::new(move || knn_host_env(&pts, [0.3, 0.6, 0.2], k, 6))
        }
        DialectApp::Vmscope => {
            let slide = Slide::synthetic(32, 32, 9);
            Arc::new(move || vmscope_host_env(&slide, 2, 4))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_common_opts_space_and_equals_forms_agree() {
        let spaced = parse_common_opts(argv(&[
            "--explain",
            "--recover",
            "--faults",
            "panic@f2[0]#3",
            "--deadline-ms",
            "500",
            "--trace-out",
            "/tmp/t.json",
            "--checkpoint-every",
            "16",
        ]));
        let equals = parse_common_opts(argv(&[
            "--explain",
            "--recover",
            "--faults=panic@f2[0]#3",
            "--deadline-ms=500",
            "--trace-out=/tmp/t.json",
            "--checkpoint-every=16",
        ]));
        assert_eq!(spaced, equals);
        assert!(spaced.explain && spaced.recover);
        assert_eq!(spaced.faults_spec.as_deref(), Some("panic@f2[0]#3"));
        assert_eq!(spaced.deadline_ms, Some(500));
        assert_eq!(spaced.checkpoint_every, Some(16));
    }

    #[test]
    fn parse_common_opts_ignores_unknown_figure_flags() {
        let o = parse_common_opts(argv(&["--width", "4", "--recover", "positional"]));
        assert!(o.recover);
        assert_eq!(o.faults_spec, None);
    }

    #[test]
    fn aggregator_retires_dead_and_finished_workers() {
        use cgp_core::datacutter::{encode_telemetry_payload, TelemetryClient};

        let exec = ExecOptions::default();
        let agg = TelemetryAggregator::start(2, &exec);

        let sample = |source: &str| TelemetrySample {
            source: source.to_string(),
            ..Default::default()
        };
        let mut reg = MetricsRegistry::default();
        reg.counter("packets", 7);

        // Worker 0 finishes cleanly: in-flight sample, then a fin update
        // carrying its final registry snapshot.
        let mut w0 = TelemetryClient::connect(&agg.addr, 0, None).unwrap();
        w0.send(&encode_telemetry_payload(
            "worker:0",
            false,
            Some(&sample("worker:0")),
            None,
        ))
        .unwrap();
        w0.send(&encode_telemetry_payload(
            "worker:0",
            true,
            Some(&sample("worker:0")),
            Some(&reg),
        ))
        .unwrap();
        w0.close();

        // Worker 1 dies mid-run: a sample and a partial snapshot, then
        // the connection drops with no fin.
        let mut w1 = TelemetryClient::connect(&agg.addr, 1, None).unwrap();
        w1.send(&encode_telemetry_payload(
            "worker:1",
            false,
            Some(&sample("worker:1")),
            Some(&reg),
        ))
        .unwrap();
        drop(w1);

        // Both connections ended, so the serve loop exits on its own.
        let _ = agg.handle.join();
        let latest = agg.latest.lock().unwrap();
        assert!(
            latest.is_empty(),
            "no dead or finished worker may linger in the status line: {:?}",
            latest.keys().collect::<Vec<_>>()
        );
        let registries = agg.registries.lock().unwrap();
        assert!(
            registries.contains_key("worker:0"),
            "the finished worker's final snapshot is kept"
        );
        assert!(
            !registries.contains_key("worker:1"),
            "the dead worker's partial snapshot must not pollute the merge"
        );
    }

    #[test]
    fn parse_common_opts_autoscale_space_and_equals_forms_agree() {
        let spaced = parse_common_opts(argv(&["--autoscale", "max=4,grow=2", "--max-copies", "8"]));
        let equals = parse_common_opts(argv(&["--autoscale=max=4,grow=2", "--max-copies=8"]));
        assert_eq!(spaced, equals);
        assert_eq!(spaced.autoscale.as_deref(), Some("max=4,grow=2"));
        assert_eq!(spaced.max_copies, Some(8));
    }

    #[test]
    fn aggregator_carries_busy_time_across_a_worker_restart() {
        use cgp_core::datacutter::{encode_telemetry_payload, TelemetryClient};
        use cgp_obs::telemetry::StageSample;

        let exec = ExecOptions::default();
        let agg = TelemetryAggregator::start(2, &exec);
        let sample = |busy: u64| TelemetrySample {
            source: "worker:1".to_string(),
            stages: vec![StageSample {
                stage: "f2".to_string(),
                busy_us_per_copy: vec![busy],
                ..Default::default()
            }],
            ..Default::default()
        };

        // First incarnation reports 5000 µs of busy time, then crashes
        // (connection drops with no fin).
        let mut w = TelemetryClient::connect(&agg.addr, 1, None).unwrap();
        w.send(&encode_telemetry_payload(
            "worker:1",
            false,
            Some(&sample(5000)),
            None,
        ))
        .unwrap();
        drop(w);
        for _ in 0..400 {
            if !agg.carry.lock().unwrap().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            agg.carry.lock().unwrap()["worker:1"]["f2"],
            vec![5000],
            "the crashed worker's last busy reading becomes the carry"
        );

        // The respawned replacement restarts its probes from zero: 100 µs
        // of fresh busy time must read as 5100 in the merged view, not
        // as a backwards jump to 100.
        let mut w = TelemetryClient::connect(&agg.addr, 1, None).unwrap();
        w.send(&encode_telemetry_payload(
            "worker:1",
            false,
            Some(&sample(100)),
            None,
        ))
        .unwrap();
        let mut merged = None;
        for _ in 0..400 {
            if let Some(s) = agg.latest.lock().unwrap().get("worker:1") {
                merged = Some(s.stages[0].busy_us_per_copy.clone());
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            merged,
            Some(vec![5100]),
            "pre-restart busy time must be carried forward across the restart"
        );
        drop(w);
        let _ = agg.handle.join();
        // A second crash replaces the carry with the folded reading —
        // 5100, never 5000 + 5100.
        assert_eq!(agg.carry.lock().unwrap()["worker:1"]["f2"], vec![5100]);
    }

    #[test]
    fn dead_unit_parses_executor_stage_labels() {
        let fe = cgp_core::datacutter::FilterError::panicked("f2[0]", "boom");
        assert_eq!(dead_unit_of(&CoreError::Runtime(fe)), Some(1));
        let fe = cgp_core::datacutter::FilterError::panicked("f10[3]", "boom");
        assert_eq!(dead_unit_of(&CoreError::Runtime(fe)), Some(9));
        let fe = cgp_core::datacutter::FilterError::panicked("watchdog", "stall");
        assert_eq!(dead_unit_of(&CoreError::Runtime(fe)), None);
    }
}
