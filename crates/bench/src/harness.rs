//! Observability wiring shared by the figure binaries.
//!
//! Every figure binary accepts:
//!
//! - `CGP_TRACE=<path>` (env) or `--trace-out <path>` (flag, wins over the
//!   env var) — write a Chrome `trace_event` JSON file covering the run:
//!   the virtual-time simulator timeline, the seven compiler phases of the
//!   matching dialect program, and a real threaded DataCutter execution of
//!   its compiled plan (per-filter-copy spans, per-packet events);
//! - `--explain` — print the compiler's decision report for the matching
//!   dialect program: candidate boundary graph, per-boundary
//!   Gen/Cons/ReqComm byte volumes, every candidate decomposition's cost,
//!   and why the winner won;
//! - `CGP_FAULTS=<spec>` (env) or `--faults <spec>` (flag, wins) — inject
//!   deterministic faults into the threaded demo run (see
//!   [`cgp_core::datacutter::FaultPlan::parse`] for the spec grammar),
//!   plus `CGP_DEADLINE_MS`/`--deadline-ms`, `CGP_STALL_MS` and
//!   `CGP_RETRIES` for the matching watchdog/retry knobs.
//!
//! When none is given the binaries run exactly as before — no sink is
//! installed and the tracing hooks reduce to one relaxed atomic load.

use cgp_core::apps::dialect::{
    iso_host_env, knn_host_env, vmscope_host_env, APIX_SRC, KNN_SRC, VMSCOPE_SRC, ZBUF_SRC,
};
use cgp_core::apps::isosurface::ScalarGrid;
use cgp_core::apps::vmscope::Slide;
use cgp_core::datacutter::FaultPlan;
use cgp_core::{compile, run_plan_threaded_opts, CompileOptions, ExecOptions, PipelineEnv};
use cgp_obs::trace::{self, TraceEvent};
use cgp_obs::{ChromeTraceSink, TraceSink};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which dialect program matches the figure being run.
#[derive(Debug, Clone, Copy)]
pub enum DialectApp {
    Zbuf,
    Apix,
    Knn { k: i64 },
    Vmscope,
}

/// Forwards to the Chrome sink while accumulating a per-phase timing
/// summary of the compiler spans.
struct SummarySink {
    inner: ChromeTraceSink,
    phases: Mutex<Vec<(String, f64)>>,
}

impl TraceSink for SummarySink {
    fn record(&self, event: TraceEvent) {
        if event.ph == 'X' && event.cat == "compiler-phase" {
            self.phases
                .lock()
                .unwrap()
                .push((event.name.clone(), event.dur_us));
        }
        self.inner.record(event);
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Per-run observability state for a figure binary.
pub struct Obs {
    explain: bool,
    trace_path: Option<String>,
    sink: Option<Arc<SummarySink>>,
    exec: ExecOptions,
    chaos: bool,
}

impl Obs {
    /// Parse `--trace-out`/`--explain`/`--faults`/`--deadline-ms` from the
    /// command line and `CGP_TRACE`/`CGP_FAULTS`/`CGP_DEADLINE_MS`/
    /// `CGP_STALL_MS`/`CGP_RETRIES` from the environment; install the
    /// trace sink if tracing is asked for.
    pub fn init() -> Obs {
        let mut explain = false;
        let mut trace_path: Option<String> = std::env::var(trace::TRACE_ENV).ok();
        let mut exec = ExecOptions::from_env()
            .unwrap_or_else(|e| panic!("bad fault-injection environment: {e}"));
        let mut faults_spec: Option<String> = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--explain" => explain = true,
                "--trace-out" => trace_path = args.next(),
                "--faults" => faults_spec = args.next(),
                "--deadline-ms" => {
                    exec.deadline = args
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_millis);
                }
                _ => {
                    if let Some(p) = a.strip_prefix("--trace-out=") {
                        trace_path = Some(p.to_string());
                    } else if let Some(s) = a.strip_prefix("--faults=") {
                        faults_spec = Some(s.to_string());
                    } else if let Some(d) = a.strip_prefix("--deadline-ms=") {
                        exec.deadline = d.parse::<u64>().ok().map(Duration::from_millis);
                    }
                }
            }
        }
        if let Some(spec) = faults_spec {
            exec.faults =
                FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("bad --faults spec: {e}"));
        }
        let chaos = !exec.faults.is_empty() || exec.deadline.is_some();
        let sink = trace_path.as_ref().map(|p| {
            let inner = ChromeTraceSink::create(p)
                .unwrap_or_else(|e| panic!("cannot create trace file {p}: {e}"));
            let sink = Arc::new(SummarySink {
                inner,
                phases: Mutex::new(Vec::new()),
            });
            trace::install_sink(sink.clone());
            sink
        });
        Obs {
            explain,
            trace_path,
            sink,
            exec,
            chaos,
        }
    }

    fn active(&self) -> bool {
        self.explain || self.sink.is_some() || self.chaos
    }

    /// Compile (and, when tracing, execute on real threads) the dialect
    /// program matching this figure, on a demo-sized workload. Emits the
    /// seven compiler phase spans, the decision report, and the runtime's
    /// per-filter spans into the trace; prints the report with `--explain`.
    pub fn compiler_demo(&self, app: DialectApp) {
        if !self.active() {
            return;
        }
        let (name, src, opts) = demo_config(app);
        let compiled = match compile(src, &opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("[obs] dialect compile failed for {name}: {e}");
                return;
            }
        };
        if self.explain {
            println!("--- {name}: compiler decision report ---");
            print!("{}", compiled.report.render_text());
        }
        if self.sink.is_some() || self.chaos {
            let builder = demo_host_builder(app);
            match run_plan_threaded_opts(Arc::new(compiled.plan), builder, None, &self.exec) {
                Ok(_) => {
                    if self.chaos {
                        println!("[obs] chaos run for {name} completed despite injection");
                    }
                }
                Err(e) => {
                    if self.chaos {
                        // Under injection a structured failure is the
                        // expected outcome — report it, don't die.
                        println!("[obs] chaos run for {name} failed as injected: {e}");
                    } else {
                        eprintln!("[obs] threaded demo run failed for {name}: {e}");
                    }
                }
            }
        }
    }

    /// Flush the trace (writes the Chrome JSON array) and print the
    /// phase-timing summary.
    pub fn finish(self) {
        let Some(sink) = self.sink else { return };
        trace::clear_sink();
        let phases = sink.phases.lock().unwrap();
        if !phases.is_empty() {
            println!("--- compiler phase timings ---");
            for (name, dur_us) in phases.iter() {
                println!("  {name:<12} {dur_us:>10.1} us");
            }
        }
        if let Some(p) = &self.trace_path {
            println!("trace written to {p} (open in Perfetto / chrome://tracing)");
        }
    }
}

/// Demo-sized compile configuration per app (small workloads — these runs
/// exist to populate traces and reports, not to measure).
fn demo_config(app: DialectApp) -> (&'static str, &'static str, CompileOptions) {
    match app {
        DialectApp::Zbuf => (
            "zbuf",
            ZBUF_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
                .with_symbol("ncubes", 343)
                .with_symbol("screen", 16)
                .with_selectivity(0, 0.15),
        ),
        DialectApp::Apix => (
            "apix",
            APIX_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 128)
                .with_symbol("ncubes", 343)
                .with_symbol("screen", 16)
                .with_selectivity(0, 0.15),
        ),
        DialectApp::Knn { k } => (
            "knn",
            KNN_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 64)
                .with_symbol("npoints", 300)
                .with_symbol("k", k.min(50)),
        ),
        DialectApp::Vmscope => (
            "vmscope",
            VMSCOPE_SRC,
            CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 8)
                .with_symbol("height", 32)
                .with_symbol("width", 32)
                .with_symbol("subsample", 2)
                .with_selectivity(0, 0.5),
        ),
    }
}

fn demo_host_builder(app: DialectApp) -> cgp_core::HostBuilder {
    match app {
        DialectApp::Zbuf | DialectApp::Apix => {
            let grid = ScalarGrid::synthetic(8, 8, 8, 21);
            Arc::new(move || iso_host_env(&grid, 0.8, 16, 4))
        }
        DialectApp::Knn { k } => {
            let pts = cgp_core::apps::knn::generate_points(300, 5);
            let k = k.min(50);
            Arc::new(move || knn_host_env(&pts, [0.3, 0.6, 0.2], k, 6))
        }
        DialectApp::Vmscope => {
            let slide = Slide::synthetic(32, 32, 9);
            Arc::new(move || vmscope_host_env(&slide, 2, 4))
        }
    }
}
