//! # cgp-bench — figure harness
//!
//! One binary per figure of the paper's evaluation (Section 6). Each
//! harness runs the real application computation packet by packet and
//! replays the pipeline schedule on the simulated `w-w-1` grids (see
//! DESIGN.md for the cluster substitution), printing the same series the
//! paper plots: execution time per version on the 1-1-1, 2-2-1 and 4-4-1
//! configurations, plus the ratios the text quotes.
//!
//! Run all figures:
//!
//! ```sh
//! cargo run --release -p cgp-bench --bin all_figures
//! ```
//!
//! Per-figure environment constants (host slowdown, effective link
//! bandwidth) and their justification are recorded in EXPERIMENTS.md.

pub mod autoscale;
pub mod dataplane;
pub mod harness;
pub mod launcher;

use cgp_core::apps::profile::AppVariant;
use cgp_core::grid::{GridConfig, LinkSpec};
use cgp_core::{simulate_variant, CALIBRATION, PENTIUM_SLOWDOWN};

/// Default host slowdown re-exported for figure definitions.
pub const PENTIUM_SLOWDOWN_DEFAULT: f64 = PENTIUM_SLOWDOWN;

/// The paper's three configurations.
pub const WIDTHS: [usize; 3] = [1, 2, 4];

/// A `w-w-1` grid with an explicit effective link bandwidth (bytes/s) and
/// host slowdown (how much slower than the measuring machine the simulated
/// 700 MHz hosts run the app's instruction mix — see EXPERIMENTS.md).
pub fn grid_with(w: usize, bandwidth: f64, slowdown: f64) -> GridConfig {
    GridConfig::w_w_1(
        w,
        CALIBRATION / slowdown,
        LinkSpec {
            bandwidth,
            latency: 2.0e-5,
        },
    )
}

/// [`grid_with`] at the default [`PENTIUM_SLOWDOWN`].
pub fn grid_with_bandwidth(w: usize, bandwidth: f64) -> GridConfig {
    grid_with(w, bandwidth, PENTIUM_SLOWDOWN)
}

/// One figure: variant constructors are invoked fresh per configuration.
pub struct Figure {
    pub id: &'static str,
    pub title: String,
    pub versions: Vec<String>,
    /// `rows[w][v]` = makespan of version `v` at width `WIDTHS[w]`.
    pub rows: Vec<Vec<f64>>,
}

/// A named variant constructor.
pub type VariantMaker = (String, Box<dyn Fn() -> Box<dyn AppVariant>>);

impl Figure {
    /// Run `versions` across the three configurations.
    pub fn run(
        id: &'static str,
        title: impl Into<String>,
        bandwidth: f64,
        versions: Vec<VariantMaker>,
    ) -> Figure {
        Self::run_with(
            id,
            title,
            bandwidth,
            crate::PENTIUM_SLOWDOWN_DEFAULT,
            versions,
        )
    }

    /// [`Figure::run`] with an explicit host slowdown.
    pub fn run_with(
        id: &'static str,
        title: impl Into<String>,
        bandwidth: f64,
        slowdown: f64,
        versions: Vec<VariantMaker>,
    ) -> Figure {
        let mut rows = Vec::new();
        for &w in &WIDTHS {
            let grid = grid_with(w, bandwidth, slowdown);
            let mut row = Vec::new();
            let mut digest: Option<u64> = None;
            for (_, mk) in &versions {
                let mut v = mk();
                let run = simulate_variant(v.as_mut(), &grid);
                match digest {
                    None => digest = Some(run.result_digest),
                    Some(d) => assert_eq!(
                        d, run.result_digest,
                        "version results must agree ({id}, width {w})"
                    ),
                }
                row.push(run.makespan);
            }
            rows.push(row);
        }
        Figure {
            id,
            title: title.into(),
            versions: versions.into_iter().map(|(n, _)| n).collect(),
            rows,
        }
    }

    /// Render the paper-style table plus derived ratios.
    pub fn print(&self) {
        println!("== {}: {} ==", self.id, self.title);
        print!("{:<10}", "config");
        for v in &self.versions {
            print!(" {:>16}", format!("{v}(s)"));
        }
        println!();
        for (i, &w) in WIDTHS.iter().enumerate() {
            print!("{:<10}", format!("{w}-{w}-1"));
            for t in &self.rows[i] {
                print!(" {:>16.4}", t);
            }
            println!();
        }
        // Ratios the paper's text quotes.
        if self.versions.len() >= 2 {
            let d = &self.versions[0];
            for (vi, v) in self.versions.iter().enumerate().skip(1) {
                let g = (self.rows[0][0] / self.rows[0][vi] - 1.0) * 100.0;
                println!("{v} vs {d} at 1-1-1: {v} faster by {g:.0}%");
            }
        }
        for (vi, v) in self.versions.iter().enumerate() {
            let s2 = self.rows[0][vi] / self.rows[1][vi];
            let s4 = self.rows[0][vi] / self.rows[2][vi];
            println!("{v}: speedup {s2:.2}x at width 2, {s4:.2}x at width 4");
        }
        println!();
    }

    /// Markdown table block for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "### {} — {}\n", self.id, self.title);
        let _ = write!(s, "| config |");
        for v in &self.versions {
            let _ = write!(s, " {v} (s) |");
        }
        let _ = writeln!(s);
        let _ = write!(s, "|---|");
        for _ in &self.versions {
            let _ = write!(s, "---|");
        }
        let _ = writeln!(s);
        for (i, &w) in WIDTHS.iter().enumerate() {
            let _ = write!(s, "| {w}-{w}-1 |");
            for t in &self.rows[i] {
                let _ = write!(s, " {t:.4} |");
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// Environment constants per application (see EXPERIMENTS.md).
pub mod env {
    /// Isosurface: in-memory grids streamed as large sequential slab
    /// buffers — near wire rate.
    pub const ISO_BANDWIDTH: f64 = 1.0e8;
    /// knn: large sequential point buffers stream near wire rate.
    pub const KNN_BANDWIDTH: f64 = 1.0e8;
    /// vmscope: many small pixel buffers through TCP-based streams.
    pub const VM_BANDWIDTH: f64 = 3.5e7;
    /// knn's kernel is x87-era scalar floating point — far below a modern
    /// core's auto-vectorized throughput — so its host slowdown sits higher
    /// in the calibration band (see EXPERIMENTS.md).
    pub const KNN_SLOWDOWN: f64 = 42.0;
}

/// Standard workloads for the figures (scaled from the paper's datasets;
/// see DESIGN.md substitutions).
pub mod workloads {
    use cgp_core::apps::isosurface::{IsoPipeline, IsoVersion, Renderer, ScalarGrid, ISOVALUE};
    use cgp_core::apps::knn::{generate_points, KnnPipeline, KnnVersion};
    use cgp_core::apps::vmscope::{Query, Slide, VmVersion, VmscopePipeline};

    /// Isosurface datasets: "small" and "large" synthetic grids (the
    /// paper's 150 MB / 600 MB ParSSim time-steps, scaled ~1:4 in cells).
    pub fn iso_grid(large: bool) -> ScalarGrid {
        if large {
            ScalarGrid::synthetic(192, 192, 192, 20030517)
        } else {
            ScalarGrid::synthetic(128, 128, 128, 20030517)
        }
    }

    pub const ISO_PACKETS: usize = 128;

    /// Screen scales with the dataset extent so the per-triangle raster
    /// area (hence the compute/communication balance) is size-independent.
    pub fn iso_screen(large: bool) -> usize {
        if large {
            1536
        } else {
            1024
        }
    }

    pub fn iso_variant(large: bool, renderer: Renderer, version: IsoVersion) -> IsoPipeline {
        IsoPipeline::new(
            iso_grid(large),
            ISOVALUE,
            ISO_PACKETS,
            iso_screen(large),
            renderer,
            version,
            if large { "iso-large" } else { "iso-small" },
        )
    }

    /// knn dataset: 1M `f64` points (the paper's 4.5M/108 MB, scaled).
    pub const KNN_POINTS: usize = 1_000_000;
    pub const KNN_PACKETS: usize = 8;
    pub const KNN_QUERY: [f64; 3] = [0.5, 0.5, 0.5];

    pub fn knn_variant(k: usize, version: KnnVersion) -> KnnPipeline {
        KnnPipeline::new(
            generate_points(KNN_POINTS, 42),
            KNN_QUERY,
            k,
            KNN_PACKETS,
            version,
            format!("knn-k{k}"),
        )
    }

    /// vmscope slide and the paper's two queries.
    pub fn vm_slide() -> Slide {
        Slide::synthetic(2048, 2048, 7)
    }

    pub fn vm_small_query() -> (Query, usize) {
        (
            Query {
                x0: 512,
                y0: 512,
                width: 256,
                height: 256,
                subsample: 4,
            },
            5,
        )
    }

    pub fn vm_large_query() -> (Query, usize) {
        (
            Query {
                x0: 0,
                y0: 0,
                width: 2048,
                height: 2048,
                subsample: 8,
            },
            64,
        )
    }

    pub fn vm_variant(large: bool, version: VmVersion) -> VmscopePipeline {
        let (q, packets) = if large {
            vm_large_query()
        } else {
            vm_small_query()
        };
        VmscopePipeline::new(
            vm_slide(),
            q,
            packets,
            version,
            if large { "vm-large" } else { "vm-small" },
        )
    }
}

/// Build the standard figure definitions (used by the per-figure binaries
/// and `all_figures`).
pub mod figures {
    use super::workloads::*;
    use super::{env, Figure, VariantMaker};
    use cgp_core::apps::isosurface::{IsoVersion, Renderer};
    use cgp_core::apps::knn::KnnVersion;
    use cgp_core::apps::profile::AppVariant;
    use cgp_core::apps::vmscope::VmVersion;

    fn boxed<V: AppVariant + 'static>(
        f: impl Fn() -> V + 'static,
    ) -> Box<dyn Fn() -> Box<dyn AppVariant>> {
        Box::new(move || Box::new(f()))
    }

    fn iso_versions(large: bool, renderer: Renderer) -> Vec<VariantMaker> {
        vec![
            (
                "Default".into(),
                boxed(move || iso_variant(large, renderer, IsoVersion::Default)),
            ),
            (
                "Decomp".into(),
                boxed(move || iso_variant(large, renderer, IsoVersion::Decomp)),
            ),
        ]
    }

    fn knn_versions(k: usize) -> Vec<VariantMaker> {
        vec![
            (
                "Default".into(),
                boxed(move || knn_variant(k, KnnVersion::Default)),
            ),
            (
                "Decomp-Comp".into(),
                boxed(move || knn_variant(k, KnnVersion::DecompComp)),
            ),
            (
                "Decomp-Manual".into(),
                boxed(move || knn_variant(k, KnnVersion::DecompManual)),
            ),
        ]
    }

    fn vm_versions(large: bool) -> Vec<VariantMaker> {
        vec![
            (
                "Default".into(),
                boxed(move || vm_variant(large, VmVersion::Default)),
            ),
            (
                "Decomp-Comp".into(),
                boxed(move || vm_variant(large, VmVersion::DecompComp)),
            ),
            (
                "Decomp-Manual".into(),
                boxed(move || vm_variant(large, VmVersion::DecompManual)),
            ),
        ]
    }

    pub fn fig05() -> Figure {
        Figure::run(
            "Figure 5",
            "z-buffer isosurface, small dataset",
            env::ISO_BANDWIDTH,
            iso_versions(false, Renderer::ZBuffer),
        )
    }

    pub fn fig06() -> Figure {
        Figure::run(
            "Figure 6",
            "z-buffer isosurface, large dataset",
            env::ISO_BANDWIDTH,
            iso_versions(true, Renderer::ZBuffer),
        )
    }

    pub fn fig07() -> Figure {
        Figure::run(
            "Figure 7",
            "active-pixel isosurface, small dataset",
            env::ISO_BANDWIDTH,
            iso_versions(false, Renderer::ActivePixels),
        )
    }

    pub fn fig08() -> Figure {
        Figure::run(
            "Figure 8",
            "active-pixel isosurface, large dataset",
            env::ISO_BANDWIDTH,
            iso_versions(true, Renderer::ActivePixels),
        )
    }

    pub fn fig09() -> Figure {
        Figure::run_with(
            "Figure 9",
            "k-nearest neighbors, k = 3",
            env::KNN_BANDWIDTH,
            env::KNN_SLOWDOWN,
            knn_versions(3),
        )
    }

    pub fn fig10() -> Figure {
        Figure::run_with(
            "Figure 10",
            "k-nearest neighbors, k = 200",
            env::KNN_BANDWIDTH,
            env::KNN_SLOWDOWN,
            knn_versions(200),
        )
    }

    pub fn fig11() -> Figure {
        Figure::run(
            "Figure 11",
            "virtual microscope, small query",
            env::VM_BANDWIDTH,
            vm_versions(false),
        )
    }

    pub fn fig12() -> Figure {
        Figure::run(
            "Figure 12",
            "virtual microscope, large query",
            env::VM_BANDWIDTH,
            vm_versions(true),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgp_core::apps::isosurface::{IsoPipeline, IsoVersion, Renderer, ScalarGrid};
    use cgp_core::apps::AppVariant;

    #[test]
    fn figure_runner_produces_tables() {
        let mk = |version: IsoVersion| -> Box<dyn Fn() -> Box<dyn AppVariant>> {
            Box::new(move || {
                Box::new(IsoPipeline::new(
                    ScalarGrid::synthetic(12, 12, 12, 1),
                    0.8,
                    4,
                    32,
                    Renderer::ZBuffer,
                    version,
                    "t",
                ))
            })
        };
        let fig = Figure::run(
            "test",
            "tiny iso",
            env::ISO_BANDWIDTH,
            vec![
                ("Default".into(), mk(IsoVersion::Default)),
                ("Decomp".into(), mk(IsoVersion::Decomp)),
            ],
        );
        assert_eq!(fig.rows.len(), 3);
        assert_eq!(fig.rows[0].len(), 2);
        assert!(fig.rows.iter().flatten().all(|t| *t > 0.0));
        let md = fig.to_markdown();
        assert!(md.contains("| 1-1-1 |"));
    }
}
