//! Single-machine distributed launcher.
//!
//! Re-executes the current figure binary once per pipeline unit with
//! `CGP_ROLE=worker:<stage>`, wiring the workers into a chain over
//! loopback TCP. Workers are spawned **last stage first**: each one binds
//! an ephemeral port (`CGP_LISTEN=127.0.0.1:0`), announces it on stdout
//! as `CGP_LISTENING <port>`, and the launcher passes that address to the
//! next worker upstream as `CGP_CONNECT`. The final stage's remaining
//! stdout is the run's result, which the caller diffs against an
//! in-process run of the same plan.
//!
//! Closures can't cross process boundaries, so there is no plan shipping:
//! every worker recompiles the same program with the same options (both
//! are deterministic), and the role env vars select which stage of the
//! shared plan each process executes.

use cgp_core::datacutter::{shm_supported, SHM_PREFIX};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// Marker line a worker prints (and flushes) on stdout once its ingress
/// endpoint is ready, before it starts the run. For TCP the payload is
/// the bound port; for shared memory it is the full `shm:<base>` address.
pub const LISTENING_MARKER: &str = "CGP_LISTENING";

/// Data-plane transport between worker processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Shared-memory rings (`shm:<base>` addresses) — same-host only.
    Shm,
    /// Loopback / cross-host TCP.
    Tcp,
}

impl Transport {
    /// Resolve the launcher's transport: an explicit `--transport` /
    /// `CGP_TRANSPORT` choice wins; otherwise shared memory is picked
    /// automatically when the build supports it (the single-machine
    /// launcher always co-locates workers), falling back to TCP.
    pub fn select(requested: Option<&str>) -> Transport {
        match requested {
            Some("tcp") => Transport::Tcp,
            Some("shm") => Transport::Shm,
            _ if shm_supported() => Transport::Shm,
            _ => Transport::Tcp,
        }
    }
}

/// Drop the networking flags from a forwarded argument list, so spawned
/// workers don't inherit the parent's `--role launcher` (their role
/// arrives via `CGP_ROLE`, which explicit flags would override).
/// `--telemetry-log` is also stripped: workers ship samples to the
/// launcher's aggregator instead of each clobbering the same file.
pub fn strip_net_flags(args: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--role" | "--listen" | "--connect" | "--telemetry-log" | "--transport" => {
                let _ = it.next();
            }
            _ if a.starts_with("--role=")
                || a.starts_with("--listen=")
                || a.starts_with("--connect=")
                || a.starts_with("--telemetry-log=")
                || a.starts_with("--transport=") => {}
            _ => out.push(a.clone()),
        }
    }
    out
}

/// Spawn one worker process per pipeline unit (`stages` of them) over
/// loopback TCP and return the last stage's output lines. `passthrough`
/// is forwarded to every worker verbatim (strip the net flags first —
/// see [`strip_net_flags`]), so fault injection, recovery, and batch
/// flags apply inside the workers exactly as they would in-process.
///
/// Fails if any worker exits unsuccessfully — a mid-pipeline failure is
/// invisible in the last stage's output (its ingress just sees
/// end-of-work), so exit statuses are the distributed run's error
/// surface.
///
/// When `telemetry` names the launcher's aggregator address, every
/// worker ships periodic samples and its final metrics snapshot there
/// (`CGP_TELEMETRY`); the caller must have bound that listener *before*
/// this call, since workers connect with a single attempt.
pub fn launch_distributed(
    stages: usize,
    passthrough: &[String],
    telemetry: Option<&str>,
    transport: Transport,
) -> Result<Vec<String>, String> {
    if stages == 0 {
        return Err("launch_distributed: no stages".to_string());
    }
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate current executable: {e}"))?;
    let mut children: Vec<(usize, Child)> = Vec::new();
    let mut last_stdout = None;
    let mut downstream_addr: Option<String> = None;
    for stage in (0..stages).rev() {
        let mut cmd = Command::new(&exe);
        cmd.args(passthrough)
            .env("CGP_ROLE", format!("worker:{stage}"))
            .env_remove("CGP_LISTEN")
            .env_remove("CGP_CONNECT")
            // The merged telemetry log is the launcher's to write.
            .env_remove("CGP_TELEMETRY_LOG")
            .stdout(Stdio::piped());
        match telemetry {
            Some(addr) => {
                cmd.env("CGP_TELEMETRY", addr);
            }
            None => {
                cmd.env_remove("CGP_TELEMETRY");
            }
        }
        if stage > 0 {
            // `shm:auto` tells the worker to create rings at a path of
            // its own choosing and announce the full `shm:<base>`
            // address; TCP workers bind an ephemeral port.
            cmd.env(
                "CGP_LISTEN",
                match transport {
                    Transport::Shm => format!("{SHM_PREFIX}auto"),
                    Transport::Tcp => "127.0.0.1:0".to_string(),
                },
            );
        }
        if let Some(addr) = &downstream_addr {
            cmd.env("CGP_CONNECT", addr);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker {stage}: {e}"))?;
        let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
        children.push((stage, child));
        if stage > 0 {
            // Block until the worker announces its bound port; everything
            // upstream needs it before it can be spawned.
            let mut line = String::new();
            downstream_addr = loop {
                line.clear();
                let n = reader
                    .read_line(&mut line)
                    .map_err(|e| format!("read worker {stage} stdout: {e}"))?;
                if n == 0 {
                    reap(children);
                    return Err(format!(
                        "worker {stage} exited before announcing its listener"
                    ));
                }
                if let Some(announce) = line.trim().strip_prefix(LISTENING_MARKER) {
                    let announce = announce.trim();
                    // `shm:<base>` addresses are passed to the upstream
                    // worker verbatim; a bare number is a TCP port.
                    break Some(if announce.starts_with(SHM_PREFIX) {
                        announce.to_string()
                    } else {
                        format!("127.0.0.1:{announce}")
                    });
                }
            };
        } else {
            downstream_addr = None;
        }
        if stage == stages - 1 {
            last_stdout = Some(reader);
        }
    }
    // The last stage's remaining stdout is the result; it closes when the
    // whole chain has drained.
    let mut result = Vec::new();
    if let Some(reader) = last_stdout {
        for line in reader.lines() {
            result.push(line.map_err(|e| format!("read result line: {e}"))?);
        }
    }
    let mut failures = Vec::new();
    for (stage, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("wait for worker {stage}: {e}"))?;
        if !status.success() {
            failures.push(format!("worker {stage} exited with {status}"));
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(result)
}

/// Best-effort cleanup on a failed launch.
fn reap(children: Vec<(usize, Child)>) {
    for (_, mut child) in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn strip_net_flags_removes_both_forms_and_keeps_the_rest() {
        let args = argv(&[
            "--role",
            "launcher",
            "--faults",
            "panic@f2[0]#3",
            "--listen=127.0.0.1:0",
            "--recover",
            "--connect",
            "127.0.0.1:9999",
            "--role=worker:1",
            "--telemetry-log",
            "/tmp/t.jsonl",
            "--status-every",
            "50",
            "--telemetry-log=/tmp/t2.jsonl",
            "--transport",
            "shm",
            "--transport=tcp",
        ]);
        assert_eq!(
            strip_net_flags(&args),
            argv(&[
                "--faults",
                "panic@f2[0]#3",
                "--recover",
                "--status-every",
                "50"
            ])
        );
    }

    #[test]
    fn transport_selection_prefers_shm_on_supported_builds() {
        assert_eq!(Transport::select(Some("tcp")), Transport::Tcp);
        assert_eq!(Transport::select(Some("shm")), Transport::Shm);
        let auto = Transport::select(None);
        if shm_supported() {
            assert_eq!(auto, Transport::Shm);
        } else {
            assert_eq!(auto, Transport::Tcp);
        }
    }
}
