//! Single-machine distributed launcher with worker supervision.
//!
//! Re-executes the current figure binary once per pipeline unit with
//! `CGP_ROLE=worker:<stage>`, wiring the workers into a chain over
//! loopback TCP or shared-memory rings. Workers are spawned **last stage
//! first**: each one binds an ephemeral endpoint (`CGP_LISTEN=127.0.0.1:0`
//! or `shm:auto`), announces it on stdout as `CGP_LISTENING <addr>`, and
//! the launcher passes that address to the next worker upstream as
//! `CGP_CONNECT`. The final stage's remaining stdout is the run's result,
//! which the caller diffs against an in-process run of the same plan.
//!
//! Closures can't cross process boundaries, so there is no plan shipping:
//! every worker recompiles the same program with the same options (both
//! are deterministic), and the role env vars select which stage of the
//! shared plan each process executes.
//!
//! # Supervision (`LaunchOptions::supervise`)
//!
//! With supervision on, the launcher monitors worker exits and masks
//! crashes by **prefix restart**: the data plane carries no wire-level
//! acks, so a dead stage `k`'s upstream progress is unrecoverable — the
//! supervisor kills stages `0..k-1`, respawns `k..0` (last first, fresh
//! endpoints re-announced up the chain), and relies on the surviving
//! stage `k+1` to park its ingress, hand the respawned producer its
//! resume watermark, and drop the already-delivered prefix (sequence
//! dedup). The result stays byte-identical because every stage recomputes
//! deterministically from packet 0. Each crash charges one unit to the
//! dead stage's restart budget; exhaustion surfaces as
//! [`LaunchError::BudgetExhausted`] so the caller can replan the
//! decomposition over the surviving units instead.

use cgp_core::datacutter::{remove_ring_files, shm_supported, SHM_PREFIX};
use cgp_obs::trace;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Marker line a worker prints (and flushes) on stdout once its ingress
/// endpoint is ready, before it starts the run. For TCP the payload is
/// the bound port; for shared memory it is the full `shm:<base>` address.
pub const LISTENING_MARKER: &str = "CGP_LISTENING";

/// Data-plane transport between worker processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Shared-memory rings (`shm:<base>` addresses) — same-host only.
    Shm,
    /// Loopback / cross-host TCP.
    Tcp,
}

impl Transport {
    /// Resolve the launcher's transport: an explicit `--transport` /
    /// `CGP_TRANSPORT` choice wins; otherwise shared memory is picked
    /// automatically when the build supports it (the single-machine
    /// launcher always co-locates workers), falling back to TCP.
    pub fn select(requested: Option<&str>) -> Transport {
        match requested {
            Some("tcp") => Transport::Tcp,
            Some("shm") => Transport::Shm,
            _ if shm_supported() => Transport::Shm,
            _ => Transport::Tcp,
        }
    }
}

/// How a distributed launch runs: transport, telemetry, and the
/// supervision policy (crash masking via prefix restarts).
#[derive(Debug, Clone)]
pub struct LaunchOptions {
    /// Launcher-side telemetry aggregator address (`CGP_TELEMETRY`).
    pub telemetry: Option<String>,
    /// Data plane between co-located workers.
    pub transport: Transport,
    /// Monitor worker exits and mask crashes with prefix restarts.
    pub supervise: bool,
    /// Restart budget **per stage**: a stage that dies more than this
    /// many times exhausts its budget and fails the launch with
    /// [`LaunchError::BudgetExhausted`].
    pub max_worker_restarts: u32,
    /// Heartbeat cadence forwarded to workers (`CGP_HEARTBEAT_MS`), so
    /// silent peers are detected, not just dead connections.
    pub heartbeat_ms: Option<u64>,
    /// Durable checkpoint directory forwarded to workers
    /// (`CGP_CHECKPOINT_DIR`).
    pub checkpoint_dir: Option<String>,
    /// Teardown grace: SIGTERM first, escalate to SIGKILL only after
    /// this long.
    pub grace: Duration,
}

impl LaunchOptions {
    pub fn new(transport: Transport) -> LaunchOptions {
        LaunchOptions {
            telemetry: None,
            transport,
            supervise: false,
            max_worker_restarts: 2,
            heartbeat_ms: None,
            checkpoint_dir: None,
            grace: Duration::from_secs(2),
        }
    }
}

/// What a supervised launch produced.
#[derive(Debug, Default)]
pub struct LaunchReport {
    /// The last stage's output lines (the run's result).
    pub lines: Vec<String>,
    /// Restarts charged per stage (indexed by stage).
    pub restarts: Vec<u32>,
    /// Total crash events masked by a prefix restart.
    pub restart_events: u32,
}

impl LaunchReport {
    pub fn total_restarts(&self) -> u32 {
        self.restarts.iter().sum()
    }
}

/// Why a launch failed.
#[derive(Debug)]
pub enum LaunchError {
    /// A stage died more times than its restart budget allows. The
    /// caller can treat the stage's host as dead and replan the
    /// decomposition over the survivors.
    BudgetExhausted {
        stage: usize,
        restarts: u32,
        last: String,
    },
    /// Anything else: spawn failures, protocol errors, divergent
    /// replayed output, unsupervised worker deaths.
    Failed(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::BudgetExhausted {
                stage,
                restarts,
                last,
            } => write!(
                f,
                "worker stage {stage} exhausted its restart budget after {restarts} \
                 restart(s); last exit: {last}"
            ),
            LaunchError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<String> for LaunchError {
    fn from(msg: String) -> LaunchError {
        LaunchError::Failed(msg)
    }
}

/// Drop the networking flags from a forwarded argument list, so spawned
/// workers don't inherit the parent's `--role launcher` (their role
/// arrives via `CGP_ROLE`, which explicit flags would override).
/// `--telemetry-log` is also stripped: workers ship samples to the
/// launcher's aggregator instead of each clobbering the same file. The
/// supervision flags (`--checkpoint-dir`, `--heartbeat-ms`,
/// `--max-worker-restarts`) are launcher policy, forwarded as env vars
/// instead.
pub fn strip_net_flags(args: &[String]) -> Vec<String> {
    const STRIP: &[&str] = &[
        "--role",
        "--listen",
        "--connect",
        "--telemetry-log",
        "--transport",
        "--checkpoint-dir",
        "--heartbeat-ms",
        "--max-worker-restarts",
    ];
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if STRIP.contains(&a.as_str()) {
            let _ = it.next();
        } else if STRIP
            .iter()
            .any(|f| a.starts_with(f) && a.as_bytes().get(f.len()) == Some(&b'='))
        {
            // `--flag=value` form: drop in one token.
        } else {
            out.push(a.clone());
        }
    }
    out
}

/// Spawn one worker process per pipeline unit (`stages` of them) and
/// return the last stage's output lines. `passthrough` is forwarded to
/// every worker verbatim (strip the net flags first — see
/// [`strip_net_flags`]), so fault injection, recovery, and batch flags
/// apply inside the workers exactly as they would in-process.
///
/// Fails if any worker exits unsuccessfully — a mid-pipeline failure is
/// invisible in the last stage's output (its ingress just sees
/// end-of-work), so exit statuses are the distributed run's error
/// surface. For crash masking, use [`launch_supervised`].
///
/// When `telemetry` names the launcher's aggregator address, every
/// worker ships periodic samples and its final metrics snapshot there
/// (`CGP_TELEMETRY`); the caller must have bound that listener *before*
/// this call, since workers connect with a single attempt.
pub fn launch_distributed(
    stages: usize,
    passthrough: &[String],
    telemetry: Option<&str>,
    transport: Transport,
) -> Result<Vec<String>, String> {
    let mut opts = LaunchOptions::new(transport);
    opts.telemetry = telemetry.map(str::to_string);
    launch_supervised(stages, passthrough, &opts)
        .map(|report| report.lines)
        .map_err(|e| e.to_string())
}

/// One spawned worker: the process, its announced ingress address
/// (`None` for the source stage), and its exit status once reaped.
struct Slot {
    child: Child,
    addr: Option<String>,
    exited: Option<ExitStatus>,
}

/// [`launch_distributed`] with supervision: monitors worker exits and,
/// when [`LaunchOptions::supervise`] is set, masks crashes with prefix
/// restarts until the dead stage's restart budget runs out.
pub fn launch_supervised(
    stages: usize,
    passthrough: &[String],
    opts: &LaunchOptions,
) -> Result<LaunchReport, LaunchError> {
    if stages == 0 {
        return Err(LaunchError::Failed("launch: no stages".to_string()));
    }
    if opts.transport == Transport::Shm && !shm_supported() {
        // Named refusal, not a downstream hang: every worker would fail
        // to create its rings anyway.
        return Err(LaunchError::Failed(
            "transport `shm` requested but this build has no shared-memory support \
             (shm_supported() is false); use --transport tcp"
                .to_string(),
        ));
    }
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate current executable: {e}"))?;
    let collector = OutputCollector::new();
    let mut slots: Vec<Option<Slot>> = std::iter::repeat_with(|| None).take(stages).collect();
    let mut restarts = vec![0u32; stages];
    let mut events = 0u32;

    if let Err(e) = spawn_range(
        &exe,
        passthrough,
        stages,
        opts,
        stages - 1,
        None,
        &collector,
        &mut slots,
        false,
    ) {
        shutdown(&mut slots, opts.grace);
        return Err(e.into());
    }

    loop {
        if let Some(msg) = collector.diverged() {
            shutdown(&mut slots, opts.grace);
            return Err(LaunchError::Failed(msg));
        }
        // Reap exits. A crash usually cascades (the dead stage's producer
        // dies on a broken pipe moments later), so the *highest* dead
        // stage this poll is the true restart frontier.
        let mut dead: Option<usize> = None;
        for (stage, slot) in slots.iter_mut().enumerate() {
            let slot = slot.as_mut().expect("all slots spawned");
            if slot.exited.is_some() {
                continue;
            }
            match slot.child.try_wait() {
                Ok(Some(status)) => {
                    slot.exited = Some(status);
                    if !status.success() {
                        dead = Some(stage);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    shutdown(&mut slots, opts.grace);
                    return Err(LaunchError::Failed(format!("wait for worker {stage}: {e}")));
                }
            }
        }
        if let Some(k) = dead {
            let status = slots[k]
                .as_ref()
                .and_then(|s| s.exited)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "unknown".to_string());
            if !opts.supervise {
                shutdown(&mut slots, opts.grace);
                return Err(LaunchError::Failed(format!(
                    "worker {k} exited with {status}"
                )));
            }
            events += 1;
            restarts[k] += 1;
            if restarts[k] > opts.max_worker_restarts {
                eprintln!(
                    "[obs] supervisor: worker stage {k} died again ({status}); restart \
                     budget ({}) exhausted",
                    opts.max_worker_restarts
                );
                shutdown(&mut slots, opts.grace);
                return Err(LaunchError::BudgetExhausted {
                    stage: k,
                    restarts: restarts[k] - 1,
                    last: status,
                });
            }
            eprintln!(
                "[obs] supervisor: worker stage {k} died ({status}); restarting stages \
                 0..={k} (restart {}/{})",
                restarts[k], opts.max_worker_restarts
            );
            trace::instant(
                format!("respawn stages 0..={k}"),
                "supervision",
                trace::PID_RUNTIME,
                0,
                vec![],
            );
            restart_prefix(&exe, passthrough, stages, opts, k, &collector, &mut slots).map_err(
                |e| {
                    shutdown(&mut slots, opts.grace);
                    LaunchError::Failed(e)
                },
            )?;
            continue;
        }
        if slots
            .iter()
            .all(|s| s.as_ref().expect("spawned").exited.is_some())
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Every worker exited cleanly; the reader thread drains the last
    // stage's remaining buffered output and then sees EOF.
    let lines = collector
        .finish(Duration::from_secs(10))
        .map_err(LaunchError::Failed)?;
    Ok(LaunchReport {
        lines,
        restarts,
        restart_events: events,
    })
}

/// Kill the stale prefix `0..k-1`, reclaim the dead stages' shm ring
/// files, and respawn stages `k..=0` (last first) against the surviving
/// stage `k+1`'s original address.
fn restart_prefix(
    exe: &std::path::Path,
    passthrough: &[String],
    stages: usize,
    opts: &LaunchOptions,
    k: usize,
    collector: &OutputCollector,
    slots: &mut [Option<Slot>],
) -> Result<(), String> {
    // The prefix recomputes from packet 0, so even stages that already
    // finished successfully must go.
    for slot in slots[..k].iter_mut() {
        let slot = slot.as_mut().expect("spawned");
        if slot.exited.is_none() {
            let _ = slot.child.kill();
            if let Ok(status) = slot.child.wait() {
                slot.exited = Some(status);
            }
        }
    }
    // Dead consumers leave their ingress rings behind (SIGKILL runs no
    // Drop); reclaim them so /dev/shm doesn't accumulate a file pair
    // per crash. Worker-mode links have one producer, but probe a few
    // extra paths — `remove_ring_files` only deletes dead-owner files.
    for slot in slots[1..=k].iter() {
        let addr = slot.as_ref().and_then(|s| s.addr.as_deref());
        if let Some(base) = addr.and_then(|a| a.strip_prefix(SHM_PREFIX)) {
            let n = remove_ring_files(base, 4);
            if n > 0 {
                eprintln!("[obs] supervisor: reclaimed {n} stale ring file(s) at {base}");
            }
        }
    }
    let seed = slots
        .get(k + 1)
        .and_then(|s| s.as_ref())
        .and_then(|s| s.addr.clone());
    spawn_range(
        exe,
        passthrough,
        stages,
        opts,
        k,
        seed,
        collector,
        slots,
        true,
    )
}

/// Spawn stages `top..=0`, last first, chaining each announced address
/// into the next worker upstream. `connect_seed` is the downstream
/// address stage `top` connects to (`None` when `top` is the last
/// stage).
#[allow(clippy::too_many_arguments)]
fn spawn_range(
    exe: &std::path::Path,
    passthrough: &[String],
    stages: usize,
    opts: &LaunchOptions,
    top: usize,
    connect_seed: Option<String>,
    collector: &OutputCollector,
    slots: &mut [Option<Slot>],
    respawn: bool,
) -> Result<(), String> {
    let mut connect = connect_seed;
    for stage in (0..=top).rev() {
        let (child, addr, reader) =
            spawn_worker(exe, passthrough, stage, opts, connect.as_deref(), respawn)?;
        if stage == stages - 1 {
            collector.attach(reader);
        }
        connect = addr.clone();
        slots[stage] = Some(Slot {
            child,
            addr,
            exited: None,
        });
    }
    Ok(())
}

/// Spawn one worker and, for non-source stages, block until it announces
/// its ingress endpoint. Returns the buffered stdout reader so the last
/// stage's result lines (already partially buffered behind the announce)
/// aren't lost.
fn spawn_worker(
    exe: &std::path::Path,
    passthrough: &[String],
    stage: usize,
    opts: &LaunchOptions,
    connect: Option<&str>,
    respawn: bool,
) -> Result<(Child, Option<String>, BufReader<ChildStdout>), String> {
    let mut cmd = Command::new(exe);
    cmd.args(passthrough)
        .env("CGP_ROLE", format!("worker:{stage}"))
        .env_remove("CGP_LISTEN")
        .env_remove("CGP_CONNECT")
        // The merged telemetry log is the launcher's to write.
        .env_remove("CGP_TELEMETRY_LOG")
        .stdout(Stdio::piped());
    match &opts.telemetry {
        Some(addr) => {
            cmd.env("CGP_TELEMETRY", addr);
        }
        None => {
            cmd.env_remove("CGP_TELEMETRY");
        }
    }
    if opts.supervise {
        cmd.env("CGP_SUPERVISED", "1");
    }
    if let Some(ms) = opts.heartbeat_ms {
        cmd.env("CGP_HEARTBEAT_MS", ms.to_string());
    }
    if let Some(dir) = &opts.checkpoint_dir {
        cmd.env("CGP_CHECKPOINT_DIR", dir);
    }
    if respawn {
        // An injected kill fires once: the replacement must survive, or
        // the restart budget drains on the same deterministic crash.
        cmd.env_remove("CGP_KILL");
    }
    if stage > 0 {
        // `shm:auto` tells the worker to create rings at a path of its
        // own choosing and announce the full `shm:<base>` address; TCP
        // workers bind an ephemeral port. Respawns pick *fresh*
        // endpoints the same way — nothing downstream ever reuses a
        // dead worker's address.
        cmd.env(
            "CGP_LISTEN",
            match opts.transport {
                Transport::Shm => format!("{SHM_PREFIX}auto"),
                Transport::Tcp => "127.0.0.1:0".to_string(),
            },
        );
    }
    if let Some(addr) = connect {
        cmd.env("CGP_CONNECT", addr);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn worker {stage}: {e}"))?;
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let addr = if stage > 0 {
        // Block until the worker announces its bound endpoint;
        // everything upstream needs it before it can be spawned.
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("read worker {stage} stdout: {e}"))?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!(
                    "worker {stage} exited before announcing its listener"
                ));
            }
            if let Some(announce) = line.trim().strip_prefix(LISTENING_MARKER) {
                let announce = announce.trim();
                // `shm:<base>` addresses are passed to the upstream
                // worker verbatim; a bare number is a TCP port.
                break Some(if announce.starts_with(SHM_PREFIX) {
                    announce.to_string()
                } else {
                    format!("127.0.0.1:{announce}")
                });
            }
        }
    } else {
        None
    };
    Ok((child, addr, reader))
}

/// Last-stage stdout across restarts.
///
/// Output lines are **committed** only once fully received (terminated
/// by a newline — a SIGKILLed writer can leave a torn final line in the
/// pipe, which must never count as result data). When the last stage is
/// respawned, its replacement re-produces the whole deterministic output
/// stream; the committed prefix is *verified*, not re-appended, and any
/// mismatch fails the run rather than silently corrupting the result.
struct OutputCollector {
    state: Arc<Mutex<OutputState>>,
}

struct OutputState {
    committed: Vec<String>,
    /// Next line index the current generation will produce.
    cursor: usize,
    /// Bumped on every attach; readers from older generations go quiet.
    generation: u64,
    /// Current generation saw a clean EOF (pipe closed, no torn line).
    eof: bool,
    diverged: Option<String>,
}

impl OutputCollector {
    fn new() -> OutputCollector {
        OutputCollector {
            state: Arc::new(Mutex::new(OutputState {
                committed: Vec::new(),
                cursor: 0,
                generation: 0,
                eof: false,
                diverged: None,
            })),
        }
    }

    /// Start a reader thread for a (re)spawned last stage. Older
    /// generations' threads notice the bump and stop committing.
    fn attach<R: Read + Send + 'static>(&self, reader: BufReader<R>) {
        let state = Arc::clone(&self.state);
        let generation = {
            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            st.generation += 1;
            st.cursor = 0;
            st.eof = false;
            st.generation
        };
        std::thread::spawn(move || {
            let mut reader = reader;
            let mut line = String::new();
            loop {
                line.clear();
                let n = match reader.read_line(&mut line) {
                    Ok(n) => n,
                    Err(_) => break,
                };
                if n == 0 {
                    break;
                }
                if !line.ends_with('\n') {
                    // Torn final line from a killed writer: uncommitted.
                    break;
                }
                let text = line.trim_end_matches(['\n', '\r']).to_string();
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                if st.generation != generation {
                    return;
                }
                if st.cursor < st.committed.len() {
                    if st.committed[st.cursor] != text {
                        st.diverged = Some(format!(
                            "restarted last stage diverged from committed output at \
                             line {}: expected {:?}, got {:?}",
                            st.cursor, st.committed[st.cursor], text
                        ));
                        return;
                    }
                } else {
                    st.committed.push(text);
                }
                st.cursor += 1;
            }
            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            if st.generation == generation {
                st.eof = true;
            }
        });
    }

    fn diverged(&self) -> Option<String> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .diverged
            .clone()
    }

    /// Wait for the current generation's clean EOF and take the
    /// committed lines.
    fn finish(&self, timeout: Duration) -> Result<Vec<String>, String> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(d) = &st.diverged {
                    return Err(d.clone());
                }
                if st.eof {
                    return Ok(st.committed.clone());
                }
            }
            if Instant::now() > deadline {
                return Err("timed out draining the last stage's output".to_string());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Graceful teardown: SIGTERM every live worker, give the set a bounded
/// window to exit on its own, then SIGKILL the stragglers. Every child
/// is reaped either way.
fn shutdown(slots: &mut [Option<Slot>], grace: Duration) {
    let mut live: Vec<&mut Slot> = slots
        .iter_mut()
        .filter_map(|s| s.as_mut())
        .filter(|s| s.exited.is_none())
        .collect();
    for slot in live.iter() {
        terminate(slot.child.id());
    }
    let deadline = Instant::now() + grace;
    loop {
        live.retain_mut(|slot| !matches!(slot.child.try_wait(), Ok(Some(_))));
        if live.is_empty() {
            return;
        }
        if Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for slot in live {
        let _ = slot.child.kill();
        let _ = slot.child.wait();
    }
}

/// Politely ask a worker to exit (SIGTERM); [`shutdown`] escalates to
/// SIGKILL after the grace window.
#[cfg(unix)]
fn terminate(pid: u32) {
    use std::os::raw::c_int;
    extern "C" {
        fn kill(pid: c_int, sig: c_int) -> c_int;
    }
    const SIGTERM: c_int = 15;
    if pid <= i32::MAX as u32 {
        unsafe {
            kill(pid as c_int, SIGTERM);
        }
    }
}

#[cfg(not(unix))]
fn terminate(_pid: u32) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn strip_net_flags_removes_both_forms_and_keeps_the_rest() {
        let args = argv(&[
            "--role",
            "launcher",
            "--faults",
            "panic@f2[0]#3",
            "--listen=127.0.0.1:0",
            "--recover",
            "--connect",
            "127.0.0.1:9999",
            "--role=worker:1",
            "--telemetry-log",
            "/tmp/t.jsonl",
            "--status-every",
            "50",
            "--telemetry-log=/tmp/t2.jsonl",
            "--transport",
            "shm",
            "--transport=tcp",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--heartbeat-ms=50",
            "--max-worker-restarts",
            "3",
        ]);
        assert_eq!(
            strip_net_flags(&args),
            argv(&[
                "--faults",
                "panic@f2[0]#3",
                "--recover",
                "--status-every",
                "50"
            ])
        );
    }

    #[test]
    fn transport_selection_prefers_shm_on_supported_builds() {
        assert_eq!(Transport::select(Some("tcp")), Transport::Tcp);
        assert_eq!(Transport::select(Some("shm")), Transport::Shm);
        let auto = Transport::select(None);
        if shm_supported() {
            assert_eq!(auto, Transport::Shm);
        } else {
            assert_eq!(auto, Transport::Tcp);
        }
    }

    fn reader(s: &str) -> BufReader<std::io::Cursor<Vec<u8>>> {
        BufReader::new(std::io::Cursor::new(s.as_bytes().to_vec()))
    }

    #[test]
    fn collector_never_commits_a_torn_line() {
        let c = OutputCollector::new();
        c.attach(reader("alpha\nbeta\ntorn-by-sigki"));
        // A torn tail still counts as this generation's EOF (the committed
        // prefix is what the replacement must reproduce).
        let lines = c.finish(Duration::from_secs(5)).unwrap();
        assert_eq!(lines, vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn collector_verifies_and_extends_across_generations() {
        let c = OutputCollector::new();
        c.attach(reader("alpha\nbeta\n"));
        let first = c.finish(Duration::from_secs(5)).unwrap();
        assert_eq!(first.len(), 2);
        // The respawned writer re-produces the committed prefix, then
        // extends it.
        c.attach(reader("alpha\nbeta\ngamma\n"));
        let lines = c.finish(Duration::from_secs(5)).unwrap();
        assert_eq!(
            lines,
            vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()]
        );
    }

    #[test]
    fn collector_flags_divergent_replay() {
        let c = OutputCollector::new();
        c.attach(reader("alpha\nbeta\n"));
        c.finish(Duration::from_secs(5)).unwrap();
        c.attach(reader("alpha\nBETA\n"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while c.diverged().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let msg = c.diverged().expect("divergence detected");
        assert!(msg.contains("diverged"), "{msg}");
    }

    #[test]
    fn stale_generations_stop_committing() {
        let c = OutputCollector::new();
        // Generation 1 never finishes (empty reader blocks on nothing —
        // use a completed one, then attach over it before reading back).
        c.attach(reader("old\n"));
        c.attach(reader("new\n"));
        // Whichever generation-1 lines landed before the bump, generation
        // 2 must either catch the mismatch ("old" != "new" → divergence)
        // or own the log outright — it may never silently interleave.
        match c.finish(Duration::from_secs(5)) {
            Ok(lines) => assert_eq!(lines, vec!["new".to_string()]),
            Err(msg) => assert!(msg.contains("diverged"), "{msg}"),
        }
    }

    #[test]
    fn shm_transport_without_support_is_a_named_error() {
        if shm_supported() {
            return;
        }
        let opts = LaunchOptions::new(Transport::Shm);
        match launch_supervised(2, &[], &opts) {
            Err(LaunchError::Failed(msg)) => assert!(msg.contains("shared-memory")),
            other => panic!("expected a named shm error, got {other:?}"),
        }
    }
}
