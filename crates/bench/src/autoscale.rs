//! Step-load autoscale benchmark (feeds `autoscale_guard` and
//! `BENCH_autoscale.json`).
//!
//! A three-stage pipeline — fast source, latency-bound `work` stage,
//! summing sink — where the per-packet service time *steps up* partway
//! through the stream. The fixed-width run keeps `work` at one copy and
//! eats the backlog serially; the elastic run starts identically but has
//! the [`cgp_core::datacutter::WidthController`] watching live telemetry,
//! which detects the post-step backlog and widens `work` toward its cap.
//! The guard's headline metric is **throughput recovery**: elastic
//! packets/s over fixed packets/s on the same machine in the same
//! process.
//!
//! The `work` stage **sleeps** for its service time instead of spinning:
//! it models an I/O- or latency-bound filter (the shape that benefits
//! from transparent copies even on one host), and — unlike a spin — the
//! sleeps of width-w copies overlap on a single-core CI runner, so the
//! recovery ratio measures the autoscaler rather than the core count.
//!
//! Both runs are telemetered at the same cadence, so the only variable
//! is the autoscale controller. Each run also returns the sink's sum:
//! reductions are associative/commutative, so fixed and elastic runs
//! must agree bit-for-bit — the guard hard-fails on any divergence.

use cgp_core::datacutter::{
    AutoscaleConfig, Buffer, ClosureFilter, FilterFactory, FilterIo, Pipeline, StageSpec,
    TelemetryConfig,
};
use cgp_obs::telemetry::TelemetrySampler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shape for one step-load run.
#[derive(Debug, Clone)]
pub struct StepLoadConfig {
    /// Total packets the source emits.
    pub packets: usize,
    /// Per-packet service time after the step, µs. Before the step
    /// (the first quarter of the stream) packets cost an eighth of
    /// this — enough to keep one copy comfortable, so the widening is
    /// attributable to the step and not to the baseline load.
    pub work_us: u64,
    /// Telemetry sampling cadence (the autoscaler's tick clock), ms.
    pub sampler_ms: u64,
    /// Autoscale spec for the elastic run (see
    /// [`AutoscaleConfig::parse`]).
    pub spec: String,
}

impl Default for StepLoadConfig {
    fn default() -> Self {
        StepLoadConfig {
            packets: 600,
            work_us: 400,
            sampler_ms: 5,
            spec: "max=4,grow=2,cooldown=0".to_string(),
        }
    }
}

/// One run's measurements.
#[derive(Debug, Clone, Copy)]
pub struct StepLoadRun {
    pub packets_per_sec: f64,
    /// The sink's reduction total — must be identical across widths.
    pub sum: u64,
    pub grows: usize,
    /// Widest the `work` stage ever got (1 = never widened).
    pub peak_width: usize,
}

fn source_stage(n: usize) -> FilterFactory {
    Box::new(move |_| {
        Box::new(ClosureFilter::new("source", move |io: &mut FilterIo| {
            for i in 0..n as u64 {
                io.write(Buffer::from_vec(i.to_le_bytes().to_vec()))?;
            }
            Ok(())
        }))
    })
}

fn step_work_stage(n: usize, work_us: u64) -> FilterFactory {
    let step_at = (n / 4) as u64;
    Box::new(move |_| {
        Box::new(ClosureFilter::new("work", move |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                let i = b.u64_le("work")?;
                let us = if i < step_at { work_us / 8 } else { work_us };
                std::thread::sleep(Duration::from_micros(us));
                io.write(b)?;
            }
            Ok(())
        }))
    })
}

fn sum_stage(total: &Arc<AtomicU64>) -> FilterFactory {
    let total = Arc::clone(total);
    Box::new(move |_| {
        let total = Arc::clone(&total);
        Box::new(ClosureFilter::new("sum", move |io: &mut FilterIo| {
            while let Some(b) = io.read() {
                total.fetch_add(b.u64_le("sum")?, Ordering::Relaxed);
            }
            Ok(())
        }))
    })
}

/// Run the step-load pipeline once; `elastic` turns the autoscaler on.
pub fn step_load_run(cfg: &StepLoadConfig, elastic: bool) -> StepLoadRun {
    let total = Arc::new(AtomicU64::new(0));
    let mut pipeline = Pipeline::new()
        .with_telemetry(TelemetryConfig::new(
            Arc::new(TelemetrySampler::new(Duration::from_millis(cfg.sampler_ms))),
            "local",
        ))
        .add_stage(StageSpec::new("source", 1, source_stage(cfg.packets)))
        .add_stage(StageSpec::new(
            "work",
            1,
            step_work_stage(cfg.packets, cfg.work_us),
        ))
        .add_stage(StageSpec::new("sum", 1, sum_stage(&total)));
    if elastic {
        let autoscale = AutoscaleConfig::parse(&cfg.spec)
            .expect("step-load autoscale spec parses")
            .expect("step-load autoscale spec is not `off`");
        pipeline = pipeline.with_autoscale(autoscale);
    }
    let t = Instant::now();
    let stats = pipeline.run().expect("step-load run completes");
    let elapsed = t.elapsed().max(Duration::from_micros(1));
    StepLoadRun {
        packets_per_sec: cfg.packets as f64 / elapsed.as_secs_f64(),
        sum: total.load(Ordering::Relaxed),
        grows: stats.autoscale.grows() as usize,
        peak_width: stats
            .autoscale
            .events
            .iter()
            .map(|e| e.to)
            .max()
            .unwrap_or(1),
    }
}

/// Paired best-of-`reps` measurement: fixed and elastic runs alternate
/// so both sample the same scheduler-noise window.
pub fn paired_step_load(cfg: &StepLoadConfig, reps: usize) -> (StepLoadRun, StepLoadRun) {
    let mut fixed = step_load_run(cfg, false);
    let mut elastic = step_load_run(cfg, true);
    for _ in 1..reps.max(1) {
        let f = step_load_run(cfg, false);
        if f.packets_per_sec > fixed.packets_per_sec {
            fixed = f;
        }
        let e = step_load_run(cfg, true);
        if e.packets_per_sec > elastic.packets_per_sec {
            elastic = e;
        }
    }
    (fixed, elastic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_load_outputs_are_width_independent_and_elastic_widens() {
        // Small and fast — the guard binary does the real measurement;
        // this test pins the semantics: identical sums, and the elastic
        // run actually widened under the step.
        let cfg = StepLoadConfig {
            packets: 200,
            work_us: 300,
            sampler_ms: 2,
            ..Default::default()
        };
        let fixed = step_load_run(&cfg, false);
        let elastic = step_load_run(&cfg, true);
        let expected: u64 = (0..200).sum();
        assert_eq!(fixed.sum, expected);
        assert_eq!(elastic.sum, expected, "autoscaling must not change output");
        assert_eq!(fixed.grows, 0);
        assert!(
            elastic.grows >= 1 && elastic.peak_width > 1,
            "the step must widen the elastic run: {elastic:?}"
        );
    }
}
