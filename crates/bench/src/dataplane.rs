//! Shared packet-echo microbench for the data plane.
//!
//! Used by `benches/dataplane.rs` (criterion suite) and the
//! `dataplane_guard` regression binary so both measure exactly the same
//! pipeline: a three-stage source → echo → sink that moves `packets`
//! buffers of `payload` bytes. Three in-process configurations matter:
//!
//! * **legacy** — `batch = 1`, no buffer pool, mutex links: every packet
//!   is a fresh allocation, every hop one lock acquisition and one
//!   condvar wakeup.
//! * **batched** — `batch = 8` with a [`BufferPool`], mutex links:
//!   packet storage is recycled and up to `batch` packets move per lock
//!   acquisition.
//! * **spsc** — batched + pooled with the lock-free SPSC ring on the
//!   pipeline's 1→1 links (the default data plane since the same-host
//!   specialization landed).
//!
//! [`run_distributed_echo`] runs the same pipeline split across three
//! worker threads joined by a real transport — loopback TCP or the
//! shared-memory ring — so the guard can compare same-host transports.
//!
//! The committed `BENCH_dataplane.json` baseline records the rates; the
//! acceptance bars are batched ≥ 1.5× legacy (historically ≥ 2×) and
//! spsc ≥ 1.5× batched.

use cgp_core::datacutter::{
    shm_dir, Buffer, BufferPool, ClosureFilter, FilterIo, Pipeline, ShmIngress, StageSpec,
    TelemetryConfig, WorkerEndpoints, DEFAULT_SHM_CAPACITY, SHM_PREFIX,
};
use cgp_obs::telemetry::TelemetrySampler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One packet-echo configuration; see the module docs for the two
/// interesting points in this space.
#[derive(Clone, Debug)]
pub struct EchoConfig {
    /// Packets pushed by the source.
    pub packets: usize,
    /// Bytes per packet.
    pub payload: usize,
    /// Stream batch size (1 = per-packet semantics).
    pub batch: usize,
    /// Whether stages allocate from a shared [`BufferPool`].
    pub pooled: bool,
    /// Whether 1→1 links use the lock-free SPSC ring (`false` pins the
    /// mutex `Stream`, the pre-ring data plane).
    pub rings: bool,
    /// Whether the telemetry plane samples the run (50 ms cadence, no
    /// log sink) — the guard asserts sampling stays within 5% of the
    /// unsampled rate.
    pub sampled: bool,
}

impl EchoConfig {
    /// The original data plane: per-packet sends, fresh allocations,
    /// mutex links.
    pub fn legacy(packets: usize, payload: usize) -> Self {
        EchoConfig {
            packets,
            payload,
            batch: 1,
            pooled: false,
            rings: false,
            sampled: false,
        }
    }

    /// The pooled + batched mutex data plane at the default batch of 8.
    pub fn batched(packets: usize, payload: usize) -> Self {
        EchoConfig {
            packets,
            payload,
            batch: 8,
            pooled: true,
            rings: false,
            sampled: false,
        }
    }

    /// The batched + pooled configuration on lock-free SPSC ring links —
    /// the default same-host data plane.
    pub fn spsc(packets: usize, payload: usize) -> Self {
        EchoConfig {
            rings: true,
            ..EchoConfig::batched(packets, payload)
        }
    }

    /// Enable in-flight telemetry sampling on this configuration.
    pub fn with_sampling(mut self) -> Self {
        self.sampled = true;
        self
    }
}

/// Run the echo pipeline once. Returns total bytes observed by the sink
/// (always `packets * payload`; asserted by callers).
pub fn run_packet_echo(cfg: &EchoConfig) -> u64 {
    let EchoConfig {
        packets,
        payload,
        batch,
        pooled,
        rings,
        sampled,
    } = *cfg;
    let bytes = Arc::new(AtomicU64::new(0));
    let sink_bytes = Arc::clone(&bytes);

    let mut pipeline = Pipeline::new()
        .with_capacity(64)
        .with_batch(batch)
        .with_same_host_rings(rings);
    if pooled {
        pipeline = pipeline.with_pool(BufferPool::new());
    }
    if sampled {
        let sampler = Arc::new(TelemetrySampler::new(Duration::from_millis(50)));
        pipeline = pipeline.with_telemetry(TelemetryConfig::new(sampler, "echo"));
    }
    pipeline
        .add_stage(StageSpec::new(
            "src",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                    let mut pending: Vec<Buffer> = Vec::with_capacity(batch);
                    for i in 0..packets {
                        let mut v = io.alloc(payload);
                        v.resize(payload, (i & 0xFF) as u8);
                        pending.push(io.seal(v));
                        if pending.len() >= batch {
                            io.write_batch(std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch),
                            ))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "echo",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("echo", move |io: &mut FilterIo| {
                    let mut pending: Vec<Buffer> = Vec::with_capacity(batch);
                    while let Some(b) = io.read() {
                        pending.push(b);
                        if pending.len() >= batch {
                            io.write_batch(std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch),
                            ))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sink",
            1,
            Box::new(move |_| {
                let bytes = Arc::clone(&sink_bytes);
                Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        bytes.fetch_add(b.len() as u64, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
        .run()
        .expect("echo pipeline failed");
    bytes.load(Ordering::Relaxed)
}

/// Best-of-`reps` throughput in packets per second. Each rep runs the
/// full pipeline (thread spawn included, as in real deployments) and the
/// byte conservation invariant is asserted every time.
pub fn echo_packets_per_sec(cfg: &EchoConfig, reps: usize) -> f64 {
    let expect = (cfg.packets * cfg.payload) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let got = run_packet_echo(cfg);
        let dt = start.elapsed().as_secs_f64();
        assert_eq!(got, expect, "packet-echo lost bytes");
        best = best.min(dt);
    }
    cfg.packets as f64 / best
}

/// Best-of-`reps` for two configurations with the reps interleaved
/// (a b, b a, a b, …), so both sample the same noise window. Sequential
/// best-of runs on a busy machine systematically penalize whichever
/// configuration runs later; a paired comparison with the within-pair
/// order alternated (used by the guard's sampling-overhead check) does
/// not favor either slot.
pub fn echo_paired_packets_per_sec(a: &EchoConfig, b: &EchoConfig, reps: usize) -> (f64, f64) {
    let mut best = [f64::INFINITY; 2];
    for rep in 0..reps.max(1) {
        let order = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for slot in order {
            let cfg = if slot == 0 { a } else { b };
            let expect = (cfg.packets * cfg.payload) as u64;
            let start = Instant::now();
            let got = run_packet_echo(cfg);
            let dt = start.elapsed().as_secs_f64();
            assert_eq!(got, expect, "packet-echo lost bytes");
            best[slot] = best[slot].min(dt);
        }
    }
    (a.packets as f64 / best[0], b.packets as f64 / best[1])
}

/// Throughput of one bare 1→1 stream link in packets per second at
/// per-packet granularity: a producer thread pushes `packets` pooled
/// `payload`-byte buffers one write at a time through a
/// [`logical_stream_with`] link and a consumer drains them. With
/// `rings = true` the link is the lock-free SPSC ring; with `false` it
/// is pinned to the mutex `Stream`. This isolates the link itself — the
/// full echo pipeline's per-packet buffer machinery (alloc, memset,
/// seal) otherwise hides the sync cost — at the granularity where the
/// link implementation is actually the variable: with 8-packet transfer
/// batches one lock acquisition amortizes over the batch and the two
/// links measure at parity, while per-packet the mutex+condvar pays its
/// full price on every message.
///
/// [`logical_stream_with`]: cgp_core::datacutter::stream::logical_stream_with
pub fn link_packets_per_sec(rings: bool, packets: usize, payload: usize, reps: usize) -> f64 {
    link_packets_per_sec_b(rings, packets, payload, 1, reps)
}

/// [`link_packets_per_sec`] with an explicit transfer batch size.
pub fn link_packets_per_sec_b(
    rings: bool,
    packets: usize,
    payload: usize,
    batch: usize,
    reps: usize,
) -> f64 {
    use cgp_core::datacutter::stream::logical_stream_with;
    use cgp_core::datacutter::Distribution;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let (mut writers, mut readers) =
            logical_stream_with(1, 1, 64, Distribution::RoundRobin, None, false, rings);
        let mut writer = writers.pop().expect("one writer");
        let mut reader = readers.pop().expect("one reader");
        reader.set_batch(batch);
        let pool = BufferPool::new();
        let start = Instant::now();
        let producer = std::thread::spawn(move || {
            let mut sent = 0usize;
            while sent < packets {
                let n = batch.min(packets - sent);
                let bufs: Vec<Buffer> = (0..n)
                    .map(|_| {
                        let mut v = pool.alloc(payload);
                        v.resize(payload, 0xA5);
                        pool.seal(v)
                    })
                    .collect();
                writer.write_batch(bufs).expect("link write");
                sent += n;
            }
            writer.close();
        });
        let mut got = 0usize;
        while reader.read().is_some() {
            got += 1;
        }
        producer.join().expect("producer join");
        let dt = start.elapsed().as_secs_f64();
        assert_eq!(got, packets, "link lost packets");
        best = best.min(dt);
    }
    packets as f64 / best
}

/// Paired best-of-`reps` for the bare link, mutex vs ring, interleaved
/// like [`echo_paired_packets_per_sec`]. Returns `(mutex, ring)` in
/// packets per second.
pub fn link_paired_packets_per_sec(packets: usize, payload: usize, reps: usize) -> (f64, f64) {
    let mut rates = [0f64; 2];
    for rep in 0..reps.max(1) {
        let order = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for slot in order {
            let rate = link_packets_per_sec(slot == 1, packets, payload, 1);
            rates[slot] = rates[slot].max(rate);
        }
    }
    (rates[0], rates[1])
}

/// Build the echo pipeline for one distributed worker (each worker
/// rebuilds the full plan; the endpoints select which stage runs).
fn echo_worker_pipeline(packets: usize, payload: usize, bytes: Arc<AtomicU64>) -> Pipeline {
    let batch = 8usize;
    Pipeline::new()
        .with_capacity(64)
        .with_batch(batch)
        .with_pool(BufferPool::new())
        .add_stage(StageSpec::new(
            "src",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                    let mut pending: Vec<Buffer> = Vec::with_capacity(batch);
                    for i in 0..packets {
                        let mut v = io.alloc(payload);
                        v.resize(payload, (i & 0xFF) as u8);
                        pending.push(io.seal(v));
                        if pending.len() >= batch {
                            io.write_batch(std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch),
                            ))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "echo",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("echo", move |io: &mut FilterIo| {
                    let mut pending: Vec<Buffer> = Vec::with_capacity(batch);
                    while let Some(b) = io.read() {
                        pending.push(b);
                        if pending.len() >= batch {
                            io.write_batch(std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch),
                            ))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sink",
            1,
            Box::new(move |_| {
                let bytes = Arc::clone(&bytes);
                Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        bytes.fetch_add(b.len() as u64, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
}

/// Run the echo pipeline split across three worker threads joined by a
/// real same-host transport: loopback TCP (`shm = false`) or the
/// shared-memory ring (`shm = true`). Returns total bytes observed by
/// the sink.
pub fn run_distributed_echo(shm: bool, packets: usize, payload: usize) -> u64 {
    // Downstream endpoints are created before any producer connects,
    // mirroring the launcher's create-then-announce ordering.
    let mut endpoints: [Option<WorkerEndpoints>; 3] = if shm {
        let unique = format!("{}-{:?}", std::process::id(), std::thread::current().id())
            .replace(['(', ')'], "");
        let base = |link: u32| {
            shm_dir()
                .join(format!("cgp-bench-echo-{unique}.l{link}"))
                .display()
                .to_string()
        };
        let (b1, b2) = (base(1), base(2));
        let s1 = ShmIngress::create(&b1, 1, DEFAULT_SHM_CAPACITY, None).expect("shm ingress");
        let s2 = ShmIngress::create(&b2, 1, DEFAULT_SHM_CAPACITY, None).expect("shm ingress");
        let ep = |stage, shm_ingress, connect: Option<String>| WorkerEndpoints {
            stage,
            listener: None,
            shm_ingress,
            connect,
        };
        [
            Some(ep(0, None, Some(format!("{SHM_PREFIX}{b1}")))),
            Some(ep(1, Some(s1), Some(format!("{SHM_PREFIX}{b2}")))),
            Some(ep(2, Some(s2), None)),
        ]
    } else {
        let l1 = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let l2 = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let a1 = l1.local_addr().expect("addr").to_string();
        let a2 = l2.local_addr().expect("addr").to_string();
        let ep = |stage, listener, connect: Option<String>| WorkerEndpoints {
            stage,
            listener,
            shm_ingress: None,
            connect,
        };
        [
            Some(ep(0, None, Some(a1))),
            Some(ep(1, Some(l1), Some(a2))),
            Some(ep(2, Some(l2), None)),
        ]
    };
    let bytes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for endpoints in endpoints.iter_mut().map(|e| e.take().unwrap()) {
            let bytes = Arc::clone(&bytes);
            scope.spawn(move || {
                echo_worker_pipeline(packets, payload, bytes)
                    .run_worker(endpoints)
                    .expect("distributed echo worker");
            });
        }
    });
    bytes.load(Ordering::Relaxed)
}

/// Paired best-of-`reps` throughput for the two same-host transports,
/// interleaved like [`echo_paired_packets_per_sec`]. Returns
/// `(tcp, shm)` in packets per second.
pub fn transport_paired_packets_per_sec(packets: usize, payload: usize, reps: usize) -> (f64, f64) {
    let expect = (packets * payload) as u64;
    let mut best = [f64::INFINITY; 2];
    for rep in 0..reps.max(1) {
        let order = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for slot in order {
            let start = Instant::now();
            let got = run_distributed_echo(slot == 1, packets, payload);
            let dt = start.elapsed().as_secs_f64();
            assert_eq!(got, expect, "distributed echo lost bytes");
            best[slot] = best[slot].min(dt);
        }
    }
    (packets as f64 / best[0], packets as f64 / best[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_conserves_bytes_in_all_configurations() {
        for cfg in [
            EchoConfig::legacy(100, 64),
            EchoConfig::batched(100, 64),
            EchoConfig::spsc(100, 64),
            EchoConfig::batched(100, 64).with_sampling(),
        ] {
            assert_eq!(run_packet_echo(&cfg), 100 * 64, "{cfg:?}");
        }
    }

    #[test]
    fn distributed_echo_conserves_bytes_on_both_transports() {
        assert_eq!(run_distributed_echo(false, 64, 128), 64 * 128);
        if cgp_core::datacutter::shm_supported() {
            assert_eq!(run_distributed_echo(true, 64, 128), 64 * 128);
        }
    }
}
