//! Shared packet-echo microbench for the data plane.
//!
//! Used by `benches/dataplane.rs` (criterion suite) and the
//! `dataplane_guard` regression binary so both measure exactly the same
//! pipeline: a three-stage source → echo → sink that moves `packets`
//! buffers of `payload` bytes. Two configurations matter:
//!
//! * **legacy** — `batch = 1`, no buffer pool: every packet is a fresh
//!   allocation, every hop one lock acquisition and one condvar wakeup.
//! * **batched** — `batch = 8` with a [`BufferPool`]: packet storage is
//!   recycled and up to `batch` packets move per lock acquisition.
//!
//! The committed `BENCH_dataplane.json` baseline records both rates; the
//! tentpole acceptance bar is batched ≥ 2× legacy.

use cgp_core::datacutter::{
    Buffer, BufferPool, ClosureFilter, FilterIo, Pipeline, StageSpec, TelemetryConfig,
};
use cgp_obs::telemetry::TelemetrySampler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One packet-echo configuration; see the module docs for the two
/// interesting points in this space.
#[derive(Clone, Debug)]
pub struct EchoConfig {
    /// Packets pushed by the source.
    pub packets: usize,
    /// Bytes per packet.
    pub payload: usize,
    /// Stream batch size (1 = per-packet semantics).
    pub batch: usize,
    /// Whether stages allocate from a shared [`BufferPool`].
    pub pooled: bool,
    /// Whether the telemetry plane samples the run (50 ms cadence, no
    /// log sink) — the guard asserts sampling stays within 5% of the
    /// unsampled rate.
    pub sampled: bool,
}

impl EchoConfig {
    /// The pre-PR data plane: per-packet sends, fresh allocations.
    pub fn legacy(packets: usize, payload: usize) -> Self {
        EchoConfig {
            packets,
            payload,
            batch: 1,
            pooled: false,
            sampled: false,
        }
    }

    /// The pooled + batched data plane at the default batch of 8.
    pub fn batched(packets: usize, payload: usize) -> Self {
        EchoConfig {
            packets,
            payload,
            batch: 8,
            pooled: true,
            sampled: false,
        }
    }

    /// Enable in-flight telemetry sampling on this configuration.
    pub fn with_sampling(mut self) -> Self {
        self.sampled = true;
        self
    }
}

/// Run the echo pipeline once. Returns total bytes observed by the sink
/// (always `packets * payload`; asserted by callers).
pub fn run_packet_echo(cfg: &EchoConfig) -> u64 {
    let EchoConfig {
        packets,
        payload,
        batch,
        pooled,
        sampled,
    } = *cfg;
    let bytes = Arc::new(AtomicU64::new(0));
    let sink_bytes = Arc::clone(&bytes);

    let mut pipeline = Pipeline::new().with_capacity(64).with_batch(batch);
    if pooled {
        pipeline = pipeline.with_pool(BufferPool::new());
    }
    if sampled {
        let sampler = Arc::new(TelemetrySampler::new(Duration::from_millis(50)));
        pipeline = pipeline.with_telemetry(TelemetryConfig::new(sampler, "echo"));
    }
    pipeline
        .add_stage(StageSpec::new(
            "src",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("src", move |io: &mut FilterIo| {
                    let mut pending: Vec<Buffer> = Vec::with_capacity(batch);
                    for i in 0..packets {
                        let mut v = io.alloc(payload);
                        v.resize(payload, (i & 0xFF) as u8);
                        pending.push(io.seal(v));
                        if pending.len() >= batch {
                            io.write_batch(std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch),
                            ))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "echo",
            1,
            Box::new(move |_| {
                Box::new(ClosureFilter::new("echo", move |io: &mut FilterIo| {
                    let mut pending: Vec<Buffer> = Vec::with_capacity(batch);
                    while let Some(b) = io.read() {
                        pending.push(b);
                        if pending.len() >= batch {
                            io.write_batch(std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch),
                            ))?;
                        }
                    }
                    io.write_batch(pending)
                }))
            }),
        ))
        .add_stage(StageSpec::new(
            "sink",
            1,
            Box::new(move |_| {
                let bytes = Arc::clone(&sink_bytes);
                Box::new(ClosureFilter::new("sink", move |io: &mut FilterIo| {
                    while let Some(b) = io.read() {
                        bytes.fetch_add(b.len() as u64, Ordering::Relaxed);
                    }
                    Ok(())
                }))
            }),
        ))
        .run()
        .expect("echo pipeline failed");
    bytes.load(Ordering::Relaxed)
}

/// Best-of-`reps` throughput in packets per second. Each rep runs the
/// full pipeline (thread spawn included, as in real deployments) and the
/// byte conservation invariant is asserted every time.
pub fn echo_packets_per_sec(cfg: &EchoConfig, reps: usize) -> f64 {
    let expect = (cfg.packets * cfg.payload) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let got = run_packet_echo(cfg);
        let dt = start.elapsed().as_secs_f64();
        assert_eq!(got, expect, "packet-echo lost bytes");
        best = best.min(dt);
    }
    cfg.packets as f64 / best
}

/// Best-of-`reps` for two configurations with the reps interleaved
/// (a b, b a, a b, …), so both sample the same noise window. Sequential
/// best-of runs on a busy machine systematically penalize whichever
/// configuration runs later; a paired comparison with the within-pair
/// order alternated (used by the guard's sampling-overhead check) does
/// not favor either slot.
pub fn echo_paired_packets_per_sec(a: &EchoConfig, b: &EchoConfig, reps: usize) -> (f64, f64) {
    let mut best = [f64::INFINITY; 2];
    for rep in 0..reps.max(1) {
        let order = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
        for slot in order {
            let cfg = if slot == 0 { a } else { b };
            let expect = (cfg.packets * cfg.payload) as u64;
            let start = Instant::now();
            let got = run_packet_echo(cfg);
            let dt = start.elapsed().as_secs_f64();
            assert_eq!(got, expect, "packet-echo lost bytes");
            best[slot] = best[slot].min(dt);
        }
    }
    (a.packets as f64 / best[0], b.packets as f64 / best[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_conserves_bytes_in_all_configurations() {
        for cfg in [
            EchoConfig::legacy(100, 64),
            EchoConfig::batched(100, 64),
            EchoConfig::batched(100, 64).with_sampling(),
        ] {
            assert_eq!(run_packet_echo(&cfg), 100 * 64, "{cfg:?}");
        }
    }
}
