//! Process-level chaos: SIGKILL real worker processes mid-stream and
//! assert the supervised launcher masks the crash — the distributed
//! output stays byte-identical to the in-process reference run (the
//! launcher itself diffs them and fails loudly on divergence), the
//! restart count stays bounded, and budget exhaustion falls over to a
//! cost-model replan instead of dying.
//!
//! The vehicle is the `fig05_zbuf_small` figure binary in launcher mode:
//! `CGP_KILL=<stage>[<copy>]#<packet>` makes exactly one worker raise
//! SIGKILL against itself at a deterministic packet index (the spec only
//! arms in worker roles, so neither the launcher nor its in-process
//! reference run ever self-kills).

use cgp_core::datacutter::shm_supported;
use std::process::{Command, Output};

fn fig_bin() -> &'static str {
    env!("CARGO_BIN_EXE_fig05_zbuf_small")
}

/// Run the figure binary as a supervised launcher with `kill_spec`
/// armed, over `transport`, with `extra` flags appended.
fn run_chaos(kill_spec: &str, transport: &str, extra: &[&str]) -> Output {
    Command::new(fig_bin())
        .args([
            "--role",
            "launcher",
            "--recover",
            "--checkpoint-every",
            "2",
            "--transport",
            transport,
        ])
        .args(extra)
        .env("CGP_KILL", kill_spec)
        .env_remove("CGP_FAULTS")
        .env_remove("CGP_TRACE")
        .output()
        .expect("spawn launcher")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The launcher only prints this after diffing the distributed output
/// against its own in-process run — it *is* the byte-identity oracle.
const MATCH_LINE: &str = "matches the in-process run";

fn assert_masked(out: &Output, expect_restarts: &str) {
    let stdout = stdout_of(out);
    let stderr = stderr_of(out);
    assert!(
        out.status.success(),
        "launcher failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains(MATCH_LINE),
        "missing byte-identity line\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("[obs] supervisor: worker stage"),
        "the injected kill never fired\nstderr:\n{stderr}"
    );
    // Bounded recovery: exactly one deterministic crash, exactly one
    // prefix restart — a supervisor that loops respawns would show more.
    assert!(
        stderr.contains(expect_restarts),
        "unexpected restart accounting (wanted {expect_restarts:?})\nstderr:\n{stderr}"
    );
}

#[test]
fn tcp_kill_middle_stage_mid_stream_is_masked() {
    let out = run_chaos("f2[0]#2", "tcp", &[]);
    assert_masked(
        &out,
        "masked 1 worker crash(es) with prefix restarts (1 total restarts)",
    );
}

#[test]
fn tcp_kill_source_early_is_masked() {
    let out = run_chaos("f1[0]#1", "tcp", &[]);
    assert_masked(
        &out,
        "masked 1 worker crash(es) with prefix restarts (1 total restarts)",
    );
    // Killing the source restarts only stage 0; the survivors rejoin.
    assert!(
        stderr_of(&out).contains("restarting stages 0..=0"),
        "source death must not restart the survivors\nstderr:\n{}",
        stderr_of(&out)
    );
}

#[test]
fn shm_kill_middle_stage_mid_stream_is_masked() {
    if !shm_supported() {
        return;
    }
    let out = run_chaos("f2[0]#2", "shm", &[]);
    assert_masked(
        &out,
        "masked 1 worker crash(es) with prefix restarts (1 total restarts)",
    );
}

#[test]
fn shm_kill_last_stage_late_is_masked() {
    if !shm_supported() {
        return;
    }
    // The last stage owns the result stdout: its respawn must re-produce
    // the committed output prefix exactly (the launcher verifies it),
    // and the whole chain restarts behind it.
    let out = run_chaos("f3[0]#4", "shm", &[]);
    assert_masked(
        &out,
        "masked 1 worker crash(es) with prefix restarts (1 total restarts)",
    );
    assert!(
        stderr_of(&out).contains("restarting stages 0..=2"),
        "last-stage death restarts the whole chain\nstderr:\n{}",
        stderr_of(&out)
    );
}

#[test]
fn durable_checkpoints_survive_the_crash() {
    let dir = std::env::temp_dir().join(format!("cgp-chaos-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let dir_s = dir.display().to_string();
    let out = run_chaos("f2[0]#2", "tcp", &["--checkpoint-dir", &dir_s]);
    assert_masked(&out, "masked 1 worker crash(es)");
    // Stateful stages persisted crash-consistent snapshots; a fresh
    // process can decode them (no torn commits — tmp+rename).
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .collect();
    assert!(
        !snapshots.is_empty(),
        "no durable snapshots in {dir_s} after a --checkpoint-dir run"
    );
    for entry in &snapshots {
        let path = entry.path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf8 snapshot name");
        let (stage, copy) = stem.rsplit_once('-').expect("stage-copy snapshot name");
        let copy: usize = copy.parse().expect("copy index in snapshot name");
        let bytes = std::fs::read(&path).expect("read snapshot");
        cgp_core::datacutter::decode_snapshot(&bytes, stage, copy)
            .unwrap_or_else(|e| panic!("torn snapshot {path:?}: {e}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_exhaustion_fails_over_to_a_replanned_run() {
    let out = run_chaos("f2[0]#2", "tcp", &["--max-worker-restarts", "0"]);
    let stdout = stdout_of(&out);
    let stderr = stderr_of(&out);
    assert!(
        out.status.success(),
        "failover path must succeed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("exhausted restarts"),
        "missing budget-exhaustion report\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("[obs] failover"),
        "missing replan report\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("failed over to a replanned in-process run; output matches"),
        "failover output must be diffed and match\nstdout:\n{stdout}"
    );
}

#[test]
fn unsupervised_worker_death_fails_loudly() {
    // Without --recover there is no supervision: the kill must surface
    // as a named worker exit, not a hang or a silent truncated result.
    let out = Command::new(fig_bin())
        .args(["--role", "launcher", "--transport", "tcp"])
        .env("CGP_KILL", "f2[0]#2")
        .output()
        .expect("spawn launcher");
    let stderr = stderr_of(&out);
    assert!(
        !out.status.success(),
        "unsupervised crash must fail the run"
    );
    assert!(
        stderr.contains("exited with"),
        "missing named worker-exit error\nstderr:\n{stderr}"
    );
}
