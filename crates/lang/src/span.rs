//! Source positions and spans for diagnostics.

use std::fmt;

/// A half-open byte range into a source string, with line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `start..end` beginning at `line:col`.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The zero span, used for synthesized nodes (e.g. after loop fission).
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// Smallest span covering both `self` and `other`.
    /// Line/column come from whichever starts first.
    pub fn merge(self, other: Span) -> Span {
        let (line, col) = if self.start <= other.start {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }

    /// True for spans created with [`Span::synthetic`].
    pub fn is_synthetic(&self) -> bool {
        *self == Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_earliest_position() {
        let a = Span::new(10, 20, 2, 3);
        let b = Span::new(5, 15, 1, 6);
        let m = a.merge(b);
        assert_eq!(m.start, 5);
        assert_eq!(m.end, 20);
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 6);
    }

    #[test]
    fn merge_is_commutative() {
        let a = Span::new(10, 20, 2, 3);
        let b = Span::new(5, 15, 1, 6);
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn synthetic_displays_marker() {
        assert_eq!(Span::synthetic().to_string(), "<synthetic>");
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::new(0, 1, 1, 1).is_synthetic());
    }
}
