//! Pretty-printer for the AST, used in diagnostics, tests of rewriting
//! passes (loop fission), and generated-plan dumps.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program back to (normalized) dialect source.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for e in &p.externs {
        let kw = if e.runtime_define {
            "runtime_define"
        } else {
            "extern"
        };
        let _ = writeln!(out, "{kw} {} {};", e.ty, e.name);
    }
    for c in &p.classes {
        let imp = if c.is_reduction {
            " implements Reducinterface"
        } else {
            ""
        };
        let _ = writeln!(out, "class {}{imp} {{", c.name);
        for f in &c.fields {
            let _ = writeln!(out, "    {} {};", f.ty, f.name);
        }
        for m in &c.methods {
            let params: Vec<String> = m
                .params
                .iter()
                .map(|p| format!("{} {}", p.ty, p.name))
                .collect();
            let _ = writeln!(out, "    {} {}({}) {{", m.ret, m.name, params.join(", "));
            for s in &m.body.stmts {
                write_stmt(&mut out, s, 2);
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Render a statement list at an indent level (used for filter body dumps).
pub fn stmts_to_string(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        write_stmt(&mut out, s, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        write_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn write_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match &s.kind {
        StmtKind::VarDecl { name, ty, init } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr_to_string(e));
            }
            out.push_str(";\n");
        }
        StmtKind::Assign { target, op, value } => {
            let t = match target {
                LValue::Var(n) => n.clone(),
                LValue::Field(b, f) => format!("{}.{f}", expr_to_string(b)),
                LValue::Index(b, i) => format!("{}[{}]", expr_to_string(b), expr_to_string(i)),
            };
            let o = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
            };
            let _ = writeln!(out, "{t} {o} {};", expr_to_string(value));
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = write!(out, "if ({}) ", expr_to_string(cond));
            write_block(out, then_blk, level);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                write_block(out, e, level);
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            let _ = write!(out, "while ({}) ", expr_to_string(cond));
            write_block(out, body, level);
            out.push('\n');
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                let mut tmp = String::new();
                write_stmt(&mut tmp, i, 0);
                out.push_str(tmp.trim_end().trim_end_matches(';'));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&expr_to_string(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                let mut tmp = String::new();
                write_stmt(&mut tmp, st, 0);
                out.push_str(tmp.trim_end().trim_end_matches(';'));
            }
            out.push_str(") ");
            write_block(out, body, level);
            out.push('\n');
        }
        StmtKind::Foreach { var, domain, body } => {
            let _ = write!(out, "foreach ({var} in {}) ", expr_to_string(domain));
            write_block(out, body, level);
            out.push('\n');
        }
        StmtKind::Pipelined {
            var,
            domain,
            num_packets,
            body,
        } => {
            let _ = write!(
                out,
                "PipelinedLoop ({var} in {}; {}) ",
                expr_to_string(domain),
                expr_to_string(num_packets)
            );
            write_block(out, body, level);
            out.push('\n');
        }
        StmtKind::Return(v) => match v {
            Some(e) => {
                let _ = writeln!(out, "return {};", expr_to_string(e));
            }
            None => out.push_str("return;\n"),
        },
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr_to_string(e));
        }
        StmtKind::Block(b) => {
            write_block(out, b, level);
            out.push('\n');
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
    }
}

/// Render an expression (fully parenthesized for unambiguity).
pub fn expr_to_string(e: &Expr) -> String {
    match &e.kind {
        // Negative literals only arise synthetically (constant folding —
        // the parser builds `Unary(Neg, lit)`). Print them in a form the
        // lexer can read back: parenthesized, and `i64::MIN` — whose
        // absolute value overflows the literal parser — as arithmetic.
        ExprKind::IntLit(v) => match *v {
            i64::MIN => "(-9223372036854775807 - 1)".to_string(),
            v if v < 0 => format!("({v})"),
            v => v.to_string(),
        },
        ExprKind::DoubleLit(v) => {
            // Non-finite values have no literal syntax; emit arithmetic
            // that evaluates back to the same value.
            if v.is_nan() {
                "(0.0 / 0.0)".to_string()
            } else if v.is_infinite() {
                if *v > 0.0 {
                    "(1.0 / 0.0)".to_string()
                } else {
                    "(-1.0 / 0.0)".to_string()
                }
            } else {
                let lit = if v.fract() == 0.0 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                };
                if v.is_sign_negative() {
                    format!("({lit})")
                } else {
                    lit
                }
            }
        }
        ExprKind::BoolLit(v) => v.to_string(),
        ExprKind::Null => "null".to_string(),
        ExprKind::Var(n) => n.clone(),
        ExprKind::This => "this".to_string(),
        ExprKind::Field(b, f) => format!("{}.{f}", expr_to_string(b)),
        ExprKind::Index(b, i) => format!("{}[{}]", expr_to_string(b), expr_to_string(i)),
        ExprKind::Unary(UnOp::Neg, x) => format!("(-{})", expr_to_string(x)),
        ExprKind::Unary(UnOp::Not, x) => format!("(!{})", expr_to_string(x)),
        ExprKind::Binary(op, l, r) => {
            format!("({} {op} {})", expr_to_string(l), expr_to_string(r))
        }
        ExprKind::Ternary(c, a, b) => format!(
            "({} ? {} : {})",
            expr_to_string(c),
            expr_to_string(a),
            expr_to_string(b)
        ),
        ExprKind::Call { recv, method, args } => {
            let argstr: Vec<String> = args.iter().map(expr_to_string).collect();
            match recv {
                Some(r) => format!("{}.{method}({})", expr_to_string(r), argstr.join(", ")),
                None => format!("{method}({})", argstr.join(", ")),
            }
        }
        ExprKind::New(c) => format!("new {c}()"),
        ExprKind::NewArray(t, len) => format!("new {t}[{}]", expr_to_string(len)),
        ExprKind::DomainLit(lo, hi) => {
            format!("[{} : {}]", expr_to_string(lo), expr_to_string(hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn roundtrip_reparses() {
        let src = r#"
            extern int n;
            class P { double x; double y; }
            class A {
                double f(P p) { return sqrt(p.x * p.x + p.y * p.y); }
                void main() {
                    RectDomain<1> d = [0 : n - 1];
                    int total = 0;
                    foreach (i in d) {
                        if (i % 2 == 0) { total += i; }
                    }
                    print(total);
                }
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse(&printed).unwrap();
        // Same shape: same classes/methods/statement counts.
        assert_eq!(p1.classes.len(), p2.classes.len());
        let count = |p: &crate::ast::Program| {
            let mut n = 0;
            p.visit_stmts(&mut |_| n += 1);
            n
        };
        assert_eq!(count(&p1), count(&p2));
        // And printing again is a fixpoint.
        assert_eq!(printed, program_to_string(&p2));
    }

    #[test]
    fn expr_printing_parenthesizes() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(expr_to_string(&e), "(a + (b * c))");
    }

    #[test]
    fn double_literals_keep_a_dot() {
        let e = parse_expr("2.0").unwrap();
        assert_eq!(expr_to_string(&e), "2.0");
    }

    #[test]
    fn synthetic_literals_print_reparseable_text() {
        // Constant folding can produce literals the parser never builds:
        // negative ints/doubles (the parser emits `Neg(lit)`), `i64::MIN`
        // (its absolute value overflows the literal lexer), and
        // non-finite doubles (no literal syntax at all). Each used to
        // print as unlexable text; all must now reparse.
        use crate::ast::ExprKind;
        use crate::span::Span;
        let cases = [
            ExprKind::IntLit(-7),
            ExprKind::IntLit(i64::MIN),
            ExprKind::DoubleLit(-0.5),
            ExprKind::DoubleLit(-3.0),
            ExprKind::DoubleLit(f64::INFINITY),
            ExprKind::DoubleLit(f64::NEG_INFINITY),
            ExprKind::DoubleLit(f64::NAN),
        ];
        for kind in cases {
            let e = Expr::new(Span::synthetic(), kind);
            let printed = expr_to_string(&e);
            parse_expr(&printed).unwrap_or_else(|d| panic!("`{printed}` does not reparse: {d:?}"));
        }
        assert_eq!(
            expr_to_string(&Expr::new(Span::synthetic(), ExprKind::IntLit(-7))),
            "(-7)"
        );
    }
}
