//! Static type checker for the dialect.
//!
//! Beyond ordinary Java-like checking, it enforces the two semantic rules
//! the paper's constructs introduce (Section 3):
//!
//! 1. `foreach` iterates over a 1-D `RectDomain` and its loop variable is an
//!    `int` point; iteration order must not matter, so inside a `foreach`
//!    body a *reduction variable* (an object of a class implementing
//!    `Reducinterface`) may only be updated through its own methods
//!    (self-updates) — its intermediate value may not otherwise be read,
//!    assigned, or passed around.
//! 2. `PipelinedLoop (p in dom; num_packets)` requires `dom` to be a 1-D
//!    `RectDomain` and `num_packets` an `int`; the loop variable is bound to
//!    a `RectDomain<1>` packet.
//!
//! The checker forbids variable shadowing and duplicate locals within a
//! method so that downstream passes can use one flat scope per method
//! (see [`crate::symbols::MethodScope`]).

use crate::ast::*;
use crate::error::{type_err, Diagnostic};
use crate::span::Span;
use crate::symbols::{method_key, MethodScope, SymbolTable};
use std::collections::HashMap;

/// A program that passed type checking, bundled with its symbol table.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    pub program: Program,
    pub symbols: SymbolTable,
}

impl TypedProgram {
    /// Infer the type of `expr` as seen from inside `class::method`.
    /// Panics (debug) on expressions the checker would have rejected, so
    /// callers must only pass expressions from the checked program.
    pub fn expr_type(&self, class: &str, method: &str, expr: &Expr) -> Type {
        let c = self.program.class(class).expect("unknown class");
        let m = self.program.method(class, method).expect("unknown method");
        let mut ck = Checker::new(&self.program);
        ck.symbols = self.symbols.clone();
        ck.infer_in_context(c, m, expr)
            .expect("expr_type called on ill-typed expression")
    }
}

/// Type-check a program.
pub fn check(program: Program) -> Result<TypedProgram, Diagnostic> {
    let mut ck = Checker::new(&program);
    ck.collect_globals()?;
    for class in &program.classes {
        for method in &class.methods {
            ck.check_method(class, method)?;
        }
    }
    let symbols = ck.symbols;
    Ok(TypedProgram { program, symbols })
}

struct Checker<'p> {
    program: &'p Program,
    symbols: SymbolTable,
}

/// Mutable checking context for one method body.
struct Ctx<'a> {
    class: &'a ClassDecl,
    method: &'a MethodDecl,
    /// Flat per-method scope being built (no shadowing allowed).
    scope: MethodScope,
    /// Names of live reduction-typed variables (locals/params/fields of
    /// reduction class type) for the foreach rule.
    foreach_depth: u32,
    loop_depth: u32,
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Self {
        Checker {
            program,
            symbols: SymbolTable::default(),
        }
    }

    fn collect_globals(&mut self) -> Result<(), Diagnostic> {
        let mut seen_classes: HashMap<&str, Span> = HashMap::new();
        for c in &self.program.classes {
            if seen_classes.insert(&c.name, c.span).is_some() {
                return Err(type_err(c.span, format!("duplicate class `{}`", c.name)));
            }
            if c.is_reduction {
                self.symbols.reduction_classes.push(c.name.clone());
                // A reduction class must provide a combine method
                // `void reduce(Self other)` used to merge per-packet copies.
                let ok = c.methods.iter().any(|m| {
                    m.name == "reduce"
                        && m.ret == Type::Void
                        && m.params.len() == 1
                        && m.params[0].ty == Type::Class(c.name.clone())
                });
                if !ok {
                    return Err(type_err(
                        c.span,
                        format!(
                            "reduction class `{}` must define `void reduce({} other)`",
                            c.name, c.name
                        ),
                    ));
                }
            }
            let mut seen_fields: HashMap<&str, ()> = HashMap::new();
            for f in &c.fields {
                if seen_fields.insert(&f.name, ()).is_some() {
                    return Err(type_err(
                        f.span,
                        format!("duplicate field `{}` in class `{}`", f.name, c.name),
                    ));
                }
                self.check_type_exists(&f.ty, f.span)?;
            }
            let mut seen_methods: HashMap<&str, ()> = HashMap::new();
            for m in &c.methods {
                if seen_methods.insert(&m.name, ()).is_some() {
                    return Err(type_err(
                        m.span,
                        format!("duplicate method `{}` in class `{}`", m.name, c.name),
                    ));
                }
            }
        }
        let mut seen_ext: HashMap<&str, ()> = HashMap::new();
        for e in &self.program.externs {
            if seen_ext.insert(&e.name, ()).is_some() {
                return Err(type_err(e.span, format!("duplicate extern `{}`", e.name)));
            }
            self.check_type_exists(&e.ty, e.span)?;
            self.symbols.externs.insert(e.name.clone(), e.ty.clone());
        }
        Ok(())
    }

    fn check_type_exists(&self, ty: &Type, span: Span) -> Result<(), Diagnostic> {
        match ty {
            Type::Class(name) => {
                if self.program.class(name).is_none() {
                    return Err(type_err(span, format!("unknown class `{name}`")));
                }
                Ok(())
            }
            Type::Array(elem) => self.check_type_exists(elem, span),
            _ => Ok(()),
        }
    }

    fn check_method(&mut self, class: &ClassDecl, method: &MethodDecl) -> Result<(), Diagnostic> {
        let mut ctx = Ctx {
            class,
            method,
            scope: MethodScope::default(),
            foreach_depth: 0,
            loop_depth: 0,
        };
        for p in &method.params {
            self.check_type_exists(&p.ty, method.span)?;
            if ctx
                .scope
                .vars
                .insert(p.name.clone(), p.ty.clone())
                .is_some()
            {
                return Err(type_err(
                    method.span,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
        }
        self.check_block(&mut ctx, &method.body)?;
        self.symbols
            .method_scopes
            .insert(method_key(&class.name, &method.name), ctx.scope);
        Ok(())
    }

    fn declare(&self, ctx: &mut Ctx, name: &str, ty: Type, span: Span) -> Result<(), Diagnostic> {
        if ctx.scope.vars.contains_key(name)
            || ctx.class.field(name).is_some()
            || self.symbols.externs.contains_key(name)
        {
            return Err(type_err(
                span,
                format!("`{name}` shadows or duplicates an existing declaration (the dialect forbids shadowing)"),
            ));
        }
        ctx.scope.vars.insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, ctx: &Ctx, name: &str, span: Span) -> Result<Type, Diagnostic> {
        if let Some(t) = ctx.scope.get(name) {
            return Ok(t.clone());
        }
        if let Some(f) = ctx.class.field(name) {
            return Ok(f.ty.clone());
        }
        if let Some(t) = self.symbols.externs.get(name) {
            return Ok(t.clone());
        }
        Err(type_err(span, format!("unknown variable `{name}`")))
    }

    fn check_block(&self, ctx: &mut Ctx, block: &Block) -> Result<(), Diagnostic> {
        for s in &block.stmts {
            self.check_stmt(ctx, s)?;
        }
        Ok(())
    }

    fn check_stmt(&self, ctx: &mut Ctx, stmt: &Stmt) -> Result<(), Diagnostic> {
        match &stmt.kind {
            StmtKind::VarDecl { name, ty, init } => {
                self.check_type_exists(ty, stmt.span)?;
                if ty == &Type::Void {
                    return Err(type_err(stmt.span, "variables cannot have type void"));
                }
                if let Some(init) = init {
                    let it = self.infer(ctx, init)?;
                    self.require_assignable(ty, &it, init.span)?;
                }
                self.declare(ctx, name, ty.clone(), stmt.span)
            }
            StmtKind::Assign { target, op, value } => {
                let tt = self.infer_lvalue(ctx, target, stmt.span)?;
                let vt = self.infer(ctx, value)?;
                if *op != AssignOp::Set && !matches!(tt, Type::Int | Type::Double) {
                    return Err(type_err(
                        stmt.span,
                        format!("compound assignment requires a numeric target, got `{tt}`"),
                    ));
                }
                // Inside a foreach, reduction variables may not be reassigned
                // wholesale (only self-updates through their methods).
                if ctx.foreach_depth > 0 {
                    if let LValue::Var(name) = target {
                        if let Ok(Type::Class(c)) = self.lookup(ctx, name, stmt.span) {
                            if self.symbols.is_reduction_class(&c) {
                                return Err(type_err(
                                    stmt.span,
                                    format!(
                                        "reduction variable `{name}` may only be updated through its own methods inside foreach"
                                    ),
                                ));
                            }
                        }
                    }
                }
                self.require_assignable(&tt, &vt, value.span)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.require(ctx, cond, &Type::Bool)?;
                self.check_block(ctx, then_blk)?;
                if let Some(e) = else_blk {
                    self.check_block(ctx, e)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.require(ctx, cond, &Type::Bool)?;
                ctx.loop_depth += 1;
                let r = self.check_block(ctx, body);
                ctx.loop_depth -= 1;
                r
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.check_stmt(ctx, i)?;
                }
                if let Some(c) = cond {
                    self.require(ctx, c, &Type::Bool)?;
                }
                if let Some(s) = step {
                    self.check_stmt(ctx, s)?;
                }
                ctx.loop_depth += 1;
                let r = self.check_block(ctx, body);
                ctx.loop_depth -= 1;
                r
            }
            StmtKind::Foreach { var, domain, body } => {
                let dt = self.infer(ctx, domain)?;
                if !matches!(dt, Type::RectDomain(1)) {
                    return Err(type_err(
                        stmt.span,
                        format!("foreach expects a RectDomain<1>, got `{dt}`"),
                    ));
                }
                // Sibling foreach loops may reuse a loop variable (loop
                // fission produces exactly this shape); re-declaration is
                // fine as long as the type stays `int`.
                match ctx.scope.get(var) {
                    Some(Type::Int) => {}
                    Some(other) => {
                        return Err(type_err(
                            stmt.span,
                            format!("foreach variable `{var}` conflicts with existing `{other}` declaration"),
                        ))
                    }
                    None => self.declare(ctx, var, Type::Int, stmt.span)?,
                }
                ctx.foreach_depth += 1;
                ctx.loop_depth += 1;
                let r = self.check_block(ctx, body);
                ctx.foreach_depth -= 1;
                ctx.loop_depth -= 1;
                r
            }
            StmtKind::Pipelined {
                var,
                domain,
                num_packets,
                body,
            } => {
                if ctx.foreach_depth > 0 || ctx.loop_depth > 0 {
                    return Err(type_err(
                        stmt.span,
                        "PipelinedLoop cannot be nested inside another loop",
                    ));
                }
                let dt = self.infer(ctx, domain)?;
                if !matches!(dt, Type::RectDomain(1)) {
                    return Err(type_err(
                        stmt.span,
                        format!("PipelinedLoop expects a RectDomain<1>, got `{dt}`"),
                    ));
                }
                self.require(ctx, num_packets, &Type::Int)?;
                self.declare(ctx, var, Type::RectDomain(1), stmt.span)?;
                self.check_block(ctx, body)
            }
            StmtKind::Return(value) => {
                let ret = &ctx.method.ret;
                match (value, ret) {
                    (None, Type::Void) => Ok(()),
                    (None, other) => Err(type_err(
                        stmt.span,
                        format!("missing return value of type `{other}`"),
                    )),
                    (Some(_), Type::Void) => {
                        Err(type_err(stmt.span, "void method cannot return a value"))
                    }
                    (Some(v), ret) => {
                        let vt = self.infer(ctx, v)?;
                        let ret = ret.clone();
                        self.require_assignable(&ret, &vt, v.span)
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.infer(ctx, e)?;
                Ok(())
            }
            StmtKind::Block(b) => self.check_block(ctx, b),
            StmtKind::Break | StmtKind::Continue => {
                if ctx.loop_depth == 0 {
                    Err(type_err(stmt.span, "break/continue outside a loop"))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn infer_lvalue(&self, ctx: &Ctx, lv: &LValue, span: Span) -> Result<Type, Diagnostic> {
        match lv {
            LValue::Var(name) => self.lookup(ctx, name, span),
            LValue::Field(base, field) => {
                let bt = self.infer(ctx, base)?;
                self.field_type(&bt, field, span)
            }
            LValue::Index(base, idx) => {
                self.require(ctx, idx, &Type::Int)?;
                let bt = self.infer(ctx, base)?;
                match bt {
                    Type::Array(elem) => Ok(*elem),
                    other => Err(type_err(
                        span,
                        format!("cannot index non-array type `{other}`"),
                    )),
                }
            }
        }
    }

    fn field_type(&self, base: &Type, field: &str, span: Span) -> Result<Type, Diagnostic> {
        match base {
            Type::Class(cname) => {
                let c = self
                    .program
                    .class(cname)
                    .ok_or_else(|| type_err(span, format!("unknown class `{cname}`")))?;
                c.field(field).map(|f| f.ty.clone()).ok_or_else(|| {
                    type_err(span, format!("class `{cname}` has no field `{field}`"))
                })
            }
            other => Err(type_err(
                span,
                format!("cannot access field `{field}` on non-class type `{other}`"),
            )),
        }
    }

    fn require(&self, ctx: &Ctx, e: &Expr, want: &Type) -> Result<(), Diagnostic> {
        let t = self.infer(ctx, e)?;
        self.require_assignable(want, &t, e.span)
    }

    /// `int → double` widening is implicit; everything else must match.
    fn require_assignable(&self, want: &Type, got: &Type, span: Span) -> Result<(), Diagnostic> {
        let ok = want == got || (want == &Type::Double && got == &Type::Int);
        if ok {
            Ok(())
        } else {
            Err(type_err(
                span,
                format!("type mismatch: expected `{want}`, got `{got}`"),
            ))
        }
    }

    fn numeric_join(&self, a: &Type, b: &Type, span: Span) -> Result<Type, Diagnostic> {
        match (a, b) {
            (Type::Int, Type::Int) => Ok(Type::Int),
            (Type::Double, Type::Double)
            | (Type::Int, Type::Double)
            | (Type::Double, Type::Int) => Ok(Type::Double),
            _ => Err(type_err(
                span,
                format!("numeric operation on non-numeric types `{a}` and `{b}`"),
            )),
        }
    }

    fn infer(&self, ctx: &Ctx, e: &Expr) -> Result<Type, Diagnostic> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::DoubleLit(_) => Ok(Type::Double),
            ExprKind::BoolLit(_) => Ok(Type::Bool),
            ExprKind::Null => Err(type_err(
                e.span,
                "`null` may only be compared, not used as a value (dialect restriction)",
            )),
            ExprKind::Var(name) => {
                let t = self.lookup(ctx, name, e.span)?;
                // foreach rule: a reduction variable may not be read as a
                // plain value inside a foreach (only as a call receiver,
                // which Call handles without going through Var inference).
                if ctx.foreach_depth > 0 {
                    if let Type::Class(c) = &t {
                        if self.symbols.is_reduction_class(c) {
                            return Err(type_err(
                                e.span,
                                format!(
                                    "reduction variable `{name}` may only appear as a method-call receiver inside foreach"
                                ),
                            ));
                        }
                    }
                }
                Ok(t)
            }
            ExprKind::This => Ok(Type::Class(ctx.class.name.clone())),
            ExprKind::Field(base, field) => {
                let bt = self.infer(ctx, base)?;
                self.field_type(&bt, field, e.span)
            }
            ExprKind::Index(base, idx) => {
                self.require(ctx, idx, &Type::Int)?;
                let bt = self.infer(ctx, base)?;
                match bt {
                    Type::Array(elem) => Ok(*elem),
                    other => Err(type_err(
                        e.span,
                        format!("cannot index non-array type `{other}`"),
                    )),
                }
            }
            ExprKind::Unary(op, inner) => {
                let t = self.infer(ctx, inner)?;
                match op {
                    UnOp::Neg => self.numeric_join(&t, &Type::Int, e.span).map(|_| t),
                    UnOp::Not => {
                        self.require_assignable(&Type::Bool, &t, e.span)?;
                        Ok(Type::Bool)
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.infer(ctx, l)?;
                let rt = self.infer(ctx, r)?;
                if op.is_arith() {
                    self.numeric_join(&lt, &rt, e.span)
                } else if op.is_cmp() {
                    if matches!(op, BinOp::Eq | BinOp::Ne) && lt == rt {
                        // equality also allowed on bools and same classes
                        Ok(Type::Bool)
                    } else {
                        self.numeric_join(&lt, &rt, e.span)?;
                        Ok(Type::Bool)
                    }
                } else {
                    self.require_assignable(&Type::Bool, &lt, l.span)?;
                    self.require_assignable(&Type::Bool, &rt, r.span)?;
                    Ok(Type::Bool)
                }
            }
            ExprKind::Ternary(c, a, b) => {
                self.require(ctx, c, &Type::Bool)?;
                let at = self.infer(ctx, a)?;
                let bt = self.infer(ctx, b)?;
                if at == bt {
                    Ok(at)
                } else {
                    self.numeric_join(&at, &bt, e.span)
                }
            }
            ExprKind::Call { recv, method, args } => self.infer_call(ctx, e, recv, method, args),
            ExprKind::New(cname) => {
                if self.program.class(cname).is_none() {
                    return Err(type_err(e.span, format!("unknown class `{cname}`")));
                }
                Ok(Type::Class(cname.clone()))
            }
            ExprKind::NewArray(elem, len) => {
                self.check_type_exists(elem, e.span)?;
                self.require(ctx, len, &Type::Int)?;
                Ok(Type::array_of(elem.clone()))
            }
            ExprKind::DomainLit(lo, hi) => {
                self.require(ctx, lo, &Type::Int)?;
                self.require(ctx, hi, &Type::Int)?;
                Ok(Type::RectDomain(1))
            }
        }
    }

    fn infer_call(
        &self,
        ctx: &Ctx,
        e: &Expr,
        recv: &Option<Box<Expr>>,
        method: &str,
        args: &[Expr],
    ) -> Result<Type, Diagnostic> {
        let arg_types: Vec<Type> = args
            .iter()
            .map(|a| self.infer(ctx, a))
            .collect::<Result<_, _>>()?;
        match recv {
            None => {
                if is_builtin(method) {
                    return self.builtin_type(method, &arg_types, e.span);
                }
                // method of the enclosing class
                let m = ctx
                    .class
                    .methods
                    .iter()
                    .find(|m| m.name == *method)
                    .ok_or_else(|| {
                        type_err(
                            e.span,
                            format!(
                                "unknown function or method `{method}` in class `{}`",
                                ctx.class.name
                            ),
                        )
                    })?;
                self.check_call_args(m, &arg_types, e.span)?;
                Ok(m.ret.clone())
            }
            Some(r) => {
                // Receiver may be a reduction variable — that is the one
                // legal way to touch it inside a foreach, so bypass the
                // Var-read rule by inferring its type structurally.
                let rt = match &r.kind {
                    ExprKind::Var(name) => self.lookup(ctx, name, r.span)?,
                    _ => self.infer(ctx, r)?,
                };
                match &rt {
                    Type::RectDomain(1) => {
                        if DOMAIN_METHODS.contains(&method) {
                            if !arg_types.is_empty() {
                                return Err(type_err(
                                    e.span,
                                    format!("`{method}` takes no arguments"),
                                ));
                            }
                            Ok(Type::Int)
                        } else {
                            Err(type_err(
                                e.span,
                                format!("RectDomain has no method `{method}`"),
                            ))
                        }
                    }
                    Type::Array(_) => {
                        if ARRAY_METHODS.contains(&method) {
                            if !arg_types.is_empty() {
                                return Err(type_err(
                                    e.span,
                                    format!("`{method}` takes no arguments"),
                                ));
                            }
                            Ok(Type::Int)
                        } else {
                            Err(type_err(
                                e.span,
                                format!("arrays have no method `{method}`"),
                            ))
                        }
                    }
                    Type::Class(cname) => {
                        let m = self.program.method(cname, method).ok_or_else(|| {
                            type_err(e.span, format!("class `{cname}` has no method `{method}`"))
                        })?;
                        self.check_call_args(m, &arg_types, e.span)?;
                        Ok(m.ret.clone())
                    }
                    other => Err(type_err(
                        e.span,
                        format!("cannot call method `{method}` on type `{other}`"),
                    )),
                }
            }
        }
    }

    fn check_call_args(
        &self,
        m: &MethodDecl,
        arg_types: &[Type],
        span: Span,
    ) -> Result<(), Diagnostic> {
        if m.params.len() != arg_types.len() {
            return Err(type_err(
                span,
                format!(
                    "method `{}` expects {} argument(s), got {}",
                    m.name,
                    m.params.len(),
                    arg_types.len()
                ),
            ));
        }
        for (p, a) in m.params.iter().zip(arg_types) {
            self.require_assignable(&p.ty, a, span)?;
        }
        Ok(())
    }

    fn builtin_type(&self, name: &str, args: &[Type], span: Span) -> Result<Type, Diagnostic> {
        let numeric = |t: &Type| matches!(t, Type::Int | Type::Double);
        match name {
            "sqrt" | "floor" | "ceil" | "exp" | "log" => {
                if args.len() == 1 && numeric(&args[0]) {
                    Ok(Type::Double)
                } else {
                    Err(type_err(
                        span,
                        format!("`{name}` expects one numeric argument"),
                    ))
                }
            }
            "abs" => {
                if args.len() == 1 && numeric(&args[0]) {
                    Ok(args[0].clone())
                } else {
                    Err(type_err(span, "`abs` expects one numeric argument"))
                }
            }
            "min" | "max" => {
                if args.len() == 2 && numeric(&args[0]) && numeric(&args[1]) {
                    self.numeric_join(&args[0], &args[1], span)
                } else {
                    Err(type_err(
                        span,
                        format!("`{name}` expects two numeric arguments"),
                    ))
                }
            }
            "pow" => {
                if args.len() == 2 && numeric(&args[0]) && numeric(&args[1]) {
                    Ok(Type::Double)
                } else {
                    Err(type_err(span, "`pow` expects two numeric arguments"))
                }
            }
            "toInt" => {
                if args.len() == 1 && numeric(&args[0]) {
                    Ok(Type::Int)
                } else {
                    Err(type_err(span, "`toInt` expects one numeric argument"))
                }
            }
            "toDouble" => {
                if args.len() == 1 && numeric(&args[0]) {
                    Ok(Type::Double)
                } else {
                    Err(type_err(span, "`toDouble` expects one numeric argument"))
                }
            }
            "print" => {
                if args.len() == 1 {
                    Ok(Type::Void)
                } else {
                    Err(type_err(span, "`print` expects one argument"))
                }
            }
            _ => Err(type_err(span, format!("unknown builtin `{name}`"))),
        }
    }

    /// Used by [`TypedProgram::expr_type`]: infer in a rebuilt context.
    fn infer_in_context(
        &mut self,
        class: &ClassDecl,
        method: &MethodDecl,
        expr: &Expr,
    ) -> Result<Type, Diagnostic> {
        let scope = self
            .symbols
            .scope(&class.name, &method.name)
            .cloned()
            .unwrap_or_default();
        let ctx = Ctx {
            class,
            method,
            scope,
            foreach_depth: 0,
            loop_depth: 0,
        };
        self.infer(&ctx, expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TypedProgram, Diagnostic> {
        check(parse(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        let src = r#"
            extern int n;
            class Point { double x; double y; }
            class A {
                double dist(Point p) { return sqrt(p.x * p.x + p.y * p.y); }
                void main() {
                    RectDomain<1> d = [0 : n - 1];
                    foreach (i in d) {
                        Point p = new Point();
                        p.x = toDouble(i);
                        double r = dist(p);
                    }
                }
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = check_src("class A { void f() { x = 1; } }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_type_mismatch() {
        let err = check_src("class A { void f() { int x = true; } }").unwrap_err();
        assert!(err.message.contains("type mismatch"));
    }

    #[test]
    fn int_widens_to_double() {
        assert!(check_src("class A { void f() { double x = 1; } }").is_ok());
    }

    #[test]
    fn double_does_not_narrow_to_int() {
        assert!(check_src("class A { void f() { int x = 1.5; } }").is_err());
    }

    #[test]
    fn rejects_shadowing() {
        let err =
            check_src("class A { void f() { int x = 1; if (x > 0) { int x = 2; } } }").unwrap_err();
        assert!(err.message.contains("shadows"));
    }

    #[test]
    fn reduction_class_needs_reduce_method() {
        let err = check_src("class R implements Reducinterface { int v; }").unwrap_err();
        assert!(err.message.contains("reduce"));
    }

    #[test]
    fn reduction_class_with_reduce_ok() {
        let src = r#"
            class R implements Reducinterface {
                int v;
                void reduce(R other) { v = v + other.v; }
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn reduction_var_not_readable_in_foreach() {
        let src = r#"
            class R implements Reducinterface {
                int v;
                void reduce(R other) { v = v + other.v; }
                void add(int x) { v = v + x; }
            }
            class A {
                void main() {
                    R acc = new R();
                    RectDomain<1> d = [0 : 9];
                    foreach (i in d) {
                        R alias = acc;
                    }
                }
            }
        "#;
        let err = check_src(src).unwrap_err();
        assert!(err.message.contains("reduction variable"));
    }

    #[test]
    fn reduction_var_self_update_ok_in_foreach() {
        let src = r#"
            class R implements Reducinterface {
                int v;
                void reduce(R other) { v = v + other.v; }
                void add(int x) { v = v + x; }
            }
            class A {
                void main() {
                    R acc = new R();
                    RectDomain<1> d = [0 : 9];
                    foreach (i in d) {
                        acc.add(i);
                    }
                }
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn foreach_requires_domain() {
        let err = check_src("class A { void f() { foreach (i in 5) { } } }").unwrap_err();
        assert!(err.message.contains("RectDomain"));
    }

    #[test]
    fn pipelined_loop_cannot_nest_in_loop() {
        let src = r#"
            class A { void main() {
                RectDomain<1> d = [0 : 9];
                while (true) {
                    PipelinedLoop (p in d; 4) { }
                }
            } }
        "#;
        let err = check_src(src).unwrap_err();
        assert!(err.message.contains("nested"));
    }

    #[test]
    fn domain_methods_are_int() {
        let src = r#"
            class A { void f() {
                RectDomain<1> d = [0 : 9];
                int a = d.lo();
                int b = d.hi();
                int c = d.size();
            } }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn array_length_is_int() {
        let src = "class A { void f(double[] xs) { int n = xs.length(); } }";
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(check_src("class A { void f() { break; } }").is_err());
    }

    #[test]
    fn method_call_arity_checked() {
        let src = r#"
            class A {
                int g(int x) { return x; }
                void f() { int y = g(1, 2); }
            }
        "#;
        let err = check_src(src).unwrap_err();
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn expr_type_api_works() {
        let src = r#"
            class A { void f() { double x = 1.5; int i = 2; } }
        "#;
        let tp = check_src(src).unwrap();
        let e = crate::parser::parse_expr("x + i").unwrap();
        assert_eq!(tp.expr_type("A", "f", &e), Type::Double);
    }

    #[test]
    fn return_type_checked() {
        assert!(check_src("class A { int f() { return true; } }").is_err());
        assert!(check_src("class A { int f() { return 1; } }").is_ok());
        assert!(check_src("class A { void f() { return 1; } }").is_err());
    }
}
