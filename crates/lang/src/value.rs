//! Runtime values for the dialect interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value. Arrays and objects have reference semantics (shared
/// mutable), matching Java; everything else is a copied scalar.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Double(f64),
    Bool(bool),
    Void,
    /// Inclusive 1-D rectdomain `[lo, hi]`. `lo > hi` encodes an empty
    /// domain.
    Domain(i64, i64),
    Array(Rc<RefCell<Vec<Value>>>),
    Object(Rc<RefCell<ObjectVal>>),
    Null,
}

/// Heap object: class name plus field values.
#[derive(Debug, Clone)]
pub struct ObjectVal {
    pub class: String,
    pub fields: HashMap<String, Value>,
}

impl Value {
    pub fn new_array(len: usize, fill: Value) -> Value {
        Value::Array(Rc::new(RefCell::new(vec![fill; len])))
    }

    pub fn new_object(class: impl Into<String>, fields: HashMap<String, Value>) -> Value {
        Value::Object(Rc::new(RefCell::new(ObjectVal {
            class: class.into(),
            fields,
        })))
    }

    /// Numeric value as f64 (int widens); None for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Number of points in a domain value.
    pub fn domain_size(&self) -> Option<i64> {
        match self {
            Value::Domain(lo, hi) => Some((hi - lo + 1).max(0)),
            _ => None,
        }
    }

    /// Structural equality used by tests: deep for arrays/objects, bitwise
    /// for doubles.
    pub fn deep_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Void, Value::Void) | (Value::Null, Value::Null) => true,
            (Value::Domain(a1, a2), Value::Domain(b1, b2)) => a1 == b1 && a2 == b2,
            (Value::Array(a), Value::Array(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.deep_eq(y))
            }
            (Value::Object(a), Value::Object(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.class == b.class
                    && a.fields.len() == b.fields.len()
                    && a.fields
                        .iter()
                        .all(|(k, v)| b.fields.get(k).is_some_and(|w| v.deep_eq(w)))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Void => write!(f, "void"),
            Value::Null => write!(f, "null"),
            Value::Domain(lo, hi) => write!(f, "[{lo} : {hi}]"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if i >= 8 {
                        write!(f, "... ({} elems)", a.borrow().len())?;
                        break;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(o) => {
                let o = o.borrow();
                write!(f, "{}{{", o.class)?;
                let mut keys: Vec<_> = o.fields.keys().collect();
                keys.sort();
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {}", o.fields[*k])?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Double(3.0).as_i64(), None);
    }

    #[test]
    fn domain_size_handles_empty() {
        assert_eq!(Value::Domain(0, 9).domain_size(), Some(10));
        assert_eq!(Value::Domain(5, 4).domain_size(), Some(0));
    }

    #[test]
    fn arrays_share_storage() {
        let a = Value::new_array(3, Value::Int(0));
        let b = a.clone();
        if let Value::Array(arr) = &a {
            arr.borrow_mut()[0] = Value::Int(7);
        }
        if let Value::Array(arr) = &b {
            assert_eq!(arr.borrow()[0].as_i64(), Some(7));
        }
    }

    #[test]
    fn deep_eq_arrays_and_objects() {
        let a = Value::new_array(2, Value::Int(1));
        let b = Value::new_array(2, Value::Int(1));
        assert!(a.deep_eq(&b));
        let mut f1 = HashMap::new();
        f1.insert("x".to_string(), Value::Double(1.0));
        let o1 = Value::new_object("P", f1.clone());
        let o2 = Value::new_object("P", f1);
        assert!(o1.deep_eq(&o2));
        assert!(!o1.deep_eq(&a));
    }

    #[test]
    fn display_truncates_long_arrays() {
        let a = Value::new_array(100, Value::Int(0));
        let s = a.to_string();
        assert!(s.contains("100 elems"));
    }
}
