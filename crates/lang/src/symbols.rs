//! Symbol tables produced by type checking and consumed by the compiler
//! passes and the interpreter.

use crate::ast::{ClassDecl, MethodDecl, Program, Type};
use std::collections::HashMap;

/// Fully-qualified method key, `Class::method`.
pub fn method_key(class: &str, method: &str) -> String {
    format!("{class}::{method}")
}

/// Name resolution data for one method: every parameter and local variable
/// with its declared type. The dialect forbids shadowing and duplicate local
/// names within a method, so a flat map suffices to answer "what is the type
/// of `x` anywhere inside this method".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MethodScope {
    pub vars: HashMap<String, Type>,
}

impl MethodScope {
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }
}

/// Symbol information for a whole program.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Class name → is_reduction flag (classes are also reachable through
    /// the AST; this caches the reduction set for fast queries).
    pub reduction_classes: Vec<String>,
    /// `Class::method` → its scope.
    pub method_scopes: HashMap<String, MethodScope>,
    /// Extern / runtime_define globals.
    pub externs: HashMap<String, Type>,
}

impl SymbolTable {
    /// Is `class_name` a reduction class (`implements Reducinterface`)?
    pub fn is_reduction_class(&self, class_name: &str) -> bool {
        self.reduction_classes.iter().any(|c| c == class_name)
    }

    /// Scope for `Class::method`.
    pub fn scope(&self, class: &str, method: &str) -> Option<&MethodScope> {
        self.method_scopes.get(&method_key(class, method))
    }

    /// Resolve the type of a bare name inside `Class::method`: local or
    /// parameter first, then a field of the class, then an extern.
    pub fn resolve(
        &self,
        program: &Program,
        class: &ClassDecl,
        method: &MethodDecl,
        name: &str,
    ) -> Option<Type> {
        let _ = program;
        if let Some(t) = self
            .scope(&class.name, &method.name)
            .and_then(|s| s.get(name))
        {
            return Some(t.clone());
        }
        if let Some(f) = class.field(name) {
            return Some(f.ty.clone());
        }
        self.externs.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_key_format() {
        assert_eq!(method_key("A", "main"), "A::main");
    }

    #[test]
    fn reduction_lookup() {
        let t = SymbolTable {
            reduction_classes: vec!["ZBuf".into()],
            ..Default::default()
        };
        assert!(t.is_reduction_class("ZBuf"));
        assert!(!t.is_reduction_class("Triangle"));
    }
}
