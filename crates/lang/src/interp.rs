//! Tree-walking interpreter for the dialect.
//!
//! Two uses:
//!
//! 1. **Sequential oracle** — [`Interp::run_main`] executes a whole program
//!    with the paper's sequential semantics (a `PipelinedLoop` simply runs
//!    its packets one after another). Decomposed, pipelined executions are
//!    validated against this.
//! 2. **Filter bodies (Path A)** — the compiler-generated filters execute
//!    statement slices of `main` via [`Interp::exec_stmts_with_vars`], with
//!    variable bindings seeded from unpacked stream buffers.

use crate::ast::*;
use crate::error::{interp_err, LangResult};
use crate::span::Span;
use crate::types::TypedProgram;
use crate::value::{ObjectVal, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Host-supplied bindings for `extern` and `runtime_define` globals.
#[derive(Debug, Clone, Default)]
pub struct HostEnv {
    pub values: HashMap<String, Value>,
}

impl HostEnv {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn bind(mut self, name: impl Into<String>, value: Value) -> Self {
        self.values.insert(name.into(), value);
        self
    }
}

/// Split the inclusive domain `[lo, hi]` into `n` contiguous, balanced,
/// non-overlapping packets covering it exactly. Used identically by the
/// sequential interpreter, the compiler and the runtime, so all three agree
/// on packet boundaries.
pub fn split_domain(lo: i64, hi: i64, n: usize) -> Vec<(i64, i64)> {
    assert!(n > 0, "cannot split into zero packets");
    let total = (hi - lo + 1).max(0);
    if total == 0 {
        return Vec::new();
    }
    let n = (n as i64).min(total);
    let base = total / n;
    let rem = total % n;
    let mut out = Vec::with_capacity(n as usize);
    let mut start = lo;
    for p in 0..n {
        let len = base + if p < rem { 1 } else { 0 };
        out.push((start, start + len - 1));
        start += len;
    }
    out
}

/// Control-flow result of executing a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// One activation record.
struct Frame {
    class: String,
    this_obj: Option<Rc<RefCell<ObjectVal>>>,
    vars: HashMap<String, Value>,
}

/// The interpreter. See module docs.
pub struct Interp<'p> {
    tp: &'p TypedProgram,
    /// Extern / runtime_define values.
    pub globals: HashMap<String, Value>,
    /// Captured `print()` output.
    pub output: Vec<String>,
    /// Executed statement+expression step counter (cost/debug aid).
    pub steps: u64,
    /// Optional step budget; exceeding it aborts with an error.
    pub fuel: Option<u64>,
}

impl<'p> Interp<'p> {
    pub fn new(tp: &'p TypedProgram, host: HostEnv) -> Self {
        Interp {
            tp,
            globals: host.values,
            output: Vec::new(),
            steps: 0,
            fuel: None,
        }
    }

    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    fn tick(&mut self, span: Span) -> LangResult<()> {
        self.steps += 1;
        if let Some(fuel) = self.fuel {
            if self.steps > fuel {
                return Err(interp_err(span, "interpreter fuel exhausted"));
            }
        }
        Ok(())
    }

    /// Check all externs are bound, then run `main`. Returns the frame's
    /// final local variables (useful for inspecting results in tests).
    pub fn run_main(&mut self) -> LangResult<HashMap<String, Value>> {
        for e in &self.tp.program.externs {
            if !self.globals.contains_key(&e.name) {
                return Err(interp_err(
                    e.span,
                    format!("extern `{}` was not bound by the host", e.name),
                ));
            }
        }
        let (class, method) = self
            .tp
            .program
            .main()
            .ok_or_else(|| interp_err(Span::synthetic(), "program has no `main` method"))?;
        let (class_name, method_name) = (class.name.clone(), method.name.clone());
        let this_obj = self.instantiate(&class_name)?;
        let mut frame = Frame {
            class: class_name.clone(),
            this_obj: Some(this_obj),
            vars: HashMap::new(),
        };
        let body = self
            .tp
            .program
            .method(&class_name, &method_name)
            .expect("main exists")
            .body
            .clone();
        self.exec_block(&mut frame, &body)?;
        Ok(frame.vars)
    }

    /// Execute a statement slice in the context of `class::method`, using
    /// `vars` as the live local bindings (mutated in place). This is the
    /// Path-A filter execution entry point: the caller unpacks ReqComm
    /// values into `vars` beforehand and packs the needed survivors after.
    pub fn exec_stmts_with_vars(
        &mut self,
        class: &str,
        stmts: &[Stmt],
        vars: &mut HashMap<String, Value>,
    ) -> LangResult<()> {
        let this_obj = self.instantiate(class)?;
        let mut frame = Frame {
            class: class.to_string(),
            this_obj: Some(this_obj),
            vars: std::mem::take(vars),
        };
        for s in stmts {
            match self.exec_stmt(&mut frame, s)? {
                Flow::Normal => {}
                Flow::Return(_) => break,
                Flow::Break | Flow::Continue => {
                    *vars = frame.vars;
                    return Err(interp_err(s.span, "break/continue escaped statement slice"));
                }
            }
        }
        *vars = frame.vars;
        Ok(())
    }

    /// Allocate a default-initialized instance of `class`.
    pub fn instantiate(&mut self, class: &str) -> LangResult<Rc<RefCell<ObjectVal>>> {
        let c = self
            .tp
            .program
            .class(class)
            .ok_or_else(|| interp_err(Span::synthetic(), format!("unknown class `{class}`")))?;
        let mut fields = HashMap::new();
        for f in &c.fields {
            fields.insert(f.name.clone(), Self::default_value(&f.ty));
        }
        Ok(Rc::new(RefCell::new(ObjectVal {
            class: class.to_string(),
            fields,
        })))
    }

    fn default_value(ty: &Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Double => Value::Double(0.0),
            Type::Bool => Value::Bool(false),
            Type::RectDomain(_) => Value::Domain(0, -1),
            _ => Value::Null,
        }
    }

    /// Call `class::method` on `this_obj` with `args`.
    pub fn call_method(
        &mut self,
        class: &str,
        method: &str,
        this_obj: Option<Rc<RefCell<ObjectVal>>>,
        args: Vec<Value>,
    ) -> LangResult<Value> {
        let m = self
            .tp
            .program
            .method(class, method)
            .ok_or_else(|| {
                interp_err(
                    Span::synthetic(),
                    format!("unknown method `{class}::{method}`"),
                )
            })?
            .clone();
        if m.params.len() != args.len() {
            return Err(interp_err(
                m.span,
                format!("arity mismatch calling `{class}::{method}`"),
            ));
        }
        let mut frame = Frame {
            class: class.to_string(),
            this_obj,
            vars: HashMap::new(),
        };
        for (p, a) in m.params.iter().zip(args) {
            let a = Self::coerce(&p.ty, a);
            frame.vars.insert(p.name.clone(), a);
        }
        match self.exec_block(&mut frame, &m.body)? {
            Flow::Return(v) => Ok(Self::coerce(&m.ret, v)),
            _ => Ok(Value::Void),
        }
    }

    /// Implicit int→double widening at assignment/call boundaries.
    fn coerce(want: &Type, v: Value) -> Value {
        match (want, &v) {
            (Type::Double, Value::Int(i)) => Value::Double(*i as f64),
            _ => v,
        }
    }

    fn exec_block(&mut self, frame: &mut Frame, block: &Block) -> LangResult<Flow> {
        for s in &block.stmts {
            match self.exec_stmt(frame, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, frame: &mut Frame, stmt: &Stmt) -> LangResult<Flow> {
        self.tick(stmt.span)?;
        match &stmt.kind {
            StmtKind::VarDecl { name, ty, init } => {
                let v = match init {
                    Some(e) => Self::coerce(ty, self.eval(frame, e)?),
                    None => Self::default_value(ty),
                };
                frame.vars.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                let rhs = self.eval(frame, value)?;
                self.assign(frame, target, *op, rhs, stmt.span)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval_bool(frame, cond)?;
                if c {
                    self.exec_block(frame, then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(frame, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval_bool(frame, cond)? {
                    self.tick(stmt.span)?;
                    match self.exec_block(frame, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.exec_stmt(frame, i)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval_bool(frame, c)? {
                            break;
                        }
                    }
                    self.tick(stmt.span)?;
                    match self.exec_block(frame, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(s) = step {
                        self.exec_stmt(frame, s)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Foreach { var, domain, body } => {
                let d = self.eval(frame, domain)?;
                let Value::Domain(lo, hi) = d else {
                    return Err(interp_err(stmt.span, "foreach over non-domain value"));
                };
                for i in lo..=hi {
                    self.tick(stmt.span)?;
                    frame.vars.insert(var.clone(), Value::Int(i));
                    match self.exec_block(frame, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Pipelined {
                var,
                domain,
                num_packets,
                body,
            } => {
                let d = self.eval(frame, domain)?;
                let Value::Domain(lo, hi) = d else {
                    return Err(interp_err(stmt.span, "PipelinedLoop over non-domain value"));
                };
                let n = self.eval_int(frame, num_packets)?;
                if n <= 0 {
                    return Err(interp_err(stmt.span, "num_packets must be positive"));
                }
                for (plo, phi) in split_domain(lo, hi, n as usize) {
                    self.tick(stmt.span)?;
                    frame.vars.insert(var.clone(), Value::Domain(plo, phi));
                    match self.exec_block(frame, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Expr(e) => {
                self.eval(frame, e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => self.exec_block(frame, b),
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    fn assign(
        &mut self,
        frame: &mut Frame,
        target: &LValue,
        op: AssignOp,
        rhs: Value,
        span: Span,
    ) -> LangResult<()> {
        let combine = |old: &Value, rhs: Value| -> LangResult<Value> {
            match op {
                AssignOp::Set => Ok(rhs),
                AssignOp::Add | AssignOp::Sub => {
                    let sign = if op == AssignOp::Add { 1.0 } else { -1.0 };
                    match (old, &rhs) {
                        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if op == AssignOp::Add {
                            a.wrapping_add(*b)
                        } else {
                            a.wrapping_sub(*b)
                        })),
                        _ => {
                            let a = old.as_f64().ok_or_else(|| {
                                interp_err(span, "compound assignment on non-numeric target")
                            })?;
                            let b = rhs.as_f64().ok_or_else(|| {
                                interp_err(span, "compound assignment with non-numeric value")
                            })?;
                            Ok(Value::Double(a + sign * b))
                        }
                    }
                }
            }
        };
        match target {
            LValue::Var(name) => {
                // Writing order mirrors lookup: local, then field of `this`,
                // then global extern.
                if let Some(slot) = frame.vars.get(name) {
                    let widened = match (slot, &rhs) {
                        (Value::Double(_), Value::Int(i)) => Value::Double(*i as f64),
                        _ => rhs,
                    };
                    let nv = combine(slot, widened)?;
                    frame.vars.insert(name.clone(), nv);
                    return Ok(());
                }
                if let Some(this_obj) = &frame.this_obj {
                    let has = this_obj.borrow().fields.contains_key(name);
                    if has {
                        let old = this_obj.borrow().fields[name].clone();
                        let widened = match (&old, &rhs) {
                            (Value::Double(_), Value::Int(i)) => Value::Double(*i as f64),
                            _ => rhs,
                        };
                        let nv = combine(&old, widened)?;
                        this_obj.borrow_mut().fields.insert(name.clone(), nv);
                        return Ok(());
                    }
                }
                if let Some(old) = self.globals.get(name).cloned() {
                    let widened = match (&old, &rhs) {
                        (Value::Double(_), Value::Int(i)) => Value::Double(*i as f64),
                        _ => rhs,
                    };
                    let nv = combine(&old, widened)?;
                    self.globals.insert(name.clone(), nv);
                    return Ok(());
                }
                Err(interp_err(
                    span,
                    format!("assignment to unknown variable `{name}`"),
                ))
            }
            LValue::Field(base, field) => {
                let b = self.eval(frame, base)?;
                let Value::Object(obj) = b else {
                    return Err(interp_err(span, "field assignment on non-object"));
                };
                let old = obj
                    .borrow()
                    .fields
                    .get(field)
                    .cloned()
                    .ok_or_else(|| interp_err(span, format!("no field `{field}`")))?;
                let widened = match (&old, &rhs) {
                    (Value::Double(_), Value::Int(i)) => Value::Double(*i as f64),
                    _ => rhs,
                };
                let nv = combine(&old, widened)?;
                obj.borrow_mut().fields.insert(field.clone(), nv);
                Ok(())
            }
            LValue::Index(base, idx) => {
                let b = self.eval(frame, base)?;
                let i = self.eval_int(frame, idx)?;
                let Value::Array(arr) = b else {
                    return Err(interp_err(span, "index assignment on non-array"));
                };
                let len = arr.borrow().len();
                if i < 0 || i as usize >= len {
                    return Err(interp_err(
                        span,
                        format!("array index {i} out of bounds (len {len})"),
                    ));
                }
                let old = arr.borrow()[i as usize].clone();
                let widened = match (&old, &rhs) {
                    (Value::Double(_), Value::Int(v)) => Value::Double(*v as f64),
                    _ => rhs,
                };
                let nv = combine(&old, widened)?;
                arr.borrow_mut()[i as usize] = nv;
                Ok(())
            }
        }
    }

    fn eval_bool(&mut self, frame: &mut Frame, e: &Expr) -> LangResult<bool> {
        self.eval(frame, e)?
            .as_bool()
            .ok_or_else(|| interp_err(e.span, "expected a boolean"))
    }

    fn eval_int(&mut self, frame: &mut Frame, e: &Expr) -> LangResult<i64> {
        self.eval(frame, e)?
            .as_i64()
            .ok_or_else(|| interp_err(e.span, "expected an int"))
    }

    fn lookup(&self, frame: &Frame, name: &str, span: Span) -> LangResult<Value> {
        if let Some(v) = frame.vars.get(name) {
            return Ok(v.clone());
        }
        if let Some(this_obj) = &frame.this_obj {
            if let Some(v) = this_obj.borrow().fields.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(v.clone());
        }
        Err(interp_err(span, format!("unknown variable `{name}`")))
    }

    fn eval(&mut self, frame: &mut Frame, e: &Expr) -> LangResult<Value> {
        self.tick(e.span)?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::DoubleLit(v) => Ok(Value::Double(*v)),
            ExprKind::BoolLit(v) => Ok(Value::Bool(*v)),
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Var(name) => self.lookup(frame, name, e.span),
            ExprKind::This => frame
                .this_obj
                .clone()
                .map(Value::Object)
                .ok_or_else(|| interp_err(e.span, "`this` outside an instance method")),
            ExprKind::Field(base, field) => {
                let b = self.eval(frame, base)?;
                match b {
                    Value::Object(obj) => obj
                        .borrow()
                        .fields
                        .get(field)
                        .cloned()
                        .ok_or_else(|| interp_err(e.span, format!("no field `{field}`"))),
                    _ => Err(interp_err(e.span, "field access on non-object")),
                }
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(frame, base)?;
                let i = self.eval_int(frame, idx)?;
                match b {
                    Value::Array(arr) => {
                        let arr = arr.borrow();
                        if i < 0 || i as usize >= arr.len() {
                            Err(interp_err(
                                e.span,
                                format!("array index {i} out of bounds (len {})", arr.len()),
                            ))
                        } else {
                            Ok(arr[i as usize].clone())
                        }
                    }
                    _ => Err(interp_err(e.span, "indexing non-array")),
                }
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(frame, inner)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Double(d) => Ok(Value::Double(-d)),
                        _ => Err(interp_err(e.span, "negating non-numeric")),
                    },
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        _ => Err(interp_err(e.span, "logical not on non-boolean")),
                    },
                }
            }
            ExprKind::Binary(op, l, r) => self.eval_binary(frame, e.span, *op, l, r),
            ExprKind::Ternary(c, a, b) => {
                if self.eval_bool(frame, c)? {
                    self.eval(frame, a)
                } else {
                    self.eval(frame, b)
                }
            }
            ExprKind::Call { recv, method, args } => {
                self.eval_call(frame, e.span, recv, method, args)
            }
            ExprKind::New(cname) => Ok(Value::Object(self.instantiate(cname)?)),
            ExprKind::NewArray(elem, len) => {
                let n = self.eval_int(frame, len)?;
                if n < 0 {
                    return Err(interp_err(e.span, "negative array length"));
                }
                Ok(Value::new_array(n as usize, Self::default_value(elem)))
            }
            ExprKind::DomainLit(lo, hi) => {
                let lo = self.eval_int(frame, lo)?;
                let hi = self.eval_int(frame, hi)?;
                Ok(Value::Domain(lo, hi))
            }
        }
    }

    fn eval_binary(
        &mut self,
        frame: &mut Frame,
        span: Span,
        op: BinOp,
        l: &Expr,
        r: &Expr,
    ) -> LangResult<Value> {
        // Short-circuit logic first.
        if op == BinOp::And {
            return Ok(Value::Bool(
                self.eval_bool(frame, l)? && self.eval_bool(frame, r)?,
            ));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(
                self.eval_bool(frame, l)? || self.eval_bool(frame, r)?,
            ));
        }
        let lv = self.eval(frame, l)?;
        let rv = self.eval(frame, r)?;
        if op.is_arith() {
            match (&lv, &rv) {
                (Value::Int(a), Value::Int(b)) => {
                    let v = match op {
                        BinOp::Add => a.wrapping_add(*b),
                        BinOp::Sub => a.wrapping_sub(*b),
                        BinOp::Mul => a.wrapping_mul(*b),
                        BinOp::Div => {
                            if *b == 0 {
                                return Err(interp_err(span, "integer division by zero"));
                            }
                            a / b
                        }
                        BinOp::Rem => {
                            if *b == 0 {
                                return Err(interp_err(span, "integer remainder by zero"));
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Int(v))
                }
                _ => {
                    let a = lv
                        .as_f64()
                        .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                    let b = rv
                        .as_f64()
                        .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                    let v = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        BinOp::Rem => a % b,
                        _ => unreachable!(),
                    };
                    Ok(Value::Double(v))
                }
            }
        } else {
            // comparison
            let res = match (&lv, &rv) {
                (Value::Bool(a), Value::Bool(b)) => match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    _ => return Err(interp_err(span, "ordering comparison on booleans")),
                },
                (Value::Null, Value::Null) => matches!(op, BinOp::Eq),
                (Value::Null, Value::Object(_)) | (Value::Object(_), Value::Null) => {
                    matches!(op, BinOp::Ne)
                }
                (Value::Object(a), Value::Object(b)) => {
                    let same = Rc::ptr_eq(a, b);
                    match op {
                        BinOp::Eq => same,
                        BinOp::Ne => !same,
                        _ => return Err(interp_err(span, "ordering comparison on objects")),
                    }
                }
                _ => {
                    let a = lv
                        .as_f64()
                        .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                    let b = rv
                        .as_f64()
                        .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                    match op {
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::Ge => a >= b,
                        BinOp::Eq => a == b,
                        BinOp::Ne => a != b,
                        _ => unreachable!(),
                    }
                }
            };
            Ok(Value::Bool(res))
        }
    }

    fn eval_call(
        &mut self,
        frame: &mut Frame,
        span: Span,
        recv: &Option<Box<Expr>>,
        method: &str,
        args: &[Expr],
    ) -> LangResult<Value> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(frame, a)?);
        }
        match recv {
            None => {
                if is_builtin(method) {
                    return self.eval_builtin(span, method, argv);
                }
                let this_obj = frame.this_obj.clone();
                let class = frame.class.clone();
                self.call_method(&class, method, this_obj, argv)
            }
            Some(r) => {
                let rv = self.eval(frame, r)?;
                match rv {
                    Value::Domain(lo, hi) => match method {
                        "lo" => Ok(Value::Int(lo)),
                        "hi" => Ok(Value::Int(hi)),
                        "size" => Ok(Value::Int((hi - lo + 1).max(0))),
                        _ => Err(interp_err(
                            span,
                            format!("RectDomain has no method `{method}`"),
                        )),
                    },
                    Value::Array(arr) => match method {
                        "length" => Ok(Value::Int(arr.borrow().len() as i64)),
                        _ => Err(interp_err(
                            span,
                            format!("arrays have no method `{method}`"),
                        )),
                    },
                    Value::Object(obj) => {
                        let class = obj.borrow().class.clone();
                        self.call_method(&class, method, Some(obj), argv)
                    }
                    other => Err(interp_err(
                        span,
                        format!("cannot call `{method}` on value `{other}`"),
                    )),
                }
            }
        }
    }

    fn eval_builtin(&mut self, span: Span, name: &str, args: Vec<Value>) -> LangResult<Value> {
        let f = |v: &Value| -> LangResult<f64> {
            v.as_f64()
                .ok_or_else(|| interp_err(span, "numeric argument expected"))
        };
        match name {
            "sqrt" => Ok(Value::Double(f(&args[0])?.sqrt())),
            "floor" => Ok(Value::Double(f(&args[0])?.floor())),
            "ceil" => Ok(Value::Double(f(&args[0])?.ceil())),
            "exp" => Ok(Value::Double(f(&args[0])?.exp())),
            "log" => Ok(Value::Double(f(&args[0])?.ln())),
            "abs" => match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                _ => Err(interp_err(span, "numeric argument expected")),
            },
            "min" | "max" => {
                let take_min = name == "min";
                match (&args[0], &args[1]) {
                    (Value::Int(a), Value::Int(b)) => {
                        Ok(Value::Int(if take_min { *a.min(b) } else { *a.max(b) }))
                    }
                    _ => {
                        let a = f(&args[0])?;
                        let b = f(&args[1])?;
                        Ok(Value::Double(if take_min { a.min(b) } else { a.max(b) }))
                    }
                }
            }
            "pow" => Ok(Value::Double(f(&args[0])?.powf(f(&args[1])?))),
            "toInt" => match &args[0] {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Double(d) => Ok(Value::Int(*d as i64)),
                _ => Err(interp_err(span, "numeric argument expected")),
            },
            "toDouble" => Ok(Value::Double(f(&args[0])?)),
            "print" => {
                let s = args[0].to_string();
                self.output.push(s);
                Ok(Value::Void)
            }
            _ => Err(interp_err(span, format!("unknown builtin `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::types::check;

    fn run(src: &str, host: HostEnv) -> (HashMap<String, Value>, Vec<String>) {
        let tp = check(parse(src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, host);
        let vars = it.run_main().unwrap();
        (vars, it.output)
    }

    #[test]
    fn split_domain_covers_exactly() {
        let parts = split_domain(0, 9, 3);
        assert_eq!(parts, vec![(0, 3), (4, 6), (7, 9)]);
        let parts = split_domain(5, 5, 4);
        assert_eq!(parts, vec![(5, 5)]);
        assert!(split_domain(3, 2, 2).is_empty());
    }

    #[test]
    fn split_domain_more_packets_than_elements() {
        // n > domain size: exactly one single-element packet per element,
        // never an empty packet.
        let parts = split_domain(0, 3, 100);
        assert_eq!(parts, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert!(parts.iter().all(|(a, b)| a <= b), "empty packet emitted");
    }

    #[test]
    fn split_domain_single_element_domain() {
        for n in 1..8usize {
            assert_eq!(split_domain(7, 7, n), vec![(7, 7)], "n={n}");
        }
        // Single element at a negative coordinate.
        assert_eq!(split_domain(-3, -3, 5), vec![(-3, -3)]);
    }

    #[test]
    fn split_domain_negative_lo() {
        // Bounds straddling zero keep coverage, order, and balance.
        let parts = split_domain(-7, 4, 3);
        assert_eq!(parts, vec![(-7, -4), (-3, 0), (1, 4)]);
        // Entirely negative domain, uneven split: the remainder packets
        // come first, exactly like the non-negative case.
        let parts = split_domain(-10, -4, 3);
        assert_eq!(parts, vec![(-10, -8), (-7, -6), (-5, -4)]);
        // Empty domain expressed with negative bounds stays empty.
        assert!(split_domain(-2, -3, 4).is_empty());
    }

    #[test]
    fn split_domain_balanced() {
        for total in 1..50i64 {
            for n in 1..10usize {
                let parts = split_domain(0, total - 1, n);
                let sum: i64 = parts.iter().map(|(a, b)| b - a + 1).sum();
                assert_eq!(sum, total);
                let min = parts.iter().map(|(a, b)| b - a + 1).min().unwrap();
                let max = parts.iter().map(|(a, b)| b - a + 1).max().unwrap();
                assert!(max - min <= 1, "unbalanced split: {parts:?}");
                for w in parts.windows(2) {
                    assert_eq!(w[0].1 + 1, w[1].0, "non-contiguous: {parts:?}");
                }
            }
        }
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            class A { void main() {
                int sum = 0;
                for (int i = 1; i <= 10; i += 1) { sum += i; }
                print(sum);
            } }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["55"]);
    }

    #[test]
    fn foreach_sums_domain() {
        let src = r#"
            class A { void main() {
                RectDomain<1> d = [3 : 7];
                int sum = 0;
                foreach (i in d) { sum += i; }
                print(sum);
            } }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["25"]);
    }

    #[test]
    fn pipelined_loop_equals_plain_loop() {
        let src = r#"
            runtime_define int num_packets;
            class A { void main() {
                RectDomain<1> d = [0 : 99];
                int sum = 0;
                PipelinedLoop (pkt in d; num_packets) {
                    foreach (i in pkt) { sum += i; }
                }
                print(sum);
            } }
        "#;
        for np in [1, 3, 7, 100] {
            let (_, out) = run(src, HostEnv::new().bind("num_packets", Value::Int(np)));
            assert_eq!(out, vec!["4950"], "num_packets={np}");
        }
    }

    #[test]
    fn extern_arrays_are_readable_and_writable() {
        let src = r#"
            extern double[] xs;
            class A { void main() {
                xs[0] = xs[1] + 2.5;
                print(xs[0]);
            } }
        "#;
        let arr = Value::new_array(2, Value::Double(0.0));
        if let Value::Array(a) = &arr {
            a.borrow_mut()[1] = Value::Double(1.0);
        }
        let (_, out) = run(src, HostEnv::new().bind("xs", arr));
        assert_eq!(out, vec!["3.5"]);
    }

    #[test]
    fn unbound_extern_is_error() {
        let src = "extern int n; class A { void main() { } }";
        let tp = check(parse(src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, HostEnv::new());
        assert!(it.run_main().is_err());
    }

    #[test]
    fn objects_methods_and_reduction() {
        let src = r#"
            class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A { void main() {
                Acc acc = new Acc();
                RectDomain<1> d = [1 : 4];
                foreach (i in d) { acc.add(toDouble(i)); }
                print(acc.total);
            } }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["10"]);
    }

    #[test]
    fn interprocedural_calls() {
        let src = r#"
            class A {
                int fib(int n) {
                    if (n < 2) { return n; }
                    return fib(n - 1) + fib(n - 2);
                }
                void main() { print(fib(12)); }
            }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["144"]);
    }

    #[test]
    fn short_circuit_evaluation() {
        let src = r#"
            class A {
                int boom() { int x = 1 / 0; return x; }
                void main() {
                    boolean b = false && boom() > 0;
                    print(b);
                }
            }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["false"]);
    }

    #[test]
    fn division_by_zero_is_error() {
        let src = "class A { void main() { int x = 1 / 0; } }";
        let tp = check(parse(src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, HostEnv::new());
        assert!(it.run_main().is_err());
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let src = "class A { void main() { while (true) { int x = 0; } } }";
        let tp = check(parse(src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, HostEnv::new()).with_fuel(10_000);
        let err = it.run_main().unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn exec_stmts_with_vars_runs_slices() {
        let src = r#"
            class A { void main() {
                int a = 1;
                int b = a + 2;
                print(b);
            } }
        "#;
        let tp = check(parse(src).unwrap()).unwrap();
        let main = tp.program.main().unwrap().1.body.clone();
        let mut it = Interp::new(&tp, HostEnv::new());
        // run only the second statement, with `a` seeded externally
        let mut vars = HashMap::new();
        vars.insert("a".to_string(), Value::Int(41));
        it.exec_stmts_with_vars("A", &main.stmts[1..2], &mut vars)
            .unwrap();
        assert_eq!(vars["b"].as_i64(), Some(43));
    }

    #[test]
    fn array_oob_is_error() {
        let src = r#"
            class A { void main() {
                double[] xs = new double[2];
                xs[5] = 1.0;
            } }
        "#;
        let tp = check(parse(src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, HostEnv::new());
        let err = it.run_main().unwrap_err();
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn ternary_and_builtins() {
        let src = r#"
            class A { void main() {
                double x = min(3.0, 2.0);
                double y = max(1, 5);
                int z = toInt(x < y ? pow(2.0, 3.0) : 0.0);
                print(z);
            } }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["8"]);
    }

    #[test]
    fn compound_assign_widens() {
        let src = r#"
            class A { void main() {
                double x = 1.5;
                x += 2;
                print(x);
            } }
        "#;
        let (_, out) = run(src, HostEnv::new());
        assert_eq!(out, vec!["3.5"]);
    }
}
