//! # cgp-lang — dialect frontend
//!
//! The Java-like dialect of the paper *"Compiler Support for Exploiting
//! Coarse-Grained Pipelined Parallelism"* (Du, Ferreira, Agrawal — SC 2003),
//! Section 3. The dialect exposes both data parallelism and pipelined
//! parallelism to the compiler through four constructs:
//!
//! - **`RectDomain<1>`** — a rectilinear collection of coordinates;
//! - **`foreach (i in dom)`** — an iteration-order-independent loop;
//! - **`implements Reducinterface`** — marks a class whose instances are
//!   reduction variables (updated only by associative+commutative
//!   operations inside `foreach`, merged with `reduce`);
//! - **`PipelinedLoop (pkt in dom; num_packets)`** — processes the domain
//!   as a sequence of independent packets, the unit of pipelined execution.
//!
//! This crate provides lexing ([`lexer`]), parsing ([`parser`]), type
//! checking ([`types`]), a pretty-printer ([`pretty`]) and a tree-walking
//! interpreter ([`interp`]) that defines the sequential semantics every
//! pipelined execution must reproduce.
//!
//! ```
//! use cgp_lang::{parser::parse, types::check, interp::{Interp, HostEnv}};
//!
//! let src = r#"
//!     class A { void main() {
//!         RectDomain<1> d = [1 : 10];
//!         int sum = 0;
//!         foreach (i in d) { sum += i; }
//!         print(sum);
//!     } }
//! "#;
//! let typed = check(parse(src).unwrap()).unwrap();
//! let mut interp = Interp::new(&typed, HostEnv::new());
//! interp.run_main().unwrap();
//! assert_eq!(interp.output, vec!["55"]);
//! ```

pub mod ast;
pub mod bytecode;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod symbols;
pub mod token;
pub mod types;
pub mod value;

pub use ast::{Program, Type};
pub use error::Diagnostic;
pub use interp::{split_domain, HostEnv, Interp};
pub use parser::parse;
pub use types::{check, TypedProgram};
pub use value::Value;

/// Parse and type-check in one step.
pub fn frontend(src: &str) -> Result<TypedProgram, Diagnostic> {
    check(parse(src)?)
}
