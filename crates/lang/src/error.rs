//! Diagnostics shared by the lexer, parser, type checker and interpreter.

use crate::span::Span;
use std::fmt;

/// Which frontend phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    TypeCheck,
    Interp,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::TypeCheck => "typecheck",
            Phase::Interp => "interp",
        };
        f.write_str(s)
    }
}

/// A single diagnostic with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub phase: Phase,
    pub span: Span,
    pub message: String,
}

impl Diagnostic {
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            phase,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Result alias used across the frontend.
pub type LangResult<T> = Result<T, Diagnostic>;

/// Convenience constructors.
pub fn lex_err(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::Lex, span, msg)
}
pub fn parse_err(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::Parse, span, msg)
}
pub fn type_err(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::TypeCheck, span, msg)
}
pub fn interp_err(span: Span, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::Interp, span, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_location() {
        let d = parse_err(Span::new(0, 3, 4, 7), "unexpected token");
        assert_eq!(d.to_string(), "parse error at 4:7: unexpected token");
    }

    #[test]
    fn phases_display_distinctly() {
        let names: Vec<String> = [Phase::Lex, Phase::Parse, Phase::TypeCheck, Phase::Interp]
            .iter()
            .map(|p| p.to_string())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
