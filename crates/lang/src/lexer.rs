//! Hand-written lexer for the dialect.
//!
//! Supports `//` line comments and `/* ... */` block comments, integer and
//! floating literals (with exponents), all operators in [`TokenKind`].

use crate::error::{lex_err, Diagnostic};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lex `src` into a token vector terminated by an [`TokenKind::Eof`] token.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start, line, col),
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_digit() {
                self.number()?
            } else if c == b'_' || c.is_ascii_alphabetic() {
                self.ident_or_keyword()
            } else {
                self.operator()?
            };
            out.push(Token {
                kind,
                span: Span::new(start, self.pos, line, col),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> Span {
        Span::new(self.pos, self.pos + 1, self.line, self.col)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.here();
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(lex_err(open, "unterminated block comment"));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        let span0 = self.here();
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // Fractional part: only if a digit follows the dot, so `0.` in member
        // position never lexes as a float (we have no such syntax anyway, but
        // `a.0` should be an error, not silently a float).
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let next = self.peek2();
            let exp_ok = match next {
                Some(c) if c.is_ascii_digit() => true,
                Some(b'+' | b'-') => self
                    .bytes
                    .get(self.pos + 2)
                    .is_some_and(|c| c.is_ascii_digit()),
                _ => false,
            };
            if exp_ok {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::DoubleLit)
                .map_err(|e| lex_err(span0, format!("invalid float literal `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|e| lex_err(span0, format!("invalid integer literal `{text}`: {e}")))
        }
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn operator(&mut self) -> Result<TokenKind, Diagnostic> {
        let span = self.here();
        let c = self.bump().expect("operator called at eof");
        let two = |lexer: &mut Self, kind: TokenKind| {
            lexer.bump();
            kind
        };
        Ok(match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b':' => TokenKind::Colon,
            b'?' => TokenKind::Question,
            b'%' => TokenKind::Percent,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'+' if self.peek() == Some(b'=') => two(self, TokenKind::PlusAssign),
            b'+' => TokenKind::Plus,
            b'-' if self.peek() == Some(b'=') => two(self, TokenKind::MinusAssign),
            b'-' => TokenKind::Minus,
            b'=' if self.peek() == Some(b'=') => two(self, TokenKind::EqEq),
            b'=' => TokenKind::Assign,
            b'<' if self.peek() == Some(b'=') => two(self, TokenKind::Le),
            b'<' => TokenKind::Lt,
            b'>' if self.peek() == Some(b'=') => two(self, TokenKind::Ge),
            b'>' => TokenKind::Gt,
            b'!' if self.peek() == Some(b'=') => two(self, TokenKind::NotEq),
            b'!' => TokenKind::Not,
            b'&' if self.peek() == Some(b'&') => two(self, TokenKind::AndAnd),
            b'|' if self.peek() == Some(b'|') => two(self, TokenKind::OrOr),
            other => {
                return Err(lex_err(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let ks = kinds("int x = 3 + y;");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::IntLit(3),
                TokenKind::Plus,
                TokenKind::Ident("y".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats_and_exponents() {
        assert_eq!(kinds("1.5")[0], TokenKind::DoubleLit(1.5));
        assert_eq!(kinds("2e3")[0], TokenKind::DoubleLit(2000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::DoubleLit(0.25));
        // `1e` with no exponent digits stays an int followed by ident.
        assert_eq!(
            kinds("1e")[..2],
            [TokenKind::IntLit(1), TokenKind::Ident("e".into())]
        );
    }

    #[test]
    fn dot_after_int_without_digit_is_member_access() {
        assert_eq!(
            kinds("1.x")[..3],
            [
                TokenKind::IntLit(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into())
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        let ks = kinds("<= >= == != && || += -=");
        assert_eq!(
            ks[..8],
            [
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::PlusAssign,
                TokenKind::MinusAssign,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a // line\n /* block \n over lines */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = lex("/* nope").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a # b").is_err());
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(kinds("foreach")[0], TokenKind::KwForeach);
        assert_eq!(kinds("foreachx")[0], TokenKind::Ident("foreachx".into()));
    }

    #[test]
    fn single_ampersand_is_error() {
        assert!(lex("a & b").is_err());
    }
}
