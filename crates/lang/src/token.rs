//! Token definitions for the dialect lexer.

use crate::span::Span;
use std::fmt;

/// Token kinds. Keywords are distinguished from identifiers at lex time.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    IntLit(i64),
    DoubleLit(f64),
    Ident(String),

    // Keywords
    KwClass,
    KwImplements,
    KwReducinterface,
    KwExtern,
    KwVoid,
    KwInt,
    KwDouble,
    KwBoolean,
    KwTrue,
    KwFalse,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwForeach,
    KwPipelinedLoop,
    KwIn,
    KwReturn,
    KwNew,
    KwRectDomain,
    KwRuntimeDefine,
    KwNull,
    KwBreak,
    KwContinue,
    KwThis,

    // Punctuation and operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusAssign,  // +=
    MinusAssign, // -=
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Not,
    Question,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup used by the lexer after scanning an identifier.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "class" => TokenKind::KwClass,
            "implements" => TokenKind::KwImplements,
            "Reducinterface" => TokenKind::KwReducinterface,
            "extern" => TokenKind::KwExtern,
            "void" => TokenKind::KwVoid,
            "int" => TokenKind::KwInt,
            "double" | "float" => TokenKind::KwDouble,
            "boolean" => TokenKind::KwBoolean,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "foreach" => TokenKind::KwForeach,
            "PipelinedLoop" => TokenKind::KwPipelinedLoop,
            "in" => TokenKind::KwIn,
            "return" => TokenKind::KwReturn,
            "new" => TokenKind::KwNew,
            "RectDomain" => TokenKind::KwRectDomain,
            "runtime_define" => TokenKind::KwRuntimeDefine,
            "null" => TokenKind::KwNull,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "this" => TokenKind::KwThis,
            _ => return None,
        })
    }

    /// Short human-readable name used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::DoubleLit(v) => format!("double literal `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::KwClass => "class",
            TokenKind::KwImplements => "implements",
            TokenKind::KwReducinterface => "Reducinterface",
            TokenKind::KwExtern => "extern",
            TokenKind::KwVoid => "void",
            TokenKind::KwInt => "int",
            TokenKind::KwDouble => "double",
            TokenKind::KwBoolean => "boolean",
            TokenKind::KwTrue => "true",
            TokenKind::KwFalse => "false",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwFor => "for",
            TokenKind::KwForeach => "foreach",
            TokenKind::KwPipelinedLoop => "PipelinedLoop",
            TokenKind::KwIn => "in",
            TokenKind::KwReturn => "return",
            TokenKind::KwNew => "new",
            TokenKind::KwRectDomain => "RectDomain",
            TokenKind::KwRuntimeDefine => "runtime_define",
            TokenKind::KwNull => "null",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::KwThis => "this",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Colon => ":",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Not => "!",
            TokenKind::Question => "?",
            _ => unreachable!("symbol() called on non-symbol token"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A lexed token: kind plus source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_roundtrips() {
        assert_eq!(TokenKind::keyword("foreach"), Some(TokenKind::KwForeach));
        assert_eq!(
            TokenKind::keyword("PipelinedLoop"),
            Some(TokenKind::KwPipelinedLoop)
        );
        assert_eq!(TokenKind::keyword("notakeyword"), None);
    }

    #[test]
    fn float_is_alias_for_double() {
        assert_eq!(TokenKind::keyword("float"), Some(TokenKind::KwDouble));
    }

    #[test]
    fn describe_literals() {
        assert_eq!(TokenKind::IntLit(42).describe(), "integer literal `42`");
        assert_eq!(
            TokenKind::Ident("abc".into()).describe(),
            "identifier `abc`"
        );
        assert_eq!(TokenKind::PlusAssign.describe(), "`+=`");
    }
}
