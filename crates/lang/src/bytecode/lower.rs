//! Lowering from typed AST to register bytecode.
//!
//! The pass is total: any typed program lowers. Names that cannot be
//! resolved at lower time (a method or class the checker would have
//! rejected) lower to [`UNRESOLVED`] ops that raise the interpreter's
//! runtime diagnostic when executed, so lowering never changes *when* an
//! error surfaces.
//!
//! Evaluation order is preserved exactly — the op sequence is the
//! interpreter's recursion unrolled: assignment evaluates its right-hand
//! side before the target, calls evaluate arguments before the receiver,
//! `&&`/`||` short-circuit through branches, and every implicit
//! int/boolean check is emitted as a separate op carrying the operand's
//! span so diagnostics point where the tree-walker points.

use super::*;
use crate::ast::*;
use crate::span::Span;
use crate::types::TypedProgram;
use std::collections::{HashMap, HashSet};

impl ProgramCode {
    /// Lower every method of every class. Two-phase: methods are
    /// enumerated first so bodies can pre-resolve their own calls
    /// (including recursion and forward references).
    pub fn lower(tp: &TypedProgram) -> ProgramCode {
        let mut classes = Vec::new();
        let mut class_map = HashMap::new();
        let mut methods_by_class: HashMap<String, HashMap<String, u32>> = HashMap::new();
        let mut order: Vec<(String, usize)> = Vec::new();
        for c in &tp.program.classes {
            class_map.insert(c.name.clone(), classes.len() as u32);
            classes.push(ClassCode {
                name: c.name.clone(),
                fields: c
                    .fields
                    .iter()
                    .map(|f| (f.name.clone(), ConstVal::default_for(&f.ty)))
                    .collect(),
            });
            let per = methods_by_class.entry(c.name.clone()).or_default();
            for (mi, m) in c.methods.iter().enumerate() {
                per.insert(m.name.clone(), order.len() as u32);
                order.push((c.name.clone(), mi));
            }
        }
        let mut methods = Vec::with_capacity(order.len());
        for (cname, mi) in &order {
            let c = tp.program.class(cname).expect("enumerated above");
            let m = &c.methods[*mi];
            let mut lw = Lowerer::new(tp, &methods_by_class, &class_map, cname, true);
            for p in &m.params {
                lw.declare_slot(&p.name);
            }
            let params = m.params.len() as u16;
            lw.collect_stmts(&m.body.stmts);
            lw.seal_slots();
            // Implicit int→double widening of arguments happens at the
            // call boundary in the interpreter; here it is the method
            // prologue, which is observationally identical.
            for (i, p) in m.params.iter().enumerate() {
                if p.ty == Type::Double {
                    lw.emit(Op::CoerceDouble { reg: i as Reg }, m.span);
                }
            }
            for s in &m.body.stmts {
                lw.stmt(s);
            }
            methods.push(MethodCode {
                code: lw.finish(),
                params,
                coerce_ret: m.ret == Type::Double,
                decl_span: m.span,
                class: cname.clone(),
                name: m.name.clone(),
            });
        }
        // Globals a method could write through a slot-assignment fallback:
        // any `AssignSlot` target name, conservatively regardless of slot
        // kind (an unbound this-field slot falls through to globals too).
        let mut assigned_names = HashSet::new();
        for m in &methods {
            for op in &m.code.ops {
                if let Op::AssignSlot { slot, .. } = op {
                    let nid = m.code.slot_names[*slot as usize];
                    assigned_names.insert(m.code.names[nid as usize].clone());
                }
            }
        }
        for m in &mut methods {
            mark_cacheable(&mut m.code, &assigned_names);
        }
        ProgramCode {
            methods,
            classes,
            methods_by_class,
            class_map,
            assigned_names,
        }
    }

    /// Lower a statement slice executed in `class` scope — the bytecode
    /// analogue of `Interp::exec_stmts_with_vars`.
    pub fn lower_slice(&self, tp: &TypedProgram, class: &str, stmts: &[Stmt]) -> CodeBlock {
        let mut lw = Lowerer::new(tp, &self.methods_by_class, &self.class_map, class, false);
        lw.collect_stmts(stmts);
        lw.seal_slots();
        for s in stmts {
            // `break`/`continue` escaping a slice diagnose at the
            // enclosing *top-level* statement, as the interpreter does.
            lw.top_span = s.span;
            lw.stmt(s);
        }
        let mut code = lw.finish();
        mark_cacheable(&mut code, &self.assigned_names);
        code
    }
}

/// Mark global-kind slots whose fallback read the VM may memoize in the
/// frame: the block itself never assigns them, and no method body assigns
/// their name (methods are the only code that can run inside this frame's
/// lifetime, so nothing can change the global mid-frame).
fn mark_cacheable(code: &mut CodeBlock, method_assigned: &HashSet<String>) {
    let mut local_assigned = vec![false; code.slot_count()];
    for op in &code.ops {
        if let Op::AssignSlot { slot, .. } = op {
            local_assigned[*slot as usize] = true;
        }
    }
    for (s, assigned) in local_assigned.iter().enumerate() {
        code.cacheable[s] = code.slot_kinds[s] == SlotKind::Global
            && !assigned
            && !method_assigned.contains(code.name(code.slot_names[s]));
    }
}

struct LoopFrame {
    /// `Jump` ops to patch to the loop exit.
    breaks: Vec<usize>,
    /// `Jump` ops to patch to the continue target.
    continues: Vec<usize>,
}

struct Lowerer<'a> {
    tp: &'a TypedProgram,
    methods_by_class: &'a HashMap<String, HashMap<String, u32>>,
    class_map: &'a HashMap<String, u32>,
    class: String,
    class_fields: HashSet<String>,
    in_method: bool,
    top_span: Span,

    ops: Vec<Op>,
    spans: Vec<Span>,
    consts: Vec<ConstVal>,
    names: Vec<String>,
    name_ids: HashMap<String, u16>,
    slot_of: HashMap<String, Reg>,
    slot_names: Vec<u16>,
    slot_kinds: Vec<SlotKind>,
    /// First free temporary register (watermark-scoped).
    next_tmp: u16,
    max_regs: u16,
    loops: Vec<LoopFrame>,
}

impl<'a> Lowerer<'a> {
    fn new(
        tp: &'a TypedProgram,
        methods_by_class: &'a HashMap<String, HashMap<String, u32>>,
        class_map: &'a HashMap<String, u32>,
        class: &str,
        in_method: bool,
    ) -> Self {
        let class_fields = tp
            .program
            .class(class)
            .map(|c| c.fields.iter().map(|f| f.name.clone()).collect())
            .unwrap_or_default();
        Lowerer {
            tp,
            methods_by_class,
            class_map,
            class: class.to_string(),
            class_fields,
            in_method,
            top_span: Span::synthetic(),
            ops: Vec::new(),
            spans: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            slot_of: HashMap::new(),
            slot_names: Vec::new(),
            slot_kinds: Vec::new(),
            next_tmp: 0,
            max_regs: 0,
            loops: Vec::new(),
        }
    }

    // -- slot discovery -----------------------------------------------------

    fn declare_slot(&mut self, name: &str) -> Reg {
        if let Some(r) = self.slot_of.get(name) {
            return *r;
        }
        let r = self.slot_names.len() as Reg;
        let nid = self.name_id(name);
        self.slot_of.insert(name.to_string(), r);
        self.slot_names.push(nid);
        let kind = if self.class_fields.contains(name) {
            SlotKind::ThisField
        } else if self.tp.symbols.externs.contains_key(name) {
            SlotKind::Global
        } else {
            SlotKind::Dynamic
        };
        self.slot_kinds.push(kind);
        r
    }

    /// Every name the code can read or write as a plain variable gets a
    /// slot — including names that resolve to fields or globals at run
    /// time (those stay unbound and take the fallback chain).
    fn collect_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.collect_stmt(s);
        }
    }

    fn collect_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::VarDecl { name, init, .. } => {
                self.declare_slot(name);
                if let Some(e) = init {
                    self.collect_expr(e);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                match target {
                    LValue::Var(name) => {
                        self.declare_slot(name);
                    }
                    LValue::Field(base, _) => self.collect_expr(base),
                    LValue::Index(base, idx) => {
                        self.collect_expr(base);
                        self.collect_expr(idx);
                    }
                }
                self.collect_expr(value);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.collect_expr(cond);
                self.collect_stmts(&then_blk.stmts);
                if let Some(e) = else_blk {
                    self.collect_stmts(&e.stmts);
                }
            }
            StmtKind::While { cond, body } => {
                self.collect_expr(cond);
                self.collect_stmts(&body.stmts);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.collect_stmt(i);
                }
                if let Some(c) = cond {
                    self.collect_expr(c);
                }
                if let Some(st) = step {
                    self.collect_stmt(st);
                }
                self.collect_stmts(&body.stmts);
            }
            StmtKind::Foreach { var, domain, body } => {
                self.declare_slot(var);
                self.collect_expr(domain);
                self.collect_stmts(&body.stmts);
            }
            StmtKind::Pipelined {
                var,
                domain,
                num_packets,
                body,
            } => {
                self.declare_slot(var);
                self.collect_expr(domain);
                self.collect_expr(num_packets);
                self.collect_stmts(&body.stmts);
            }
            StmtKind::Return(Some(e)) | StmtKind::Expr(e) => self.collect_expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.collect_stmts(&b.stmts),
        }
    }

    fn collect_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(name) => {
                self.declare_slot(name);
            }
            ExprKind::Field(base, _) => self.collect_expr(base),
            ExprKind::Index(base, idx) => {
                self.collect_expr(base);
                self.collect_expr(idx);
            }
            ExprKind::Unary(_, inner) => self.collect_expr(inner),
            ExprKind::Binary(_, l, r) => {
                self.collect_expr(l);
                self.collect_expr(r);
            }
            ExprKind::Ternary(c, a, b) => {
                self.collect_expr(c);
                self.collect_expr(a);
                self.collect_expr(b);
            }
            ExprKind::Call { recv, args, .. } => {
                for a in args {
                    self.collect_expr(a);
                }
                if let Some(r) = recv {
                    self.collect_expr(r);
                }
            }
            ExprKind::NewArray(_, len) => self.collect_expr(len),
            ExprKind::DomainLit(lo, hi) => {
                self.collect_expr(lo);
                self.collect_expr(hi);
            }
            ExprKind::IntLit(_)
            | ExprKind::DoubleLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::Null
            | ExprKind::This
            | ExprKind::New(_) => {}
        }
    }

    /// Freeze the named-slot region: temporaries allocate above it.
    fn seal_slots(&mut self) {
        self.next_tmp = self.slot_names.len() as u16;
        self.max_regs = self.next_tmp;
    }

    // -- small helpers ------------------------------------------------------

    fn emit(&mut self, op: Op, span: Span) -> usize {
        self.ops.push(op);
        self.spans.push(span);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.ops[at] {
            Op::Jump { to: t }
            | Op::BranchTrue { to: t, .. }
            | Op::BranchFalse { to: t, .. }
            | Op::ForeachBegin { end: t, .. }
            | Op::PipeBegin { end: t, .. } => *t = to,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_tmp;
        self.next_tmp = self
            .next_tmp
            .checked_add(1)
            .expect("bytecode frame exceeds 65535 registers");
        self.max_regs = self.max_regs.max(self.next_tmp);
        r
    }

    fn name_id(&mut self, name: &str) -> u16 {
        if let Some(id) = self.name_ids.get(name) {
            return *id;
        }
        let id = u16::try_from(self.names.len()).expect("bytecode name pool exceeds 65535 entries");
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    fn konst(&mut self, c: ConstVal) -> u16 {
        if let Some(i) = self.consts.iter().position(|k| k.same(&c)) {
            return i as u16;
        }
        let id =
            u16::try_from(self.consts.len()).expect("bytecode const pool exceeds 65535 entries");
        self.consts.push(c);
        id
    }

    fn slot(&mut self, name: &str) -> Reg {
        // The collect pre-pass declared every name; `declare_slot` is
        // idempotent so this is a plain lookup.
        self.declare_slot(name)
    }

    fn finish(self) -> CodeBlock {
        let cacheable = vec![false; self.slot_names.len()];
        CodeBlock {
            class: self.class,
            ops: self.ops,
            spans: self.spans,
            consts: self.consts,
            names: self.names,
            slot_names: self.slot_names,
            slot_kinds: self.slot_kinds,
            cacheable,
            n_regs: self.max_regs,
        }
    }

    // -- statements ---------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let save = self.next_tmp;
        match &s.kind {
            StmtKind::VarDecl { name, ty, init } => {
                let slot = self.slot(name);
                match init {
                    Some(e) => {
                        let t = self.alloc();
                        self.expr(e, t);
                        if *ty == Type::Double {
                            self.emit(Op::CoerceDouble { reg: t }, s.span);
                        }
                        self.emit(Op::BindSlot { slot, src: t }, s.span);
                    }
                    None => {
                        let k = self.konst(ConstVal::default_for(ty));
                        self.emit(Op::BindDefault { slot, k }, s.span);
                    }
                }
            }
            StmtKind::Assign { target, op, value } => {
                // Right-hand side first, exactly like the interpreter.
                let src = self.alloc();
                self.expr(value, src);
                match target {
                    LValue::Var(name) => {
                        let slot = self.slot(name);
                        self.emit(
                            Op::AssignSlot {
                                slot,
                                src,
                                mode: *op,
                            },
                            s.span,
                        );
                    }
                    LValue::Field(base, field) => {
                        let tb = self.alloc();
                        self.expr(base, tb);
                        let name = self.name_id(field);
                        self.emit(
                            Op::StoreField {
                                base: tb,
                                name,
                                src,
                                mode: *op,
                            },
                            s.span,
                        );
                    }
                    LValue::Index(base, idx) => {
                        let tb = self.alloc();
                        self.expr(base, tb);
                        let ti = self.alloc();
                        self.expr(idx, ti);
                        self.emit(Op::CheckInt { src: ti }, idx.span);
                        self.emit(
                            Op::StoreIndex {
                                base: tb,
                                idx: ti,
                                src,
                                mode: *op,
                            },
                            s.span,
                        );
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let tc = self.alloc();
                self.expr(cond, tc);
                let jf = self.emit(Op::BranchFalse { cond: tc, to: 0 }, cond.span);
                self.stmts(&then_blk.stmts);
                match else_blk {
                    Some(e) => {
                        let jend = self.emit(Op::Jump { to: 0 }, s.span);
                        let else_at = self.here();
                        self.patch(jf, else_at);
                        self.stmts(&e.stmts);
                        let end = self.here();
                        self.patch(jend, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(jf, end);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let head = self.here();
                let tc = self.alloc();
                self.expr(cond, tc);
                let jexit = self.emit(Op::BranchFalse { cond: tc, to: 0 }, cond.span);
                self.loops.push(LoopFrame {
                    breaks: vec![jexit],
                    continues: Vec::new(),
                });
                self.stmts(&body.stmts);
                self.emit(Op::Jump { to: head }, s.span);
                let end = self.here();
                let frame = self.loops.pop().expect("pushed above");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, head);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let head = self.here();
                let mut jexit = None;
                if let Some(c) = cond {
                    let tc = self.alloc();
                    self.expr(c, tc);
                    jexit = Some(self.emit(Op::BranchFalse { cond: tc, to: 0 }, c.span));
                }
                self.loops.push(LoopFrame {
                    breaks: jexit.into_iter().collect(),
                    continues: Vec::new(),
                });
                self.stmts(&body.stmts);
                // `continue` in a for loop runs the step, then re-tests.
                let cont_at = self.here();
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.emit(Op::Jump { to: head }, s.span);
                let end = self.here();
                let frame = self.loops.pop().expect("pushed above");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, cont_at);
                }
            }
            StmtKind::Foreach { var, domain, body } => {
                let slot = self.slot(var);
                let dom = self.alloc();
                self.expr(domain, dom);
                let cur = self.alloc();
                let begin = self.emit(
                    Op::ForeachBegin {
                        dom,
                        var: slot,
                        cur,
                        end: 0,
                    },
                    s.span,
                );
                let body_at = self.here();
                self.loops.push(LoopFrame {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmts(&body.stmts);
                let next_at = self.here();
                self.emit(
                    Op::ForeachNext {
                        var: slot,
                        cur,
                        dom,
                        body: body_at,
                    },
                    s.span,
                );
                let end = self.here();
                self.patch(begin, end);
                let frame = self.loops.pop().expect("pushed above");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, next_at);
                }
            }
            StmtKind::Pipelined {
                var,
                domain,
                num_packets,
                body,
            } => {
                let slot = self.slot(var);
                let dom = self.alloc();
                self.expr(domain, dom);
                // Domain-ness is checked before num_packets evaluates,
                // matching the interpreter's order.
                self.emit(Op::CheckDomainPipe { src: dom }, s.span);
                let n = self.alloc();
                self.expr(num_packets, n);
                self.emit(Op::CheckInt { src: n }, num_packets.span);
                let p = self.alloc();
                let begin = self.emit(
                    Op::PipeBegin {
                        dom,
                        n,
                        var: slot,
                        p,
                        end: 0,
                    },
                    s.span,
                );
                let body_at = self.here();
                self.loops.push(LoopFrame {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmts(&body.stmts);
                let next_at = self.here();
                self.emit(
                    Op::PipeNext {
                        dom,
                        n,
                        var: slot,
                        p,
                        body: body_at,
                    },
                    s.span,
                );
                let end = self.here();
                self.patch(begin, end);
                let frame = self.loops.pop().expect("pushed above");
                for at in frame.breaks {
                    self.patch(at, end);
                }
                for at in frame.continues {
                    self.patch(at, next_at);
                }
            }
            StmtKind::Return(value) => {
                match (value, self.in_method) {
                    (Some(e), true) => {
                        let t = self.alloc();
                        self.expr(e, t);
                        self.emit(Op::Ret { src: t }, s.span);
                    }
                    (None, true) => {
                        self.emit(Op::RetVoid, s.span);
                    }
                    // In a slice, `return` stops the slice after
                    // evaluating its operand (for effects/errors); the
                    // value is discarded.
                    (Some(e), false) => {
                        let t = self.alloc();
                        self.expr(e, t);
                        self.emit(Op::Halt, s.span);
                    }
                    (None, false) => {
                        self.emit(Op::Halt, s.span);
                    }
                }
            }
            StmtKind::Expr(e) => {
                let t = self.alloc();
                self.expr(e, t);
            }
            StmtKind::Block(b) => self.stmts(&b.stmts),
            StmtKind::Break => {
                if self.loops.is_empty() {
                    if self.in_method {
                        // The interpreter folds a loose break in a method
                        // body to a `Void` return.
                        self.emit(Op::RetVoid, s.span);
                    } else {
                        self.emit(Op::FailEscape, self.top_span);
                    }
                } else {
                    let j = self.emit(Op::Jump { to: 0 }, s.span);
                    self.loops.last_mut().expect("non-empty").breaks.push(j);
                }
            }
            StmtKind::Continue => {
                if self.loops.is_empty() {
                    if self.in_method {
                        self.emit(Op::RetVoid, s.span);
                    } else {
                        self.emit(Op::FailEscape, self.top_span);
                    }
                } else {
                    let j = self.emit(Op::Jump { to: 0 }, s.span);
                    self.loops.last_mut().expect("non-empty").continues.push(j);
                }
            }
        }
        self.next_tmp = save;
    }

    // -- expressions --------------------------------------------------------

    /// Lower `e` so its value lands in `dst`. Temporaries allocated for
    /// subexpressions are released on return.
    fn expr(&mut self, e: &Expr, dst: Reg) {
        let save = self.next_tmp;
        match &e.kind {
            ExprKind::IntLit(v) => {
                let k = self.konst(ConstVal::Int(*v));
                self.emit(Op::Const { dst, k }, e.span);
            }
            ExprKind::DoubleLit(v) => {
                let k = self.konst(ConstVal::Double(*v));
                self.emit(Op::Const { dst, k }, e.span);
            }
            ExprKind::BoolLit(v) => {
                let k = self.konst(ConstVal::Bool(*v));
                self.emit(Op::Const { dst, k }, e.span);
            }
            ExprKind::Null => {
                let k = self.konst(ConstVal::Null);
                self.emit(Op::Const { dst, k }, e.span);
            }
            ExprKind::Var(name) => {
                let slot = self.slot(name);
                self.emit(Op::ReadSlot { dst, slot }, e.span);
            }
            ExprKind::This => {
                self.emit(Op::LoadThis { dst }, e.span);
            }
            ExprKind::Field(base, field) => {
                let tb = self.alloc();
                self.expr(base, tb);
                let name = self.name_id(field);
                self.emit(
                    Op::LoadField {
                        dst,
                        base: tb,
                        name,
                    },
                    e.span,
                );
            }
            ExprKind::Index(base, idx) => {
                let tb = self.alloc();
                self.expr(base, tb);
                let ti = self.alloc();
                self.expr(idx, ti);
                self.emit(Op::CheckInt { src: ti }, idx.span);
                self.emit(
                    Op::LoadIndex {
                        dst,
                        base: tb,
                        idx: ti,
                    },
                    e.span,
                );
            }
            ExprKind::Unary(op, inner) => {
                let t = self.alloc();
                self.expr(inner, t);
                match op {
                    UnOp::Neg => self.emit(Op::Neg { dst, src: t }, e.span),
                    UnOp::Not => self.emit(Op::Not { dst, src: t }, e.span),
                };
            }
            ExprKind::Binary(op, l, r) => match op {
                BinOp::And => {
                    self.expr(l, dst);
                    let jshort = self.emit(Op::BranchFalse { cond: dst, to: 0 }, l.span);
                    self.expr(r, dst);
                    self.emit(Op::CheckBool { src: dst }, r.span);
                    let jend = self.emit(Op::Jump { to: 0 }, e.span);
                    let short_at = self.here();
                    self.patch(jshort, short_at);
                    let k = self.konst(ConstVal::Bool(false));
                    self.emit(Op::Const { dst, k }, e.span);
                    let end = self.here();
                    self.patch(jend, end);
                }
                BinOp::Or => {
                    self.expr(l, dst);
                    let jshort = self.emit(Op::BranchTrue { cond: dst, to: 0 }, l.span);
                    self.expr(r, dst);
                    self.emit(Op::CheckBool { src: dst }, r.span);
                    let jend = self.emit(Op::Jump { to: 0 }, e.span);
                    let short_at = self.here();
                    self.patch(jshort, short_at);
                    let k = self.konst(ConstVal::Bool(true));
                    self.emit(Op::Const { dst, k }, e.span);
                    let end = self.here();
                    self.patch(jend, end);
                }
                _ => {
                    let tl = self.alloc();
                    self.expr(l, tl);
                    let tr = self.alloc();
                    self.expr(r, tr);
                    self.emit(
                        Op::Bin {
                            op: *op,
                            dst,
                            l: tl,
                            r: tr,
                        },
                        e.span,
                    );
                }
            },
            ExprKind::Ternary(c, a, b) => {
                let tc = self.alloc();
                self.expr(c, tc);
                let jelse = self.emit(Op::BranchFalse { cond: tc, to: 0 }, c.span);
                self.expr(a, dst);
                let jend = self.emit(Op::Jump { to: 0 }, e.span);
                let else_at = self.here();
                self.patch(jelse, else_at);
                self.expr(b, dst);
                let end = self.here();
                self.patch(jend, end);
            }
            ExprKind::Call { recv, method, args } => {
                let argc = u8::try_from(args.len()).expect("more than 255 call arguments");
                let argb = self.next_tmp;
                for a in args {
                    let t = self.alloc();
                    self.expr(a, t);
                }
                match recv {
                    None => {
                        if let Some(f) = is_builtin(method)
                            .then(|| BuiltinFn::from_name(method))
                            .flatten()
                        {
                            self.emit(Op::CallBuiltin { dst, f, argb, argc }, e.span);
                        } else {
                            let mi = self
                                .methods_by_class
                                .get(&self.class)
                                .and_then(|m| m.get(method))
                                .copied()
                                .unwrap_or(UNRESOLVED);
                            let name = self.name_id(method);
                            self.emit(
                                Op::CallStatic {
                                    dst,
                                    mi,
                                    name,
                                    argb,
                                    argc,
                                },
                                e.span,
                            );
                        }
                    }
                    Some(r) => {
                        // Arguments evaluate before the receiver — the
                        // interpreter's order.
                        let tr = self.alloc();
                        self.expr(r, tr);
                        // By name only: the interpreter's domain/array
                        // intrinsics ignore arity.
                        let fast = match method.as_str() {
                            "lo" => FastMeth::DomLo,
                            "hi" => FastMeth::DomHi,
                            "size" => FastMeth::DomSize,
                            "length" => FastMeth::ArrLen,
                            _ => FastMeth::None,
                        };
                        let name = self.name_id(method);
                        self.emit(
                            Op::CallMethod {
                                dst,
                                recv: tr,
                                name,
                                fast,
                                argb,
                                argc,
                            },
                            e.span,
                        );
                    }
                }
            }
            ExprKind::New(cname) => {
                let ci = self.class_map.get(cname).copied().unwrap_or(UNRESOLVED);
                let name = self.name_id(cname);
                self.emit(Op::New { dst, ci, name }, e.span);
            }
            ExprKind::NewArray(elem, len) => {
                let tl = self.alloc();
                self.expr(len, tl);
                self.emit(Op::CheckInt { src: tl }, len.span);
                let k = self.konst(ConstVal::default_for(elem));
                self.emit(Op::NewArray { dst, len: tl, k }, e.span);
            }
            ExprKind::DomainLit(lo, hi) => {
                let ta = self.alloc();
                self.expr(lo, ta);
                self.emit(Op::CheckInt { src: ta }, lo.span);
                let tb = self.alloc();
                self.expr(hi, tb);
                self.emit(Op::CheckInt { src: tb }, hi.span);
                self.emit(
                    Op::NewDomain {
                        dst,
                        lo: ta,
                        hi: tb,
                    },
                    e.span,
                );
            }
        }
        self.next_tmp = save;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    fn lower_main(src: &str) -> (ProgramCode, CodeBlock) {
        let tp = frontend(src).unwrap();
        let prog = ProgramCode::lower(&tp);
        let (class, method) = tp.program.main().unwrap();
        let slice = prog.lower_slice(&tp, &class.name, &method.body.stmts);
        (prog, slice)
    }

    #[test]
    fn locals_become_slots_not_hash_lookups() {
        let (_, slice) = lower_main(
            r#"class A { void main() {
                int a = 1;
                int b = a + 2;
                a = b - 1;
            } }"#,
        );
        assert_eq!(slice.slot_count(), 2, "a and b");
        // Reads of `a` and writes of both land on slot ops.
        assert!(slice
            .ops
            .iter()
            .any(|o| matches!(o, Op::ReadSlot { slot: 0, .. })));
        assert!(slice
            .ops
            .iter()
            .any(|o| matches!(o, Op::AssignSlot { slot: 0, .. })));
        assert!(slice
            .ops
            .iter()
            .any(|o| matches!(o, Op::BindSlot { slot: 1, .. })));
    }

    #[test]
    fn foreach_lowers_to_fused_loop() {
        let (_, slice) = lower_main(
            r#"class A { void main() {
                RectDomain<1> d = [0 : 9];
                int sum = 0;
                foreach (i in d) { sum += i; }
            } }"#,
        );
        let begin = slice
            .ops
            .iter()
            .position(|o| matches!(o, Op::ForeachBegin { .. }))
            .expect("fused foreach header");
        let next = slice
            .ops
            .iter()
            .position(|o| matches!(o, Op::ForeachNext { .. }))
            .expect("fused foreach back-edge");
        assert!(begin < next);
        // The reduction accumulate is one fused op with its mode.
        assert!(slice.ops.iter().any(|o| matches!(
            o,
            Op::AssignSlot {
                mode: AssignOp::Add,
                ..
            }
        )));
        // The header jumps past the back-edge when the domain is empty.
        let Op::ForeachBegin { end, .. } = slice.ops[begin] else {
            unreachable!()
        };
        assert_eq!(end as usize, next + 1);
    }

    #[test]
    fn array_accumulate_is_one_store_op() {
        let (_, slice) = lower_main(
            r#"extern double[] xs;
               class A { void main() {
                xs[0] += 2.5;
            } }"#,
        );
        assert!(slice.ops.iter().any(|o| matches!(
            o,
            Op::StoreIndex {
                mode: AssignOp::Add,
                ..
            }
        )));
    }

    #[test]
    fn domain_methods_pre_resolve() {
        let (_, slice) = lower_main(
            r#"class A { void main() {
                RectDomain<1> d = [0 : 9];
                int n = d.size();
                int l = d.lo();
            } }"#,
        );
        assert!(slice.ops.iter().any(|o| matches!(
            o,
            Op::CallMethod {
                fast: FastMeth::DomSize,
                ..
            }
        )));
        assert!(slice.ops.iter().any(|o| matches!(
            o,
            Op::CallMethod {
                fast: FastMeth::DomLo,
                ..
            }
        )));
    }

    #[test]
    fn static_calls_resolve_to_method_ids() {
        let (prog, slice) = lower_main(
            r#"class A {
                int f(int x) { return x + 1; }
                void main() { int y = f(2); }
            }"#,
        );
        let fid = prog.method_id("A", "f").unwrap();
        assert!(slice
            .ops
            .iter()
            .any(|o| matches!(o, Op::CallStatic { mi, .. } if *mi == fid)));
    }

    #[test]
    fn extern_names_classify_as_global_slots() {
        let (_, slice) = lower_main(
            r#"extern int n;
               class A { void main() {
                int m = n + 1;
            } }"#,
        );
        let n_slot = slice
            .slot_names
            .iter()
            .position(|id| slice.name(*id) == "n")
            .unwrap();
        assert_eq!(slice.slot_kinds[n_slot], SlotKind::Global);
    }

    #[test]
    fn field_names_classify_as_this_slots() {
        let tp = frontend(
            r#"class Acc {
                double total;
                void add(double x) { total = total + x; }
            }
            class A { void main() { } }"#,
        )
        .unwrap();
        let prog = ProgramCode::lower(&tp);
        let mid = prog.method_id("Acc", "add").unwrap();
        let code = &prog.methods[mid as usize].code;
        let t_slot = code
            .slot_names
            .iter()
            .position(|id| code.name(*id) == "total")
            .unwrap();
        assert_eq!(code.slot_kinds[t_slot], SlotKind::ThisField);
    }

    #[test]
    fn temporaries_are_reused_across_statements() {
        let (_, slice) = lower_main(
            r#"class A { void main() {
                int a = 1 + 2 * 3;
                int b = 4 + 5 * 6;
                int c = a + b;
            } }"#,
        );
        // Three named slots; the expression temps for each statement
        // occupy the same registers (watermark resets per statement), so
        // the frame is bounded by one statement's peak (5 temps for the
        // nested binop tree), not the sum over all statements (~12).
        assert!(
            slice.n_regs <= 3 + 5,
            "frame too large: {} regs",
            slice.n_regs
        );
    }

    #[test]
    fn jumps_stay_in_bounds() {
        let (prog, slice) = lower_main(
            r#"extern int n;
               class A {
                int fib(int k) { if (k < 2) { return k; } return fib(k - 1) + fib(k - 2); }
                void main() {
                    int acc = 0;
                    for (int i = 0; i < n; i += 1) {
                        if (i % 2 == 0) { continue; }
                        if (i > 40) { break; }
                        acc += fib(i % 7);
                    }
                    while (acc > 100) { acc -= 3; }
                } }"#,
        );
        let check = |code: &CodeBlock| {
            for op in &code.ops {
                let to = match op {
                    Op::Jump { to }
                    | Op::BranchTrue { to, .. }
                    | Op::BranchFalse { to, .. }
                    | Op::ForeachBegin { end: to, .. }
                    | Op::PipeBegin { end: to, .. } => *to,
                    Op::ForeachNext { body, .. } | Op::PipeNext { body, .. } => *body,
                    _ => continue,
                };
                assert!(
                    (to as usize) <= code.ops.len(),
                    "jump target {to} out of bounds ({} ops)",
                    code.ops.len()
                );
            }
        };
        check(&slice);
        for m in &prog.methods {
            check(&m.code);
        }
    }
}
