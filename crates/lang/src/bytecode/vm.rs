//! The register VM.
//!
//! [`Vm`] mirrors [`crate::interp::Interp`]'s public shape (globals,
//! captured output, step counter, optional fuel) and its exact observable
//! semantics: same values, same mutations of shared `Rc` state, same
//! diagnostics with the same spans, same variable-map contents on exit —
//! including the interpreter's quirk of leaving `vars` empty when a slice
//! errors (it `mem::take`s the map and never restores it on the error
//! path).
//!
//! The fuel accounting differs by design: the interpreter ticks per AST
//! node, the VM per op, so the two engines exhaust a given budget at
//! different points. Plan execution never sets fuel; it is a safety valve
//! for tests.

use super::*;
use crate::error::{interp_err, LangResult};
use crate::interp::HostEnv;
use crate::span::Span;
use crate::value::{ObjectVal, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// How a frame finished.
enum VmFlow {
    /// Fell off the end of the op sequence (or `Halt` in a slice).
    Done,
    /// Method `return`.
    Ret(Value),
    /// `break`/`continue` escaped a statement slice.
    Escape(Span),
}

/// Per-slot frame state. `BOUND` is a live local (seeded var, declaration,
/// loop variable) that write-back returns to the caller's var map;
/// `CACHED` is a memoized read of a provably-constant global
/// ([`CodeBlock::cacheable`]) — readable like a local, invisible to
/// write-back.
const UNBOUND: u8 = 0;
const BOUND: u8 = 1;
const CACHED: u8 = 2;

/// Bytecode executor. One instance per filter step, like the interpreter.
pub struct Vm<'p> {
    prog: &'p ProgramCode,
    /// Extern / runtime_define values.
    pub globals: HashMap<String, Value>,
    /// Captured `print()` output.
    pub output: Vec<String>,
    /// Executed op counter (cost/debug aid; op-granular, not AST-granular).
    pub steps: u64,
    /// Optional op budget; exceeding it aborts with an error.
    pub fuel: Option<u64>,
    /// Recycled call frames (registers + slot states) so a method call
    /// in a hot loop does not allocate.
    frames: Vec<(Vec<Value>, Vec<u8>)>,
}

impl<'p> Vm<'p> {
    pub fn new(prog: &'p ProgramCode, host: HostEnv) -> Self {
        Vm {
            prog,
            globals: host.values,
            output: Vec::new(),
            steps: 0,
            fuel: None,
            frames: Vec::new(),
        }
    }

    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Allocate a default-initialized instance of `class`.
    pub fn instantiate(&self, class: &str) -> LangResult<Rc<RefCell<ObjectVal>>> {
        match self.prog.class_map.get(class) {
            Some(ci) => Ok(Rc::new(RefCell::new(
                self.prog.classes[*ci as usize].instantiate(),
            ))),
            None => Err(interp_err(
                Span::synthetic(),
                format!("unknown class `{class}`"),
            )),
        }
    }

    /// Execute a lowered statement slice against `vars` — the bytecode
    /// analogue of `Interp::exec_stmts_with_vars`, with identical
    /// semantics for bindings, write-back, and error behavior.
    pub fn exec_slice(
        &mut self,
        code: &CodeBlock,
        vars: &mut HashMap<String, Value>,
    ) -> LangResult<()> {
        let this = self.instantiate(&code.class)?;
        let mut regs = vec![Value::Void; code.n_regs as usize];
        let mut bound = vec![UNBOUND; code.slot_count()];
        let mut taken = std::mem::take(vars);
        for (i, nid) in code.slot_names.iter().enumerate() {
            if let Some(v) = taken.get(code.name(*nid)) {
                regs[i] = v.clone();
                bound[i] = BOUND;
            }
        }
        match self.run(code, &mut regs, &mut bound, Some(&this))? {
            VmFlow::Done | VmFlow::Ret(_) => {
                write_back(code, &mut regs, &bound, &mut taken);
                *vars = taken;
                Ok(())
            }
            VmFlow::Escape(span) => {
                write_back(code, &mut regs, &bound, &mut taken);
                *vars = taken;
                Err(interp_err(span, "break/continue escaped statement slice"))
            }
        }
        // A `?`-propagated error drops `taken`, leaving `vars` empty —
        // exactly what the interpreter's `mem::take` does on that path.
    }

    /// Call a lowered method by id. `args` is borrowed straight from the
    /// caller's registers — no intermediate argv allocation.
    fn invoke(
        &mut self,
        mi: usize,
        this: Option<Rc<RefCell<ObjectVal>>>,
        args: &[Value],
    ) -> LangResult<Value> {
        let m = &self.prog.methods[mi];
        if args.len() != m.params as usize {
            return Err(interp_err(
                m.decl_span,
                format!("arity mismatch calling `{}::{}`", m.class, m.name),
            ));
        }
        let (mut regs, mut bound) = self.frames.pop().unwrap_or_default();
        regs.clear();
        regs.resize(m.code.n_regs as usize, Value::Void);
        bound.clear();
        bound.resize(m.code.slot_count(), UNBOUND);
        for (i, a) in args.iter().enumerate() {
            regs[i] = a.clone();
            bound[i] = BOUND;
        }
        let flow = self.run(&m.code, &mut regs, &mut bound, this.as_ref());
        self.frames.push((regs, bound));
        match flow? {
            VmFlow::Ret(v) => Ok(if m.coerce_ret { widen_to_double(v) } else { v }),
            // Falling off the end — or a loose break/continue, which the
            // interpreter folds to `Void` (lowered to `RetVoid`, so
            // `Escape` cannot occur in method code).
            VmFlow::Done | VmFlow::Escape(_) => Ok(Value::Void),
        }
    }

    fn run(
        &mut self,
        code: &CodeBlock,
        regs: &mut [Value],
        bound: &mut [u8],
        this: Option<&Rc<RefCell<ObjectVal>>>,
    ) -> LangResult<VmFlow> {
        let prog = self.prog;
        let ops = &code.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            self.steps += 1;
            if let Some(fuel) = self.fuel {
                if self.steps > fuel {
                    return Err(interp_err(code.spans[pc], "interpreter fuel exhausted"));
                }
            }
            match ops[pc] {
                Op::Const { dst, k } => {
                    regs[dst as usize] = code.consts[k as usize].to_value();
                }
                Op::ReadSlot { dst, slot } => {
                    let s = slot as usize;
                    if bound[s] != UNBOUND {
                        let v = regs[s].clone();
                        regs[dst as usize] = v;
                    } else {
                        let v = self.fallback_read(code, s, this, code.spans[pc])?;
                        if code.cacheable[s] {
                            // Provably-constant global: memoize so hot
                            // loops stop re-hashing the name.
                            regs[s] = v.clone();
                            bound[s] = CACHED;
                        }
                        regs[dst as usize] = v;
                    }
                }
                Op::BindSlot { slot, src } => {
                    regs[slot as usize] = std::mem::replace(&mut regs[src as usize], Value::Void);
                    bound[slot as usize] = BOUND;
                }
                Op::BindDefault { slot, k } => {
                    regs[slot as usize] = code.consts[k as usize].to_value();
                    bound[slot as usize] = BOUND;
                }
                Op::CoerceDouble { reg } => {
                    if let Value::Int(i) = regs[reg as usize] {
                        regs[reg as usize] = Value::Double(i as f64);
                    }
                }
                Op::AssignSlot { slot, src, mode } => {
                    let span = code.spans[pc];
                    let s = slot as usize;
                    let rhs = regs[src as usize].clone();
                    if bound[s] == BOUND {
                        let widened = widen(&regs[s], rhs);
                        let nv = combine(mode, &regs[s], widened, span)?;
                        regs[s] = nv;
                    } else {
                        self.fallback_write(code, s, this, rhs, mode, span)?;
                        // Defensive: a cached copy of this global (cannot
                        // happen today — cacheable slots are never
                        // assigned) would now be stale.
                        bound[s] = UNBOUND;
                    }
                }
                Op::LoadThis { dst } => {
                    regs[dst as usize] = this.cloned().map(Value::Object).ok_or_else(|| {
                        interp_err(code.spans[pc], "`this` outside an instance method")
                    })?;
                }
                Op::LoadField { dst, base, name } => {
                    let span = code.spans[pc];
                    let b = regs[base as usize].clone();
                    let Value::Object(obj) = b else {
                        return Err(interp_err(span, "field access on non-object"));
                    };
                    let fname = code.name(name);
                    let v = obj
                        .borrow()
                        .fields
                        .get(fname)
                        .cloned()
                        .ok_or_else(|| interp_err(span, format!("no field `{fname}`")))?;
                    regs[dst as usize] = v;
                }
                Op::StoreField {
                    base,
                    name,
                    src,
                    mode,
                } => {
                    let span = code.spans[pc];
                    let rhs = regs[src as usize].clone();
                    let b = regs[base as usize].clone();
                    let Value::Object(obj) = b else {
                        return Err(interp_err(span, "field assignment on non-object"));
                    };
                    let fname = code.name(name);
                    let old = obj
                        .borrow()
                        .fields
                        .get(fname)
                        .cloned()
                        .ok_or_else(|| interp_err(span, format!("no field `{fname}`")))?;
                    let nv = combine(mode, &old, widen(&old, rhs), span)?;
                    obj.borrow_mut().fields.insert(fname.to_string(), nv);
                }
                Op::LoadIndex { dst, base, idx } => {
                    let span = code.spans[pc];
                    let i = int_reg(&regs[idx as usize]);
                    let b = regs[base as usize].clone();
                    let Value::Array(arr) = b else {
                        return Err(interp_err(span, "indexing non-array"));
                    };
                    let arr = arr.borrow();
                    if i < 0 || i as usize >= arr.len() {
                        return Err(interp_err(
                            span,
                            format!("array index {i} out of bounds (len {})", arr.len()),
                        ));
                    }
                    let v = arr[i as usize].clone();
                    drop(arr);
                    regs[dst as usize] = v;
                }
                Op::StoreIndex {
                    base,
                    idx,
                    src,
                    mode,
                } => {
                    let span = code.spans[pc];
                    let i = int_reg(&regs[idx as usize]);
                    let rhs = regs[src as usize].clone();
                    let b = regs[base as usize].clone();
                    let Value::Array(arr) = b else {
                        return Err(interp_err(span, "index assignment on non-array"));
                    };
                    let len = arr.borrow().len();
                    if i < 0 || i as usize >= len {
                        return Err(interp_err(
                            span,
                            format!("array index {i} out of bounds (len {len})"),
                        ));
                    }
                    let old = arr.borrow()[i as usize].clone();
                    let nv = combine(mode, &old, widen(&old, rhs), span)?;
                    arr.borrow_mut()[i as usize] = nv;
                }
                Op::CheckInt { src } => {
                    if !matches!(regs[src as usize], Value::Int(_)) {
                        return Err(interp_err(code.spans[pc], "expected an int"));
                    }
                }
                Op::CheckBool { src } => {
                    if !matches!(regs[src as usize], Value::Bool(_)) {
                        return Err(interp_err(code.spans[pc], "expected a boolean"));
                    }
                }
                Op::CheckDomainPipe { src } => {
                    if !matches!(regs[src as usize], Value::Domain(..)) {
                        return Err(interp_err(
                            code.spans[pc],
                            "PipelinedLoop over non-domain value",
                        ));
                    }
                }
                Op::Neg { dst, src } => {
                    let v = match &regs[src as usize] {
                        Value::Int(i) => Value::Int(i.wrapping_neg()),
                        Value::Double(d) => Value::Double(-d),
                        _ => return Err(interp_err(code.spans[pc], "negating non-numeric")),
                    };
                    regs[dst as usize] = v;
                }
                Op::Not { dst, src } => {
                    let v = match &regs[src as usize] {
                        Value::Bool(b) => Value::Bool(!b),
                        _ => return Err(interp_err(code.spans[pc], "logical not on non-boolean")),
                    };
                    regs[dst as usize] = v;
                }
                Op::Bin { op, dst, l, r } => {
                    let v = bin_vals(op, &regs[l as usize], &regs[r as usize], code.spans[pc])?;
                    regs[dst as usize] = v;
                }
                Op::Jump { to } => {
                    pc = to as usize;
                    continue;
                }
                Op::BranchTrue { cond, to } => match &regs[cond as usize] {
                    Value::Bool(b) => {
                        if *b {
                            pc = to as usize;
                            continue;
                        }
                    }
                    _ => return Err(interp_err(code.spans[pc], "expected a boolean")),
                },
                Op::BranchFalse { cond, to } => match &regs[cond as usize] {
                    Value::Bool(b) => {
                        if !*b {
                            pc = to as usize;
                            continue;
                        }
                    }
                    _ => return Err(interp_err(code.spans[pc], "expected a boolean")),
                },
                Op::ForeachBegin { dom, var, cur, end } => {
                    let (lo, hi) = match &regs[dom as usize] {
                        Value::Domain(lo, hi) => (*lo, *hi),
                        _ => {
                            return Err(interp_err(code.spans[pc], "foreach over non-domain value"))
                        }
                    };
                    if lo > hi {
                        pc = end as usize;
                        continue;
                    }
                    regs[cur as usize] = Value::Int(lo);
                    regs[var as usize] = Value::Int(lo);
                    bound[var as usize] = BOUND;
                }
                Op::ForeachNext {
                    var,
                    cur,
                    dom,
                    body,
                } => {
                    let hi = match &regs[dom as usize] {
                        Value::Domain(_, hi) => *hi,
                        _ => return Err(interp_err(code.spans[pc], "corrupt foreach state")),
                    };
                    let c = int_reg(&regs[cur as usize]);
                    if c < hi {
                        regs[cur as usize] = Value::Int(c + 1);
                        regs[var as usize] = Value::Int(c + 1);
                        bound[var as usize] = BOUND;
                        pc = body as usize;
                        continue;
                    }
                }
                Op::PipeBegin {
                    dom,
                    n,
                    var,
                    p,
                    end,
                } => {
                    let span = code.spans[pc];
                    let (lo, hi) = match &regs[dom as usize] {
                        Value::Domain(lo, hi) => (*lo, *hi),
                        _ => return Err(interp_err(span, "PipelinedLoop over non-domain value")),
                    };
                    let np = int_reg(&regs[n as usize]);
                    if np <= 0 {
                        return Err(interp_err(span, "num_packets must be positive"));
                    }
                    let total = (hi - lo + 1).max(0);
                    if total == 0 {
                        pc = end as usize;
                        continue;
                    }
                    let nc = np.min(total);
                    regs[n as usize] = Value::Int(nc);
                    regs[p as usize] = Value::Int(0);
                    regs[var as usize] = packet_domain(lo, total, nc, 0);
                    bound[var as usize] = BOUND;
                }
                Op::PipeNext {
                    dom,
                    n,
                    var,
                    p,
                    body,
                } => {
                    let (lo, hi) = match &regs[dom as usize] {
                        Value::Domain(lo, hi) => (*lo, *hi),
                        _ => return Err(interp_err(code.spans[pc], "corrupt pipelined state")),
                    };
                    let total = (hi - lo + 1).max(0);
                    let nc = int_reg(&regs[n as usize]);
                    let pi = int_reg(&regs[p as usize]) + 1;
                    if pi < nc {
                        regs[p as usize] = Value::Int(pi);
                        regs[var as usize] = packet_domain(lo, total, nc, pi);
                        bound[var as usize] = BOUND;
                        pc = body as usize;
                        continue;
                    }
                }
                Op::CallStatic {
                    dst,
                    mi,
                    name,
                    argb,
                    argc,
                } => {
                    if mi == UNRESOLVED {
                        return Err(interp_err(
                            Span::synthetic(),
                            format!("unknown method `{}::{}`", code.class, code.name(name)),
                        ));
                    }
                    let b = argb as usize;
                    let v = self.invoke(mi as usize, this.cloned(), &regs[b..b + argc as usize])?;
                    regs[dst as usize] = v;
                }
                Op::CallMethod {
                    dst,
                    recv,
                    name,
                    fast,
                    argb,
                    argc,
                } => {
                    let span = code.spans[pc];
                    let rv = regs[recv as usize].clone();
                    let v = match rv {
                        Value::Domain(lo, hi) => match fast {
                            FastMeth::DomLo => Value::Int(lo),
                            FastMeth::DomHi => Value::Int(hi),
                            FastMeth::DomSize => Value::Int((hi - lo + 1).max(0)),
                            _ => {
                                return Err(interp_err(
                                    span,
                                    format!("RectDomain has no method `{}`", code.name(name)),
                                ))
                            }
                        },
                        Value::Array(arr) => match fast {
                            FastMeth::ArrLen => Value::Int(arr.borrow().len() as i64),
                            _ => {
                                return Err(interp_err(
                                    span,
                                    format!("arrays have no method `{}`", code.name(name)),
                                ))
                            }
                        },
                        Value::Object(obj) => {
                            let mname = code.name(name);
                            // Resolve inside the borrow so the hot path
                            // never clones the class-name string.
                            let mi = {
                                let b = obj.borrow();
                                prog.methods_by_class
                                    .get(&b.class)
                                    .and_then(|m| m.get(mname))
                                    .copied()
                            };
                            match mi {
                                Some(mi) => {
                                    let b = argb as usize;
                                    self.invoke(
                                        mi as usize,
                                        Some(obj),
                                        &regs[b..b + argc as usize],
                                    )?
                                }
                                None => {
                                    let cls = obj.borrow().class.clone();
                                    return Err(interp_err(
                                        Span::synthetic(),
                                        format!("unknown method `{cls}::{mname}`"),
                                    ));
                                }
                            }
                        }
                        other => {
                            return Err(interp_err(
                                span,
                                format!("cannot call `{}` on value `{other}`", code.name(name)),
                            ))
                        }
                    };
                    regs[dst as usize] = v;
                }
                Op::CallBuiltin { dst, f, argb, argc } => {
                    let b = argb as usize;
                    let v = self.builtin(f, &regs[b..b + argc as usize], code.spans[pc])?;
                    regs[dst as usize] = v;
                }
                Op::New { dst, ci, name } => {
                    if ci == UNRESOLVED {
                        return Err(interp_err(
                            Span::synthetic(),
                            format!("unknown class `{}`", code.name(name)),
                        ));
                    }
                    regs[dst as usize] = Value::Object(Rc::new(RefCell::new(
                        prog.classes[ci as usize].instantiate(),
                    )));
                }
                Op::NewArray { dst, len, k } => {
                    let n = int_reg(&regs[len as usize]);
                    if n < 0 {
                        return Err(interp_err(code.spans[pc], "negative array length"));
                    }
                    regs[dst as usize] =
                        Value::new_array(n as usize, code.consts[k as usize].to_value());
                }
                Op::NewDomain { dst, lo, hi } => {
                    let l = int_reg(&regs[lo as usize]);
                    let h = int_reg(&regs[hi as usize]);
                    regs[dst as usize] = Value::Domain(l, h);
                }
                Op::Ret { src } => {
                    return Ok(VmFlow::Ret(std::mem::replace(
                        &mut regs[src as usize],
                        Value::Void,
                    )));
                }
                Op::RetVoid => return Ok(VmFlow::Ret(Value::Void)),
                Op::Halt => return Ok(VmFlow::Done),
                Op::FailEscape => return Ok(VmFlow::Escape(code.spans[pc])),
            }
            pc += 1;
        }
        Ok(VmFlow::Done)
    }

    /// Unbound-slot read: `this` field, then global — the tail of the
    /// interpreter's lookup chain (the live-local head is the `bound`
    /// test at the call site). [`SlotKind`] elides provably-missing
    /// probes.
    fn fallback_read(
        &self,
        code: &CodeBlock,
        slot: usize,
        this: Option<&Rc<RefCell<ObjectVal>>>,
        span: Span,
    ) -> LangResult<Value> {
        let name = code.name(code.slot_names[slot]);
        if code.slot_kinds[slot] != SlotKind::Global {
            if let Some(t) = this {
                if let Some(v) = t.borrow().fields.get(name) {
                    return Ok(v.clone());
                }
            }
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(v.clone());
        }
        Err(interp_err(span, format!("unknown variable `{name}`")))
    }

    /// Unbound-slot write, mirroring the interpreter's write order:
    /// field of `this`, then global, then error.
    fn fallback_write(
        &mut self,
        code: &CodeBlock,
        slot: usize,
        this: Option<&Rc<RefCell<ObjectVal>>>,
        rhs: Value,
        mode: AssignOp,
        span: Span,
    ) -> LangResult<()> {
        let name = code.name(code.slot_names[slot]);
        if code.slot_kinds[slot] != SlotKind::Global {
            if let Some(t) = this {
                let old = t.borrow().fields.get(name).cloned();
                if let Some(old) = old {
                    let nv = combine(mode, &old, widen(&old, rhs), span)?;
                    t.borrow_mut().fields.insert(name.to_string(), nv);
                    return Ok(());
                }
            }
        }
        if let Some(old) = self.globals.get(name).cloned() {
            let nv = combine(mode, &old, widen(&old, rhs), span)?;
            self.globals.insert(name.to_string(), nv);
            return Ok(());
        }
        Err(interp_err(
            span,
            format!("assignment to unknown variable `{name}`"),
        ))
    }

    fn builtin(&mut self, f: BuiltinFn, args: &[Value], span: Span) -> LangResult<Value> {
        let num = |v: &Value| -> LangResult<f64> {
            v.as_f64()
                .ok_or_else(|| interp_err(span, "numeric argument expected"))
        };
        let arg = |i: usize| -> LangResult<&Value> {
            args.get(i)
                .ok_or_else(|| interp_err(span, "numeric argument expected"))
        };
        match f {
            BuiltinFn::Sqrt => Ok(Value::Double(num(arg(0)?)?.sqrt())),
            BuiltinFn::Floor => Ok(Value::Double(num(arg(0)?)?.floor())),
            BuiltinFn::Ceil => Ok(Value::Double(num(arg(0)?)?.ceil())),
            BuiltinFn::Exp => Ok(Value::Double(num(arg(0)?)?.exp())),
            BuiltinFn::Log => Ok(Value::Double(num(arg(0)?)?.ln())),
            BuiltinFn::Abs => match arg(0)? {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                _ => Err(interp_err(span, "numeric argument expected")),
            },
            BuiltinFn::Min | BuiltinFn::Max => {
                let take_min = f == BuiltinFn::Min;
                match (arg(0)?, arg(1)?) {
                    (Value::Int(a), Value::Int(b)) => {
                        Ok(Value::Int(if take_min { *a.min(b) } else { *a.max(b) }))
                    }
                    _ => {
                        let a = num(arg(0)?)?;
                        let b = num(arg(1)?)?;
                        Ok(Value::Double(if take_min { a.min(b) } else { a.max(b) }))
                    }
                }
            }
            BuiltinFn::Pow => Ok(Value::Double(num(arg(0)?)?.powf(num(arg(1)?)?))),
            BuiltinFn::ToInt => match arg(0)? {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Double(d) => Ok(Value::Int(*d as i64)),
                _ => Err(interp_err(span, "numeric argument expected")),
            },
            BuiltinFn::ToDouble => Ok(Value::Double(num(arg(0)?)?)),
            BuiltinFn::Print => {
                let s = arg(0)?.to_string();
                self.output.push(s);
                Ok(Value::Void)
            }
        }
    }
}

/// Lowering guarantees a [`Op::CheckInt`] before every int-typed operand,
/// so this read cannot miss; the fallback keeps corrupt state from
/// panicking.
fn int_reg(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        _ => 0,
    }
}

fn write_back(
    code: &CodeBlock,
    regs: &mut [Value],
    bound: &[u8],
    vars: &mut HashMap<String, Value>,
) {
    for (i, nid) in code.slot_names.iter().enumerate() {
        // `CACHED` slots are memoized globals, not locals — they must not
        // leak into the caller's variable map.
        if bound[i] == BOUND {
            vars.insert(
                code.name(*nid).to_string(),
                std::mem::replace(&mut regs[i], Value::Void),
            );
        }
    }
}

/// Packet `p` of `split_domain(lo, lo + total - 1, nc)`, computed
/// arithmetically (first `rem` packets take one extra element).
fn packet_domain(lo: i64, total: i64, nc: i64, p: i64) -> Value {
    let base = total / nc;
    let rem = total % nc;
    let len = base + i64::from(p < rem);
    let start = lo + p * base + p.min(rem);
    Value::Domain(start, start + len - 1)
}

/// Implicit int→double widening against the current target value —
/// applied before `combine` for every assignment, including plain `=`.
fn widen(old: &Value, rhs: Value) -> Value {
    match (old, &rhs) {
        (Value::Double(_), Value::Int(i)) => Value::Double(*i as f64),
        _ => rhs,
    }
}

fn widen_to_double(v: Value) -> Value {
    match v {
        Value::Int(i) => Value::Double(i as f64),
        other => other,
    }
}

/// The interpreter's compound-assignment combine, verbatim.
fn combine(mode: AssignOp, old: &Value, rhs: Value, span: Span) -> LangResult<Value> {
    match mode {
        AssignOp::Set => Ok(rhs),
        AssignOp::Add | AssignOp::Sub => match (old, &rhs) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if mode == AssignOp::Add {
                a.wrapping_add(*b)
            } else {
                a.wrapping_sub(*b)
            })),
            _ => {
                let a = old
                    .as_f64()
                    .ok_or_else(|| interp_err(span, "compound assignment on non-numeric target"))?;
                let b = rhs.as_f64().ok_or_else(|| {
                    interp_err(span, "compound assignment with non-numeric value")
                })?;
                let sign = if mode == AssignOp::Add { 1.0 } else { -1.0 };
                Ok(Value::Double(a + sign * b))
            }
        },
    }
}

/// The interpreter's non-logical binary evaluation, verbatim (wrapping
/// integer arithmetic, mixed operands through f64, identity comparison
/// for objects).
fn bin_vals(op: BinOp, lv: &Value, rv: &Value, span: Span) -> LangResult<Value> {
    if op.is_arith() {
        match (lv, rv) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    BinOp::Add => a.wrapping_add(*b),
                    BinOp::Sub => a.wrapping_sub(*b),
                    BinOp::Mul => a.wrapping_mul(*b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(interp_err(span, "integer division by zero"));
                        }
                        a / b
                    }
                    BinOp::Rem => {
                        if *b == 0 {
                            return Err(interp_err(span, "integer remainder by zero"));
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            _ => {
                let a = lv
                    .as_f64()
                    .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                let b = rv
                    .as_f64()
                    .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    _ => unreachable!(),
                };
                Ok(Value::Double(v))
            }
        }
    } else {
        let res = match (lv, rv) {
            (Value::Bool(a), Value::Bool(b)) => match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                _ => return Err(interp_err(span, "ordering comparison on booleans")),
            },
            (Value::Null, Value::Null) => matches!(op, BinOp::Eq),
            (Value::Null, Value::Object(_)) | (Value::Object(_), Value::Null) => {
                matches!(op, BinOp::Ne)
            }
            (Value::Object(a), Value::Object(b)) => {
                let same = Rc::ptr_eq(a, b);
                match op {
                    BinOp::Eq => same,
                    BinOp::Ne => !same,
                    _ => return Err(interp_err(span, "ordering comparison on objects")),
                }
            }
            _ => {
                let a = lv
                    .as_f64()
                    .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                let b = rv
                    .as_f64()
                    .ok_or_else(|| interp_err(span, "non-numeric operand"))?;
                match op {
                    BinOp::Lt => a < b,
                    BinOp::Le => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::Ge => a >= b,
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    _ => unreachable!(),
                }
            }
        };
        Ok(Value::Bool(res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::interp::Interp;

    /// Run `main`'s body as a slice through both engines and demand
    /// identical vars (deep), output, and globals.
    fn run_both(src: &str, host: HostEnv) -> (HashMap<String, Value>, Vec<String>) {
        let tp = frontend(src).unwrap();
        let (class, method) = tp.program.main().unwrap();
        let (cname, stmts) = (class.name.clone(), method.body.stmts.clone());

        let mut it = Interp::new(&tp, host.clone());
        let mut ivars = HashMap::new();
        it.exec_stmts_with_vars(&cname, &stmts, &mut ivars).unwrap();

        let prog = ProgramCode::lower(&tp);
        let slice = prog.lower_slice(&tp, &cname, &stmts);
        let mut vm = Vm::new(&prog, host);
        let mut vvars = HashMap::new();
        vm.exec_slice(&slice, &mut vvars).unwrap();

        assert_eq!(it.output, vm.output, "print output diverged");
        assert_eq!(
            ivars.len(),
            vvars.len(),
            "vars key sets diverged: {:?} vs {:?}",
            ivars.keys().collect::<Vec<_>>(),
            vvars.keys().collect::<Vec<_>>()
        );
        for (k, v) in &ivars {
            let w = vvars.get(k).unwrap_or_else(|| panic!("missing var {k}"));
            assert!(v.deep_eq(w), "var {k}: {v} vs {w}");
        }
        let ig = it.globals;
        let vg = vm.globals;
        assert_eq!(ig.len(), vg.len(), "globals diverged");
        for (k, v) in &ig {
            assert!(v.deep_eq(&vg[k]), "global {k} diverged");
        }
        (vvars, vm.output)
    }

    /// Both engines must fail with the *same* diagnostic.
    fn err_both(src: &str, host: HostEnv) -> crate::error::Diagnostic {
        let tp = frontend(src).unwrap();
        let (class, method) = tp.program.main().unwrap();
        let (cname, stmts) = (class.name.clone(), method.body.stmts.clone());

        let mut it = Interp::new(&tp, host.clone());
        let mut ivars = HashMap::new();
        let ie = it
            .exec_stmts_with_vars(&cname, &stmts, &mut ivars)
            .unwrap_err();

        let prog = ProgramCode::lower(&tp);
        let slice = prog.lower_slice(&tp, &cname, &stmts);
        let mut vm = Vm::new(&prog, host);
        let mut vvars = HashMap::new();
        let ve = vm.exec_slice(&slice, &mut vvars).unwrap_err();

        assert_eq!(ie, ve, "diagnostics diverged");
        assert_eq!(ivars.len(), vvars.len(), "post-error vars diverged");
        ie
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (_, out) = run_both(
            r#"class A { void main() {
                int sum = 0;
                for (int i = 1; i <= 10; i += 1) { sum += i; }
                print(sum);
            } }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["55"]);
    }

    #[test]
    fn foreach_sums_domain() {
        let (_, out) = run_both(
            r#"class A { void main() {
                RectDomain<1> d = [3 : 7];
                int sum = 0;
                foreach (i in d) { sum += i; }
                print(sum);
            } }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["25"]);
    }

    #[test]
    fn cached_global_reads_do_not_leak_into_vars() {
        // `w` is read every iteration and never assigned anywhere, so the
        // VM memoizes it in the frame — the memo must not surface as a
        // local in the written-back vars (run_both compares key sets).
        let (vars, out) = run_both(
            r#"extern int w;
            class A { void main() {
                int s = 0;
                for (int i = 0; i < 5; i += 1) { s += w; }
                print(s);
            } }"#,
            HostEnv::new().bind("w", Value::Int(3)),
        );
        assert_eq!(out, vec!["15"]);
        assert!(!vars.contains_key("w"), "memoized global leaked: {vars:?}");
    }

    #[test]
    fn global_written_by_callee_is_never_stale() {
        // `g` is assigned inside a method, which puts it in the lowered
        // program's assigned-name set and disables memoization: each read
        // in the loop must observe the callee's latest write.
        let (_, out) = run_both(
            r#"extern int g;
            class A {
                void bump() { g = g + 1; }
                void main() {
                    int s = 0;
                    for (int i = 0; i < 4; i += 1) { bump(); s += g; }
                    print(s);
                }
            }"#,
            HostEnv::new().bind("g", Value::Int(0)),
        );
        assert_eq!(out, vec!["10"]);
    }

    #[test]
    fn empty_foreach_leaves_var_unbound() {
        let (vars, _) = run_both(
            r#"class A { void main() {
                RectDomain<1> d = [5 : 2];
                int sum = 0;
                foreach (i in d) { sum += i; }
            } }"#,
            HostEnv::new(),
        );
        assert!(!vars.contains_key("i"), "loop var must not leak: {vars:?}");
        assert_eq!(vars["sum"].as_i64(), Some(0));
    }

    #[test]
    fn pipelined_loop_matches_for_all_packet_counts() {
        for np in [1, 3, 7, 100] {
            let (_, out) = run_both(
                r#"runtime_define int num_packets;
                class A { void main() {
                    RectDomain<1> d = [0 : 99];
                    int sum = 0;
                    PipelinedLoop (pkt in d; num_packets) {
                        foreach (i in pkt) { sum += i; }
                    }
                    print(sum);
                } }"#,
                HostEnv::new().bind("num_packets", Value::Int(np)),
            );
            assert_eq!(out, vec!["4950"], "num_packets={np}");
        }
    }

    #[test]
    fn interprocedural_recursion() {
        let (_, out) = run_both(
            r#"class A {
                int fib(int n) {
                    if (n < 2) { return n; }
                    return fib(n - 1) + fib(n - 2);
                }
                void main() { print(fib(12)); }
            }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["144"]);
    }

    #[test]
    fn objects_methods_and_reduction() {
        let (_, out) = run_both(
            r#"class Acc implements Reducinterface {
                double total;
                void reduce(Acc other) { total = total + other.total; }
                void add(double x) { total = total + x; }
            }
            class A { void main() {
                Acc acc = new Acc();
                RectDomain<1> d = [1 : 4];
                foreach (i in d) { acc.add(toDouble(i)); }
                print(acc.total);
            } }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["10"]);
    }

    #[test]
    fn short_circuit_evaluation() {
        let (_, out) = run_both(
            r#"class A {
                int boom() { int x = 1 / 0; return x; }
                void main() {
                    boolean b = false && boom() > 0;
                    boolean c = true || boom() > 0;
                    print(b);
                    print(c);
                } }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["false", "true"]);
    }

    #[test]
    fn extern_arrays_shared_in_place() {
        // Each engine gets its own array (a shared Rc would let the first
        // run's mutations leak into the second); contents must converge.
        let src = r#"extern double[] xs;
            class A { void main() {
                xs[0] = xs[1] + 2.5;
                xs[2] += 4.0;
                print(xs[0]);
                print(xs[2]);
            } }"#;
        let fresh = || {
            let arr = Value::new_array(3, Value::Double(0.0));
            if let Value::Array(a) = &arr {
                a.borrow_mut()[1] = Value::Double(1.0);
            }
            arr
        };
        let tp = frontend(src).unwrap();
        let (class, method) = tp.program.main().unwrap();

        let ia = fresh();
        let mut it = Interp::new(&tp, HostEnv::new().bind("xs", ia.clone()));
        let mut ivars = HashMap::new();
        it.exec_stmts_with_vars(&class.name, &method.body.stmts, &mut ivars)
            .unwrap();

        let va = fresh();
        let prog = ProgramCode::lower(&tp);
        let slice = prog.lower_slice(&tp, &class.name, &method.body.stmts);
        let mut vm = Vm::new(&prog, HostEnv::new().bind("xs", va.clone()));
        let mut vvars = HashMap::new();
        vm.exec_slice(&slice, &mut vvars).unwrap();

        assert_eq!(it.output, vm.output);
        assert!(ia.deep_eq(&va), "array contents diverged: {ia} vs {va}");
    }

    #[test]
    fn global_scalar_mutation_lands_in_globals() {
        run_both(
            r#"extern int n;
            class A { void main() {
                n += 5;
                print(n);
            } }"#,
            HostEnv::new().bind("n", Value::Int(10)),
        );
    }

    #[test]
    fn ternary_and_builtins() {
        let (_, out) = run_both(
            r#"class A { void main() {
                double x = min(3.0, 2.0);
                double y = max(1, 5);
                int z = toInt(x < y ? pow(2.0, 3.0) : 0.0);
                print(z);
                print(abs(-4));
                print(floor(2.9));
                print(ceil(2.1));
                print(sqrt(16.0));
                print(log(exp(1.0)));
            } }"#,
            HostEnv::new(),
        );
        assert_eq!(out[0], "8");
    }

    #[test]
    fn compound_assign_widens_on_all_paths() {
        run_both(
            r#"class Box { double d; }
            class A { void main() {
                double x = 1.5;
                x += 2;
                Box b = new Box();
                b.d = 1;
                b.d += 2;
                double[] a = new double[2];
                a[0] = 3;
                a[0] += 1;
                print(x);
                print(b.d);
                print(a[0]);
            } }"#,
            HostEnv::new(),
        );
    }

    #[test]
    fn while_break_continue() {
        let (_, out) = run_both(
            r#"class A { void main() {
                int i = 0;
                int acc = 0;
                while (true) {
                    i += 1;
                    if (i > 20) { break; }
                    if (i % 3 == 0) { continue; }
                    acc += i;
                }
                print(acc);
            } }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["147"]);
    }

    #[test]
    fn domain_and_array_methods() {
        run_both(
            r#"class A { void main() {
                RectDomain<1> d = [2 : 11];
                print(d.lo());
                print(d.hi());
                print(d.size());
                int[] a = new int[7];
                print(a.length());
            } }"#,
            HostEnv::new(),
        );
    }

    #[test]
    fn slice_return_stops_early_and_writes_back() {
        let src = r#"class A { void main() {
            int a = 1;
            return;
            int b = 2;
        } }"#;
        let (vars, _) = run_both(src, HostEnv::new());
        assert_eq!(vars["a"].as_i64(), Some(1));
        assert!(!vars.contains_key("b"));
    }

    #[test]
    fn division_by_zero_matches() {
        let d = err_both("class A { void main() { int x = 1 / 0; } }", HostEnv::new());
        assert_eq!(d.message, "integer division by zero");
    }

    #[test]
    fn oob_index_matches() {
        let d = err_both(
            r#"class A { void main() {
                double[] xs = new double[2];
                xs[5] = 1.0;
            } }"#,
            HostEnv::new(),
        );
        assert!(d.message.contains("out of bounds"));
    }

    #[test]
    fn unbound_extern_matches() {
        // Declared externs pass the type checker; reading one the host
        // never bound is the runtime unknown-variable path.
        let d = err_both(
            "extern int m; class A { void main() { int x = m + 1; } }",
            HostEnv::new(),
        );
        assert_eq!(d.message, "unknown variable `m`");
    }

    #[test]
    fn unbound_extern_write_matches() {
        let d = err_both(
            "extern int m; class A { void main() { m = 3; } }",
            HostEnv::new(),
        );
        assert_eq!(d.message, "assignment to unknown variable `m`");
    }

    #[test]
    fn negative_array_length_matches() {
        let d = err_both(
            "class A { void main() { int[] a = new int[0 - 3]; } }",
            HostEnv::new(),
        );
        assert_eq!(d.message, "negative array length");
    }

    #[test]
    fn void_method_falls_off_end() {
        let (_, out) = run_both(
            r#"class A {
                void f(int n) { int x = n * 2; }
                void main() {
                    f(3);
                    print(1);
                } }"#,
            HostEnv::new(),
        );
        assert_eq!(out, vec!["1"]);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let tp = frontend("class A { void main() { while (true) { int x = 0; } } }").unwrap();
        let (class, method) = tp.program.main().unwrap();
        let prog = ProgramCode::lower(&tp);
        let slice = prog.lower_slice(&tp, &class.name, &method.body.stmts);
        let mut vm = Vm::new(&prog, HostEnv::new()).with_fuel(10_000);
        let mut vars = HashMap::new();
        let err = vm.exec_slice(&slice, &mut vars).unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn vars_seed_overrides_like_interpreter() {
        // The stepper seeds slice vars externally; the slot binding must
        // see those values, not defaults.
        let tp = frontend(
            r#"class A { void main() {
                int a = 1;
                int b = a + 2;
            } }"#,
        )
        .unwrap();
        let (class, method) = tp.program.main().unwrap();
        let prog = ProgramCode::lower(&tp);
        let slice = prog.lower_slice(&tp, &class.name, &method.body.stmts[1..2]);
        let mut vm = Vm::new(&prog, HostEnv::new());
        let mut vars = HashMap::new();
        vars.insert("a".to_string(), Value::Int(41));
        vm.exec_slice(&slice, &mut vars).unwrap();
        assert_eq!(vars["b"].as_i64(), Some(43));
        assert_eq!(vars["a"].as_i64(), Some(41));
    }
}
