//! Register bytecode for filter bodies (ROADMAP item 4).
//!
//! The tree-walking interpreter ([`crate::interp::Interp`]) spends most of a
//! filter's per-packet budget in dispatch: every variable read hashes up to
//! three `HashMap`s, every expression node re-matches its `ExprKind`, and
//! every value round-trips through `Rc<RefCell<..>>` clones. This module
//! lowers a `TypedProgram` statement slice once, at plan-build time, into a
//! compact register program that the [`vm::Vm`] then executes per packet:
//!
//! * **Slot-indexed locals** — every name the slice can touch is assigned a
//!   register at lower time. Reads and writes of live locals are array
//!   indexing, never a `HashMap` probe. Names that turn out not to be locals
//!   at run time (fields of `this`, extern globals) take a fallback path
//!   whose probe order matches the interpreter's lookup exactly
//!   (local → `this` field → global), with the category pre-resolved at
//!   lower time where it is statically known ([`SlotKind`]).
//! * **Constant pool** — literals and per-type default values are
//!   materialized once per block ([`ConstVal`]), not per evaluation.
//! * **Fused fast-path ops** — the patterns the figures actually execute:
//!   `foreach` over a rectilinear section is a two-op loop
//!   ([`Op::ForeachBegin`]/[`Op::ForeachNext`]) with the cursor in a
//!   register; reduction accumulates (`x += e`, `a[i] += e`) are single
//!   read-modify-write ops carrying their [`AssignOp`] mode; packed f64/i64
//!   array loads and stores are one bounds-checked op each
//!   ([`Op::LoadIndex`]/[`Op::StoreIndex`]); domain/array method calls
//!   (`d.lo()`, `a.length()`) dispatch through a pre-resolved [`FastMeth`]
//!   instead of a string compare.
//!
//! Semantics are bit-for-bit those of `Interp::exec_stmts_with_vars`,
//! including evaluation order, implicit int→double widening, wrapping
//! integer arithmetic, and every diagnostic (message *and* span). The
//! interpreter stays in the tree as the differential oracle — see
//! `crates/lang/tests/vm_differential.rs`.
//!
//! Everything produced by lowering is plain data (`String`s, scalars): a
//! [`ProgramCode`] is `Send + Sync` and can be shared across filter threads
//! inside an `Arc`, which `Value` (being `Rc`-based) cannot.

pub mod lower;
pub mod vm;

use crate::ast::{AssignOp, BinOp, Type};
use crate::span::Span;
use crate::value::Value;
use std::collections::HashMap;

/// Register index inside one [`CodeBlock`] frame.
pub type Reg = u16;

/// A pooled constant or per-type default value. Unlike [`Value`] this is
/// plain data (no `Rc`), so lowered programs are `Send + Sync`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    Int(i64),
    Double(f64),
    Bool(bool),
    Null,
    /// Default for `RectDomain<1>`: the empty domain.
    Domain(i64, i64),
}

impl ConstVal {
    pub fn to_value(self) -> Value {
        match self {
            ConstVal::Int(v) => Value::Int(v),
            ConstVal::Double(v) => Value::Double(v),
            ConstVal::Bool(v) => Value::Bool(v),
            ConstVal::Null => Value::Null,
            ConstVal::Domain(lo, hi) => Value::Domain(lo, hi),
        }
    }

    /// The default value for a declared type — mirrors
    /// `Interp::default_value`.
    pub fn default_for(ty: &Type) -> ConstVal {
        match ty {
            Type::Int => ConstVal::Int(0),
            Type::Double => ConstVal::Double(0.0),
            Type::Bool => ConstVal::Bool(false),
            Type::RectDomain(_) => ConstVal::Domain(0, -1),
            _ => ConstVal::Null,
        }
    }

    /// Pool-identity comparison: doubles compare by bits so `0.0` and
    /// `-0.0` (and NaN payloads) are not conflated by the dedup.
    fn same(&self, other: &ConstVal) -> bool {
        match (self, other) {
            (ConstVal::Double(a), ConstVal::Double(b)) => a.to_bits() == b.to_bits(),
            _ => self == other,
        }
    }
}

/// Where an unbound slot's name statically resolves, pre-computed at lower
/// time so the fallback path can skip probes that provably miss. The probe
/// *order* (local → `this` field → global) is fixed by the interpreter; the
/// kind only elides impossible steps: a name that is a declared field of the
/// lowering class can never be a global hit before the field, and a name
/// that is not a field can never hit `this`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Not statically classifiable — run the full fallback chain.
    Dynamic,
    /// A declared field of the lowering class.
    ThisField,
    /// Not a field of the lowering class — skip the `this` probe.
    Global,
}

/// Pre-resolved receiver method for [`Op::CallMethod`]: the domain/array
/// intrinsics are dispatched without a string compare on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastMeth {
    None,
    DomLo,
    DomHi,
    DomSize,
    ArrLen,
}

/// Builtin functions, resolved at lower time from the call name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinFn {
    Sqrt,
    Floor,
    Ceil,
    Exp,
    Log,
    Abs,
    Min,
    Max,
    Pow,
    ToInt,
    ToDouble,
    Print,
}

impl BuiltinFn {
    pub fn from_name(name: &str) -> Option<BuiltinFn> {
        Some(match name {
            "sqrt" => BuiltinFn::Sqrt,
            "floor" => BuiltinFn::Floor,
            "ceil" => BuiltinFn::Ceil,
            "exp" => BuiltinFn::Exp,
            "log" => BuiltinFn::Log,
            "abs" => BuiltinFn::Abs,
            "min" => BuiltinFn::Min,
            "max" => BuiltinFn::Max,
            "pow" => BuiltinFn::Pow,
            "toInt" => BuiltinFn::ToInt,
            "toDouble" => BuiltinFn::ToDouble,
            "print" => BuiltinFn::Print,
            _ => return None,
        })
    }
}

/// Sentinel for "not resolved at lower time" in [`Op::CallStatic`] /
/// [`Op::New`]; the VM raises the interpreter's diagnostic when executed.
pub const UNRESOLVED: u32 = u32::MAX;

/// One bytecode instruction. Registers index the frame's `regs` array;
/// `name`/`k` index the block's [`CodeBlock::names`] / [`CodeBlock::consts`]
/// pools; jump targets are op indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `regs[dst] = consts[k]`
    Const {
        dst: Reg,
        k: u16,
    },
    /// Read a named slot with the interpreter's fallback chain when the
    /// slot is not live (local → `this` field → global → error).
    ReadSlot {
        dst: Reg,
        slot: Reg,
    },
    /// Bind a named slot unconditionally (`VarDecl` with initializer).
    BindSlot {
        slot: Reg,
        src: Reg,
    },
    /// Bind a named slot to a pooled default (`VarDecl` without init).
    BindDefault {
        slot: Reg,
        k: u16,
    },
    /// Implicit int→double widening at declaration/call boundaries.
    CoerceDouble {
        reg: Reg,
    },
    /// Fused read-modify-write on a named slot (`x = e`, `x += e`,
    /// `x -= e`), with the interpreter's widening-then-combine rule and
    /// write fallback chain.
    AssignSlot {
        slot: Reg,
        src: Reg,
        mode: AssignOp,
    },
    /// `regs[dst] = this`
    LoadThis {
        dst: Reg,
    },
    /// `regs[dst] = base.field`
    LoadField {
        dst: Reg,
        base: Reg,
        name: u16,
    },
    /// Fused `base.field op= src`.
    StoreField {
        base: Reg,
        name: u16,
        src: Reg,
        mode: AssignOp,
    },
    /// Packed array load: `regs[dst] = base[idx]` (bounds-checked).
    LoadIndex {
        dst: Reg,
        base: Reg,
        idx: Reg,
    },
    /// Packed array store / reduction accumulate: `base[idx] op= src`.
    StoreIndex {
        base: Reg,
        idx: Reg,
        src: Reg,
        mode: AssignOp,
    },
    /// Raise "expected an int" unless the register holds an `Int`.
    CheckInt {
        src: Reg,
    },
    /// Raise "expected a boolean" unless the register holds a `Bool`.
    CheckBool {
        src: Reg,
    },
    /// Raise "PipelinedLoop over non-domain value" unless a `Domain`.
    CheckDomainPipe {
        src: Reg,
    },
    Neg {
        dst: Reg,
        src: Reg,
    },
    Not {
        dst: Reg,
        src: Reg,
    },
    /// Non-logical binary op (arith/comparison); `And`/`Or` lower to
    /// branches for short-circuit evaluation.
    Bin {
        op: BinOp,
        dst: Reg,
        l: Reg,
        r: Reg,
    },
    Jump {
        to: u32,
    },
    /// Branch if true; raises "expected a boolean" on non-`Bool`.
    BranchTrue {
        cond: Reg,
        to: u32,
    },
    /// Branch if false; raises "expected a boolean" on non-`Bool`.
    BranchFalse {
        cond: Reg,
        to: u32,
    },
    /// Fused `foreach` header: checks the domain, jumps to `end` when
    /// empty, otherwise seeds the cursor and loop variable.
    ForeachBegin {
        dom: Reg,
        var: Reg,
        cur: Reg,
        end: u32,
    },
    /// Fused `foreach` back-edge: advance the cursor, rebind the loop
    /// variable, jump to `body` while in range.
    ForeachNext {
        var: Reg,
        cur: Reg,
        dom: Reg,
        body: u32,
    },
    /// `PipelinedLoop` header: validates `num_packets`, clamps it to the
    /// domain size (in place, in `n`), and binds the first packet.
    PipeBegin {
        dom: Reg,
        n: Reg,
        var: Reg,
        p: Reg,
        end: u32,
    },
    /// `PipelinedLoop` back-edge: bind packet `p+1` and jump to `body`.
    PipeNext {
        dom: Reg,
        n: Reg,
        var: Reg,
        p: Reg,
        body: u32,
    },
    /// Call a method of the lowering class (`recv == None` in the AST),
    /// pre-resolved to a method id (or [`UNRESOLVED`]).
    CallStatic {
        dst: Reg,
        mi: u32,
        name: u16,
        argb: Reg,
        argc: u8,
    },
    /// Call with an explicit receiver: domain/array intrinsics via
    /// `fast`, objects via dynamic dispatch on the runtime class.
    CallMethod {
        dst: Reg,
        recv: Reg,
        name: u16,
        fast: FastMeth,
        argb: Reg,
        argc: u8,
    },
    CallBuiltin {
        dst: Reg,
        f: BuiltinFn,
        argb: Reg,
        argc: u8,
    },
    /// `new C()` with the class id pre-resolved (or [`UNRESOLVED`]).
    New {
        dst: Reg,
        ci: u32,
        name: u16,
    },
    /// `new T[len]`; `k` pools the element default.
    NewArray {
        dst: Reg,
        len: Reg,
        k: u16,
    },
    /// `[lo : hi]` domain literal from two int registers.
    NewDomain {
        dst: Reg,
        lo: Reg,
        hi: Reg,
    },
    /// Method return with a value.
    Ret {
        src: Reg,
    },
    /// Method return without a value (also `break`/`continue` escaping a
    /// method body, which the interpreter folds to `Void`).
    RetVoid,
    /// Stop a statement slice normally (`return` at any depth of a slice).
    Halt,
    /// `break`/`continue` escaped a statement slice: raise the
    /// interpreter's diagnostic at the enclosing top-level statement.
    FailEscape,
}

/// One lowered frame: a statement slice or a method body.
#[derive(Debug, Clone)]
pub struct CodeBlock {
    /// The class whose scope the code runs in (receiver-less call
    /// resolution, `this` instantiation for slices).
    pub class: String,
    pub ops: Vec<Op>,
    /// Source span per op, parallel to `ops` (diagnostic parity).
    pub spans: Vec<Span>,
    pub consts: Vec<ConstVal>,
    /// Identifier pool: field/method/class names referenced by ops.
    pub names: Vec<String>,
    /// Name id per named slot; slots `0..slot_names.len()` are named,
    /// higher registers are temporaries.
    pub slot_names: Vec<u16>,
    /// Lower-time fallback classification per named slot.
    pub slot_kinds: Vec<SlotKind>,
    /// Slots whose fallback read may be memoized in the frame: global-kind
    /// slots that are never assigned — neither in this block nor in any
    /// method body (the only code that can run *inside* this frame's
    /// lifetime). The VM caches the first global lookup in the slot so hot
    /// loops stop re-hashing extern names; write-back skips these.
    pub cacheable: Vec<bool>,
    /// Total frame size (named slots + temporaries).
    pub n_regs: u16,
}

impl CodeBlock {
    pub fn slot_count(&self) -> usize {
        self.slot_names.len()
    }

    pub fn name(&self, id: u16) -> &str {
        &self.names[id as usize]
    }
}

/// A lowered method: its frame plus the call-boundary metadata the VM
/// needs (arity check, return coercion, the declaration span the
/// interpreter uses for arity diagnostics).
#[derive(Debug, Clone)]
pub struct MethodCode {
    pub code: CodeBlock,
    pub params: u16,
    /// Return type is `double`: coerce an `Int` return value.
    pub coerce_ret: bool,
    pub decl_span: Span,
    pub class: String,
    pub name: String,
}

/// Instantiation recipe for a class: field names with pooled defaults.
#[derive(Debug, Clone)]
pub struct ClassCode {
    pub name: String,
    pub fields: Vec<(String, ConstVal)>,
}

impl ClassCode {
    pub fn instantiate(&self) -> crate::value::ObjectVal {
        let mut fields = HashMap::with_capacity(self.fields.len());
        for (name, d) in &self.fields {
            fields.insert(name.clone(), d.to_value());
        }
        crate::value::ObjectVal {
            class: self.name.clone(),
            fields,
        }
    }
}

/// Every method of every class of a program, lowered once. Slices lowered
/// via [`ProgramCode::lower_slice`] resolve their calls against this. Plain
/// data throughout: safe to share across filter threads in an `Arc`.
#[derive(Debug, Clone, Default)]
pub struct ProgramCode {
    pub methods: Vec<MethodCode>,
    pub classes: Vec<ClassCode>,
    /// class name → method name → index into `methods`.
    pub methods_by_class: HashMap<String, HashMap<String, u32>>,
    /// class name → index into `classes`.
    pub class_map: HashMap<String, u32>,
    /// Names assigned (via [`Op::AssignSlot`]) anywhere in a method body.
    /// A slot fallback-assignment can land on a global at runtime, and
    /// methods are the only code that can run during another frame's
    /// lifetime — so globals outside this set are safe to memoize.
    pub assigned_names: std::collections::HashSet<String>,
}

impl ProgramCode {
    pub fn method_id(&self, class: &str, method: &str) -> Option<u32> {
        self.methods_by_class.get(class)?.get(method).copied()
    }

    pub fn class_id(&self, class: &str) -> Option<u32> {
        self.class_map.get(class).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowered_artifacts_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProgramCode>();
        assert_send_sync::<CodeBlock>();
        assert_send_sync::<MethodCode>();
    }

    #[test]
    fn const_defaults_mirror_interpreter() {
        assert!(ConstVal::default_for(&Type::Int)
            .to_value()
            .deep_eq(&Value::Int(0)));
        assert!(ConstVal::default_for(&Type::Double)
            .to_value()
            .deep_eq(&Value::Double(0.0)));
        assert!(ConstVal::default_for(&Type::Bool)
            .to_value()
            .deep_eq(&Value::Bool(false)));
        assert!(ConstVal::default_for(&Type::RectDomain(1))
            .to_value()
            .deep_eq(&Value::Domain(0, -1)));
        assert!(ConstVal::default_for(&Type::Class("X".into()))
            .to_value()
            .deep_eq(&Value::Null));
    }

    #[test]
    fn const_pool_identity_keeps_signed_zero_distinct() {
        assert!(!ConstVal::Double(0.0).same(&ConstVal::Double(-0.0)));
        assert!(ConstVal::Double(1.5).same(&ConstVal::Double(1.5)));
        assert!(ConstVal::Int(3).same(&ConstVal::Int(3)));
        assert!(!ConstVal::Int(3).same(&ConstVal::Double(3.0)));
    }
}
