//! Recursive-descent parser for the dialect.
//!
//! Grammar sketch (see `ast.rs` for node semantics):
//!
//! ```text
//! program      := (extern | classdecl)*
//! extern       := ("extern" | "runtime_define") type IDENT ";"
//! classdecl    := "class" IDENT ("implements" "Reducinterface")? "{" member* "}"
//! member       := type IDENT ";"                      // field
//!               | type IDENT "(" params ")" block      // method
//! type         := ("int"|"double"|"boolean"|"void"|"RectDomain" "<" INT ">"|IDENT) ("[" "]")*
//! stmt         := block | if | while | for | foreach | pipelined
//!               | "return" expr? ";" | "break" ";" | "continue" ";"
//!               | vardecl ";" | simple ";"
//! foreach      := "foreach" "(" IDENT "in" expr ")" stmt
//! pipelined    := "PipelinedLoop" "(" IDENT "in" expr ";" expr ")" stmt
//! simple       := lvalue ("="|"+="|"-=") expr | expr
//! expr         := ternary; usual precedence tower below
//! primary      := literal | IDENT | "this" | "(" expr ")" | "new" ...
//!               | "[" expr ":" expr "]"
//! ```

use crate::ast::*;
use crate::error::{parse_err, Diagnostic};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a full program from source text.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parse a single expression (used by tests and the REPL-ish helpers).
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ids: NodeIdGen,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            ids: NodeIdGen::new(),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(parse_err(
                self.span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(parse_err(
                span,
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    // ---- declarations ----------------------------------------------------

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut externs = Vec::new();
        let mut classes = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwExtern | TokenKind::KwRuntimeDefine => {
                    externs.push(self.extern_decl()?)
                }
                TokenKind::KwClass => classes.push(self.class_decl()?),
                other => {
                    return Err(parse_err(
                        self.span(),
                        format!(
                            "expected `class`, `extern` or `runtime_define` at top level, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        }
        Ok(Program { externs, classes })
    }

    fn extern_decl(&mut self) -> Result<ExternDecl, Diagnostic> {
        let start = self.span();
        let runtime_define = matches!(self.peek(), TokenKind::KwRuntimeDefine);
        self.bump(); // extern / runtime_define
        let ty = self.parse_type()?;
        if runtime_define && ty != Type::Int {
            return Err(parse_err(
                start,
                "runtime_define variables must have type int",
            ));
        }
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Semi)?;
        Ok(ExternDecl {
            name,
            ty,
            runtime_define,
            span: start.merge(self.prev_span()),
        })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, Diagnostic> {
        let start = self.span();
        self.expect(TokenKind::KwClass)?;
        let (name, _) = self.expect_ident()?;
        let mut is_reduction = false;
        if self.eat(&TokenKind::KwImplements) {
            self.expect(TokenKind::KwReducinterface)?;
            is_reduction = true;
        }
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let mstart = self.span();
            let ty = self.parse_type()?;
            let (mname, _) = self.expect_ident()?;
            if self.peek() == &TokenKind::LParen {
                let params = self.params()?;
                let body = self.block()?;
                methods.push(MethodDecl {
                    name: mname,
                    ret: ty,
                    params,
                    body,
                    span: mstart.merge(self.prev_span()),
                });
            } else {
                self.expect(TokenKind::Semi)?;
                if ty == Type::Void {
                    return Err(parse_err(mstart, "fields cannot have type void"));
                }
                fields.push(FieldDecl {
                    name: mname,
                    ty,
                    span: mstart.merge(self.prev_span()),
                });
            }
        }
        Ok(ClassDecl {
            name,
            is_reduction,
            fields,
            methods,
            span: start.merge(self.prev_span()),
        })
    }

    fn params(&mut self) -> Result<Vec<Param>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.parse_type()?;
                let (name, _) = self.expect_ident()?;
                out.push(Param { name, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(out)
    }

    fn parse_type(&mut self) -> Result<Type, Diagnostic> {
        let base = match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Type::Int
            }
            TokenKind::KwDouble => {
                self.bump();
                Type::Double
            }
            TokenKind::KwBoolean => {
                self.bump();
                Type::Bool
            }
            TokenKind::KwVoid => {
                self.bump();
                Type::Void
            }
            TokenKind::KwRectDomain => {
                self.bump();
                self.expect(TokenKind::Lt)?;
                let dim = match self.peek().clone() {
                    TokenKind::IntLit(d) if (1..=3).contains(&d) => {
                        self.bump();
                        d as u8
                    }
                    other => {
                        return Err(parse_err(
                            self.span(),
                            format!(
                                "expected RectDomain dimension 1..3, found {}",
                                other.describe()
                            ),
                        ))
                    }
                };
                self.expect(TokenKind::Gt)?;
                Type::RectDomain(dim)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Type::Class(name)
            }
            other => {
                return Err(parse_err(
                    self.span(),
                    format!("expected a type, found {}", other.describe()),
                ))
            }
        };
        let mut ty = base;
        while self.peek() == &TokenKind::LBracket && self.peek_at(1) == &TokenKind::RBracket {
            self.bump();
            self.bump();
            ty = Type::array_of(ty);
        }
        Ok(ty)
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(parse_err(self.span(), "unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block::new(stmts))
    }

    /// A statement used as a loop body: we require braces for loop bodies so
    /// the boundary analysis always has a block to segment.
    fn body_block(&mut self) -> Result<Block, Diagnostic> {
        if self.peek() != &TokenKind::LBrace {
            return Err(parse_err(
                self.span(),
                "loop and conditional bodies must be blocks `{ ... }`",
            ));
        }
        self.block()
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.span();
        let id = self.ids.fresh();
        match self.peek().clone() {
            TokenKind::LBrace => {
                let b = self.block()?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::Block(b),
                ))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_blk = self.body_block()?;
                let else_blk = if self.eat(&TokenKind::KwElse) {
                    if self.peek() == &TokenKind::KwIf {
                        // else-if chain: wrap the nested if in a block
                        let nested = self.stmt()?;
                        Some(Block::new(vec![nested]))
                    } else {
                        Some(self.body_block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                ))
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.body_block()?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::While { cond, body },
                ))
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_or_decl()?))
                };
                self.expect(TokenKind::Semi)?;
                let cond = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_or_decl()?))
                };
                self.expect(TokenKind::RParen)?;
                let body = self.body_block()?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                ))
            }
            TokenKind::KwForeach => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (var, _) = self.expect_ident()?;
                self.expect(TokenKind::KwIn)?;
                let domain = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.body_block()?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::Foreach { var, domain, body },
                ))
            }
            TokenKind::KwPipelinedLoop => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (var, _) = self.expect_ident()?;
                self.expect(TokenKind::KwIn)?;
                let domain = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let num_packets = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.body_block()?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::Pipelined {
                        var,
                        domain,
                        num_packets,
                        body,
                    },
                ))
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::Return(value),
                ))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::Break,
                ))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(
                    id,
                    start.merge(self.prev_span()),
                    StmtKind::Continue,
                ))
            }
            _ => {
                let s = self.simple_or_decl()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// True if the upcoming tokens start a variable declaration.
    fn at_var_decl(&self) -> bool {
        match self.peek() {
            TokenKind::KwInt
            | TokenKind::KwDouble
            | TokenKind::KwBoolean
            | TokenKind::KwRectDomain => true,
            TokenKind::Ident(_) => {
                // `T x` or `T[] x`
                match self.peek_at(1) {
                    TokenKind::Ident(_) => true,
                    TokenKind::LBracket => self.peek_at(2) == &TokenKind::RBracket,
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Parses a declaration, assignment, or expression statement (no `;`).
    fn simple_or_decl(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.span();
        let id = self.ids.fresh();
        if self.at_var_decl() {
            let ty = self.parse_type()?;
            let (name, _) = self.expect_ident()?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::new(
                id,
                start.merge(self.prev_span()),
                StmtKind::VarDecl { name, ty, init },
            ));
        }
        let e = self.expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let target = Self::expr_to_lvalue(e)?;
            let value = self.expr()?;
            Ok(Stmt::new(
                id,
                start.merge(self.prev_span()),
                StmtKind::Assign { target, op, value },
            ))
        } else {
            Ok(Stmt::new(
                id,
                start.merge(self.prev_span()),
                StmtKind::Expr(e),
            ))
        }
    }

    fn expr_to_lvalue(e: Expr) -> Result<LValue, Diagnostic> {
        match e.kind {
            ExprKind::Var(name) => Ok(LValue::Var(name)),
            ExprKind::Field(base, field) => Ok(LValue::Field(base, field)),
            ExprKind::Index(base, idx) => Ok(LValue::Index(base, idx)),
            _ => Err(parse_err(e.span, "expression is not assignable")),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, Diagnostic> {
        let cond = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let a = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let b = self.expr()?;
            let span = cond.span.merge(b.span);
            Ok(Expr::new(
                span,
                ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_chain(
        &mut self,
        next: fn(&mut Self) -> Result<Expr, Diagnostic>,
        table: &[(TokenKind, BinOp)],
    ) -> Result<Expr, Diagnostic> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.merge(rhs.span);
                    lhs = Expr::new(span, ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_chain(Self::and_expr, &[(TokenKind::OrOr, BinOp::Or)])
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_chain(Self::equality, &[(TokenKind::AndAnd, BinOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_chain(
            Self::relational,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::NotEq, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_chain(
            Self::additive,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn additive(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_chain(
            Self::multiplicative,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_chain(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        if self.eat(&TokenKind::Minus) {
            let e = self.unary()?;
            let span = start.merge(e.span);
            Ok(Expr::new(span, ExprKind::Unary(UnOp::Neg, Box::new(e))))
        } else if self.eat(&TokenKind::Not) {
            let e = self.unary()?;
            let span = start.merge(e.span);
            Ok(Expr::new(span, ExprKind::Unary(UnOp::Not, Box::new(e))))
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let (name, nspan) = self.expect_ident()?;
                if self.peek() == &TokenKind::LParen {
                    let args = self.args()?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        span,
                        ExprKind::Call {
                            recv: Some(Box::new(e)),
                            method: name,
                            args,
                        },
                    );
                } else {
                    let span = e.span.merge(nspan);
                    e = Expr::new(span, ExprKind::Field(Box::new(e), name));
                }
            } else if self.peek() == &TokenKind::LBracket {
                self.bump();
                let idx = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                let span = e.span.merge(self.prev_span());
                e = Expr::new(span, ExprKind::Index(Box::new(e), Box::new(idx)));
            } else {
                return Ok(e);
            }
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                out.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(out)
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(start, ExprKind::IntLit(v)))
            }
            TokenKind::DoubleLit(v) => {
                self.bump();
                Ok(Expr::new(start, ExprKind::DoubleLit(v)))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::new(start, ExprKind::BoolLit(true)))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::new(start, ExprKind::BoolLit(false)))
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr::new(start, ExprKind::Null))
            }
            TokenKind::KwThis => {
                self.bump();
                Ok(Expr::new(start, ExprKind::This))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    let args = self.args()?;
                    Ok(Expr::new(
                        start.merge(self.prev_span()),
                        ExprKind::Call {
                            recv: None,
                            method: name,
                            args,
                        },
                    ))
                } else {
                    Ok(Expr::new(start, ExprKind::Var(name)))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::KwNew => {
                self.bump();
                // `new T[len]` or `new C()`
                let elem = match self.peek().clone() {
                    TokenKind::KwInt => {
                        self.bump();
                        Some(Type::Int)
                    }
                    TokenKind::KwDouble => {
                        self.bump();
                        Some(Type::Double)
                    }
                    TokenKind::KwBoolean => {
                        self.bump();
                        Some(Type::Bool)
                    }
                    TokenKind::Ident(cname) => {
                        self.bump();
                        if self.peek() == &TokenKind::LParen {
                            self.bump();
                            self.expect(TokenKind::RParen)?;
                            return Ok(Expr::new(
                                start.merge(self.prev_span()),
                                ExprKind::New(cname),
                            ));
                        }
                        Some(Type::Class(cname))
                    }
                    other => {
                        return Err(parse_err(
                            self.span(),
                            format!("expected type after `new`, found {}", other.describe()),
                        ))
                    }
                };
                let mut elem_ty = elem.expect("all non-return paths set elem");
                self.expect(TokenKind::LBracket)?;
                let len = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                // `new double[n][]`-style nested arrays: extra `[]` pairs
                while self.peek() == &TokenKind::LBracket && self.peek_at(1) == &TokenKind::RBracket
                {
                    self.bump();
                    self.bump();
                    elem_ty = Type::array_of(elem_ty);
                }
                Ok(Expr::new(
                    start.merge(self.prev_span()),
                    ExprKind::NewArray(elem_ty, Box::new(len)),
                ))
            }
            TokenKind::LBracket => {
                // domain literal [lo : hi]
                self.bump();
                let lo = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let hi = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::new(
                    start.merge(self.prev_span()),
                    ExprKind::DomainLit(Box::new(lo), Box::new(hi)),
                ))
            }
            other => Err(parse_err(
                start,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_empty_class() {
        let p = parse("class A { }").unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].name, "A");
        assert!(!p.classes[0].is_reduction);
    }

    #[test]
    fn parses_reduction_class() {
        let p = parse("class ZBuf implements Reducinterface { double[] depth; }").unwrap();
        assert!(p.classes[0].is_reduction);
        assert_eq!(p.classes[0].fields[0].ty, Type::array_of(Type::Double));
    }

    #[test]
    fn parses_externs() {
        let p = parse("extern int n; runtime_define int num_packets; class A {}").unwrap();
        assert_eq!(p.externs.len(), 2);
        assert!(!p.externs[0].runtime_define);
        assert!(p.externs[1].runtime_define);
    }

    #[test]
    fn runtime_define_must_be_int() {
        assert!(parse("runtime_define double x;").is_err());
    }

    #[test]
    fn parses_method_with_statements() {
        let src = r#"
            class A {
                int f(int x, double y) {
                    int z = x + 2;
                    z += 1;
                    if (z > 3) { z = 0; } else { z = 1; }
                    return z;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let m = &p.classes[0].methods[0];
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.body.stmts.len(), 4);
    }

    #[test]
    fn parses_foreach_and_pipelined() {
        let src = r#"
            class A {
                void main() {
                    RectDomain<1> d = [0 : 99];
                    PipelinedLoop (pkt in d; num_packets) {
                        foreach (i in pkt) {
                            process(i);
                        }
                    }
                }
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(body.stmts[1].kind, StmtKind::Pipelined { .. }));
        if let StmtKind::Pipelined { body, .. } = &body.stmts[1].kind {
            assert!(matches!(body.stmts[0].kind, StmtKind::Foreach { .. }));
        }
    }

    #[test]
    fn statement_ids_are_unique() {
        let src = r#"
            class A {
                void f() { int a = 1; int b = 2; if (a < b) { a = b; } }
                void g() { int c = 3; }
            }
        "#;
        let p = parse(src).unwrap();
        let mut ids = Vec::new();
        p.visit_stmts(&mut |s| ids.push(s.id));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 4);
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_and() {
        let e = parse_expr("a < b && c > d").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn parses_field_access_and_calls() {
        let e = parse_expr("t.x").unwrap();
        assert!(matches!(e.kind, ExprKind::Field(_, _)));
        let e = parse_expr("zbuf.accumulate(p, d)").unwrap();
        if let ExprKind::Call { recv, method, args } = e.kind {
            assert!(recv.is_some());
            assert_eq!(method, "accumulate");
            assert_eq!(args.len(), 2);
        } else {
            panic!("expected call");
        }
        let e = parse_expr("sqrt(x)").unwrap();
        assert!(matches!(e.kind, ExprKind::Call { recv: None, .. }));
    }

    #[test]
    fn parses_index_chain() {
        let e = parse_expr("a[i][j]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn parses_new_forms() {
        assert!(matches!(
            parse_expr("new Point()").unwrap().kind,
            ExprKind::New(_)
        ));
        if let ExprKind::NewArray(ty, _) = parse_expr("new double[10]").unwrap().kind {
            assert_eq!(ty, Type::Double);
        } else {
            panic!("expected NewArray");
        }
    }

    #[test]
    fn parses_domain_literal() {
        let e = parse_expr("[0 : n - 1]").unwrap();
        assert!(matches!(e.kind, ExprKind::DomainLit(_, _)));
    }

    #[test]
    fn parses_ternary() {
        let e = parse_expr("a < b ? a : b").unwrap();
        assert!(matches!(e.kind, ExprKind::Ternary(_, _, _)));
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        assert!(parse("class A { void f() { 1 + 2 = 3; } }").is_err());
    }

    #[test]
    fn rejects_unbraced_loop_body() {
        assert!(parse("class A { void f() { while (true) x = 1; } }").is_err());
    }

    #[test]
    fn parses_else_if_chain() {
        let src = r#"
            class A { void f(int x) {
                if (x < 1) { x = 0; } else if (x < 2) { x = 1; } else { x = 2; }
            } }
        "#;
        let p = parse(src).unwrap();
        if let StmtKind::If { else_blk, .. } = &p.classes[0].methods[0].body.stmts[0].kind {
            let inner = else_blk.as_ref().unwrap();
            assert!(matches!(inner.stmts[0].kind, StmtKind::If { .. }));
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn parses_for_loop() {
        let src = "class A { void f() { for (int i = 0; i < 10; i += 1) { g(i); } } }";
        let p = parse(src).unwrap();
        assert!(matches!(
            p.classes[0].methods[0].body.stmts[0].kind,
            StmtKind::For { .. }
        ));
    }

    #[test]
    fn error_reports_location() {
        let err = parse("class A { void f() {\n      @ } }").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn class_typed_var_decl_vs_index_expr() {
        // `T x = ...` is a decl; `t[0] = ...` is an assignment.
        let src = r#"
            class T { int v; }
            class A { void f(T[] t) {
                T x = t[0];
                t[0] = x;
            } }
        "#;
        let p = parse(src).unwrap();
        let b = &p.classes[1].methods[0].body;
        assert!(matches!(b.stmts[0].kind, StmtKind::VarDecl { .. }));
        assert!(matches!(b.stmts[1].kind, StmtKind::Assign { .. }));
    }
}
