//! Abstract syntax tree for the dialect.
//!
//! The surface language is a small Java-like dialect in the style the paper
//! describes (Section 3): classes with fields and methods, a
//! `Reducinterface` marker for reduction classes, 1-D `RectDomain`s,
//! order-independent `foreach` loops, and the `PipelinedLoop` construct that
//! iterates over packets of a domain.
//!
//! Every statement carries a unique [`NodeId`] assigned at parse time;
//! compiler passes (boundary identification, loop fission, Gen/Cons) refer
//! to statements by id.

use crate::span::Span;
use std::fmt;

/// Unique id of a statement node, assigned by the parser (or by passes that
/// synthesize statements, via [`NodeIdGen`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Monotonic generator for fresh [`NodeId`]s.
#[derive(Debug, Default, Clone)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start above an existing program's maximum id (used by rewriting
    /// passes such as loop fission so fresh ids never collide).
    pub fn above(program: &Program) -> Self {
        let mut max = 0;
        program.visit_stmts(&mut |s| max = max.max(s.id.0));
        NodeIdGen { next: max + 1 }
    }

    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }
}

/// Static types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Int,
    Double,
    Bool,
    Void,
    /// A user class by name.
    Class(String),
    /// A 1-D array of elements.
    Array(Box<Type>),
    /// A rectilinear domain; the paper (and our apps) use dimension 1.
    RectDomain(u8),
}

impl Type {
    pub fn array_of(elem: Type) -> Type {
        Type::Array(Box::new(elem))
    }

    /// Is this a primitive scalar type (int/double/bool)?
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Double | Type::Bool)
    }

    /// Byte size used by the packing layer for scalar element types.
    pub fn scalar_size(&self) -> Option<usize> {
        match self {
            Type::Int => Some(8),
            Type::Double => Some(8),
            Type::Bool => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Double => write!(f, "double"),
            Type::Bool => write!(f, "boolean"),
            Type::Void => write!(f, "void"),
            Type::Class(name) => write!(f, "{name}"),
            Type::Array(elem) => write!(f, "{elem}[]"),
            Type::RectDomain(d) => write!(f, "RectDomain<{d}>"),
        }
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub externs: Vec<ExternDecl>,
    pub classes: Vec<ClassDecl>,
}

impl Program {
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Find a method `class::method`.
    pub fn method(&self, class: &str, method: &str) -> Option<&MethodDecl> {
        self.class(class)?.methods.iter().find(|m| m.name == method)
    }

    /// The designated entry point: the unique method named `main` among all
    /// classes (the paper's examples hold the pipelined loop there).
    pub fn main(&self) -> Option<(&ClassDecl, &MethodDecl)> {
        self.classes
            .iter()
            .find_map(|c| c.methods.iter().find(|m| m.name == "main").map(|m| (c, m)))
    }

    /// Visit every statement in the program, depth-first.
    pub fn visit_stmts(&self, f: &mut impl FnMut(&Stmt)) {
        for c in &self.classes {
            for m in &c.methods {
                m.body.visit(f);
            }
        }
    }
}

/// `extern T name;` — a value supplied by the host environment, or
/// `runtime_define int name;` — a tunable chosen at run time (the paper's
/// `runtime_define num_packets`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    pub name: String,
    pub ty: Type,
    pub runtime_define: bool,
    pub span: Span,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    pub name: String,
    /// True if the class declares `implements Reducinterface`: its instances
    /// are reduction variables and may only be updated inside `foreach` by
    /// associative+commutative operations.
    pub is_reduction: bool,
    pub fields: Vec<FieldDecl>,
    pub methods: Vec<MethodDecl>,
    pub span: Span,
}

impl ClassDecl {
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A field of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A method of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    pub name: String,
    pub ret: Type,
    pub params: Vec<Param>,
    pub body: Block,
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: Type,
}

/// A `{ ... }` statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    /// Visit this block's statements and all nested statements, depth-first.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.stmts {
            s.visit(f);
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
}

/// A statement with its id and span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub id: NodeId,
    pub span: Span,
    pub kind: StmtKind,
}

impl Stmt {
    pub fn new(id: NodeId, span: Span, kind: StmtKind) -> Self {
        Stmt { id, span, kind }
    }

    /// Visit this statement and all nested statements, depth-first.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                then_blk.visit(f);
                if let Some(e) = else_blk {
                    e.visit(f);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::Foreach { body, .. }
            | StmtKind::Pipelined { body, .. } => body.visit(f),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    i.visit(f);
                }
                if let Some(s) = step {
                    s.visit(f);
                }
                body.visit(f);
            }
            StmtKind::Block(b) => b.visit(f),
            _ => {}
        }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `T name = init;`
    VarDecl {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// `lhs op rhs;`
    Assign {
        target: LValue,
        op: AssignOp,
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    /// `while (cond) { .. }` — must be wholly inside one filter.
    While {
        cond: Expr,
        body: Block,
    },
    /// `for (init; cond; step) { .. }` — must be wholly inside one filter.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
    },
    /// `foreach (var in domain) { .. }` — iteration order does not affect
    /// the result; updates to reduction variables allowed.
    Foreach {
        var: String,
        domain: Expr,
        body: Block,
    },
    /// `PipelinedLoop (var in domain; num_packets) { .. }` — the domain is
    /// split into `num_packets` packets, each processed independently apart
    /// from reduction-variable updates. `var` is bound to the sub-domain
    /// (packet) on each iteration.
    Pipelined {
        var: String,
        domain: Expr,
        num_packets: Expr,
        body: Block,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// A call (or other expression) in statement position.
    Expr(Expr),
    /// Nested `{ .. }`.
    Block(Block),
    Break,
    Continue,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `x`
    Var(String),
    /// `base.field`
    Field(Box<Expr>, String),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// Is this an arithmetic operator (yields the operand numeric type)?
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// Is this a comparison operator (yields bool from numerics)?
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Is this a logical operator (bool × bool → bool)?
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub span: Span,
    pub kind: ExprKind,
}

impl Expr {
    pub fn new(span: Span, kind: ExprKind) -> Self {
        Expr { span, kind }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    DoubleLit(f64),
    BoolLit(bool),
    Null,
    /// A variable, parameter, extern, or field of the enclosing class.
    Var(String),
    This,
    /// `base.field`
    Field(Box<Expr>, String),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Method or builtin call. `recv == None` means a call to a method of
    /// the enclosing class or a builtin (`sqrt`, `min`, ...).
    Call {
        recv: Option<Box<Expr>>,
        method: String,
        args: Vec<Expr>,
    },
    /// `new C()`
    New(String),
    /// `new T[len]`
    NewArray(Type, Box<Expr>),
    /// `[lo : hi]` — a 1-D rectdomain literal (inclusive bounds, as in
    /// Titanium).
    DomainLit(Box<Expr>, Box<Expr>),
}

/// Names of builtin free functions understood by the type checker,
/// interpreter and cost model.
pub const BUILTINS: &[&str] = &[
    "sqrt", "abs", "min", "max", "floor", "ceil", "pow", "exp", "log", "toInt", "toDouble", "print",
];

/// True if `name` is a builtin free function.
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}

/// Builtin methods on `RectDomain` values: `d.lo()`, `d.hi()`, `d.size()`.
pub const DOMAIN_METHODS: &[&str] = &["lo", "hi", "size"];

/// Builtin method on arrays: `a.length()`.
pub const ARRAY_METHODS: &[&str] = &["length"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_gen_is_monotonic() {
        let mut g = NodeIdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(b > a);
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::array_of(Type::Double).to_string(), "double[]");
        assert_eq!(Type::RectDomain(1).to_string(), "RectDomain<1>");
        assert_eq!(Type::Class("ZBuffer".into()).to_string(), "ZBuffer");
    }

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::Int.scalar_size(), Some(8));
        assert_eq!(Type::Double.scalar_size(), Some(8));
        assert_eq!(Type::Bool.scalar_size(), Some(1));
        assert_eq!(Type::array_of(Type::Int).scalar_size(), None);
    }

    #[test]
    fn binop_classification_is_partition() {
        use BinOp::*;
        for op in [Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne, And, Or] {
            let n = [op.is_arith(), op.is_cmp(), op.is_logic()]
                .iter()
                .filter(|b| **b)
                .count();
            assert_eq!(n, 1, "{op} must be in exactly one class");
        }
    }

    #[test]
    fn builtins_contains_core_math() {
        assert!(is_builtin("sqrt"));
        assert!(is_builtin("min"));
        assert!(!is_builtin("frobnicate"));
    }
}
