//! Whole-program pretty-printer round trip: `parse → pretty → parse`
//! must reproduce the program *structurally* (modulo spans and node
//! ids), and printing must be a fixpoint. Programs come from the seeded
//! generator in `common/`, so this covers every statement and expression
//! form the generator can emit, nested arbitrarily.

mod common;

use cgp_lang::ast::Expr;
use cgp_lang::ast::{Block, ExprKind, LValue, NodeId, Program, Stmt, StmtKind};
use cgp_lang::parser::parse;
use cgp_lang::pretty::program_to_string;
use cgp_lang::span::Span;
use common::ProgramGen;

/// Erase spans and node ids so derived `PartialEq` compares structure.
fn scrub(p: &Program) -> Program {
    let mut p = p.clone();
    for e in &mut p.externs {
        e.span = Span::synthetic();
    }
    for c in &mut p.classes {
        c.span = Span::synthetic();
        for f in &mut c.fields {
            f.span = Span::synthetic();
        }
        for m in &mut c.methods {
            m.span = Span::synthetic();
            scrub_block(&mut m.body);
        }
    }
    p
}

fn scrub_block(b: &mut Block) {
    for s in &mut b.stmts {
        scrub_stmt(s);
    }
}

fn scrub_stmt(s: &mut Stmt) {
    s.id = NodeId(0);
    s.span = Span::synthetic();
    match &mut s.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                scrub_expr(e);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                LValue::Var(_) => {}
                LValue::Field(b, _) => scrub_expr(b),
                LValue::Index(b, i) => {
                    scrub_expr(b);
                    scrub_expr(i);
                }
            }
            scrub_expr(value);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            scrub_expr(cond);
            scrub_block(then_blk);
            if let Some(e) = else_blk {
                scrub_block(e);
            }
        }
        StmtKind::While { cond, body } => {
            scrub_expr(cond);
            scrub_block(body);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                scrub_stmt(i);
            }
            if let Some(c) = cond {
                scrub_expr(c);
            }
            if let Some(st) = step {
                scrub_stmt(st);
            }
            scrub_block(body);
        }
        StmtKind::Foreach { domain, body, .. } => {
            scrub_expr(domain);
            scrub_block(body);
        }
        StmtKind::Pipelined {
            domain,
            num_packets,
            body,
            ..
        } => {
            scrub_expr(domain);
            scrub_expr(num_packets);
            scrub_block(body);
        }
        StmtKind::Return(v) => {
            if let Some(e) = v {
                scrub_expr(e);
            }
        }
        StmtKind::Expr(e) => scrub_expr(e),
        StmtKind::Block(b) => scrub_block(b),
        StmtKind::Break | StmtKind::Continue => {}
    }
}

fn scrub_expr(e: &mut Expr) {
    e.span = Span::synthetic();
    match &mut e.kind {
        ExprKind::Field(b, _) => scrub_expr(b),
        ExprKind::Index(b, i) => {
            scrub_expr(b);
            scrub_expr(i);
        }
        ExprKind::Unary(_, x) => scrub_expr(x),
        ExprKind::Binary(_, l, r) => {
            scrub_expr(l);
            scrub_expr(r);
        }
        ExprKind::Ternary(c, a, b) => {
            scrub_expr(c);
            scrub_expr(a);
            scrub_expr(b);
        }
        ExprKind::Call { recv, args, .. } => {
            if let Some(r) = recv {
                scrub_expr(r);
            }
            for a in args {
                scrub_expr(a);
            }
        }
        ExprKind::NewArray(_, len) => scrub_expr(len),
        ExprKind::DomainLit(lo, hi) => {
            scrub_expr(lo);
            scrub_expr(hi);
        }
        _ => {}
    }
}

fn assert_roundtrip(src: &str, ctx: &str) {
    let p1 = parse(src).unwrap_or_else(|e| panic!("{ctx}: parse failed: {e:?}\n{src}"));
    let printed = program_to_string(&p1);
    let p2 = parse(&printed)
        .unwrap_or_else(|e| panic!("{ctx}: reparse of pretty output failed: {e:?}\n{printed}"));
    assert_eq!(
        scrub(&p1),
        scrub(&p2),
        "{ctx}: structure changed across the round trip\n--- original\n{src}\n--- printed\n{printed}"
    );
    assert_eq!(
        printed,
        program_to_string(&p2),
        "{ctx}: pretty-printing is not a fixpoint"
    );
}

#[test]
fn random_programs_roundtrip() {
    for seed in 0..150u64 {
        let mut g = ProgramGen::new(0x9E77_0000 + seed);
        let src = g.program(12);
        assert_roundtrip(&src, &format!("seed {seed}"));
    }
}

#[test]
fn random_pipelined_programs_roundtrip() {
    for seed in 0..50u64 {
        let mut g = ProgramGen::new(0x9E77_8000 + seed);
        let src = g.pipelined_program(8);
        assert_roundtrip(&src, &format!("seed {seed}"));
    }
}

#[test]
fn hand_written_corners_roundtrip() {
    // Forms the generator cannot emit: arrays, fields, `this`, ternary
    // assignment targets, `new`, empty for-clauses, nested blocks, null
    // comparisons, return-with-value.
    let src = r#"
        extern int n;
        extern double[] data;
        runtime_define int num_packets;
        class P implements Reducinterface {
            double x;
            int hits;
            void reduce(P o) { x = x + o.x; hits = hits + o.hits; }
            void touch(double v) {
                this.x += v;
                hits = hits + 1;
            }
            double get() { return x; }
        }
        class A {
            void main() {
                P p = new P();
                double[] copy = new double[n];
                for (int i = 0; i < n; i += 1) { copy[i] = data[i]; }
                for (;;) { break; }
                RectDomain<1> all = [0 : n - 1];
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) {
                        if (p == null) { continue; }
                        p.touch(copy[i] > 0.5 ? copy[i] : -copy[i]);
                    }
                }
                { print(p.get()); }
            }
        }
    "#;
    assert_roundtrip(src, "hand-written corners");
}
