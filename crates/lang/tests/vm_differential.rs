//! Differential property suite: the register VM against the tree-walking
//! interpreter on randomly generated typed programs.
//!
//! Every case demands *observational identity* — same print output, same
//! variable map (deep equality), same globals, and on failure the same
//! diagnostic with the same span. Programs come from the seeded generator
//! in `common/`, so failures reproduce from the printed seed.

mod common;

use cgp_lang::bytecode::{vm::Vm, ProgramCode};
use cgp_lang::interp::{HostEnv, Interp};
use cgp_lang::{frontend, Value};
use common::ProgramGen;
use std::collections::HashMap;

/// Run `main`'s body as a statement slice through both engines and
/// assert they are observationally identical, Ok or Err.
fn assert_engines_agree(src: &str, host: HostEnv, ctx: &str) {
    let tp = match frontend(src) {
        Ok(tp) => tp,
        Err(e) => panic!("{ctx}: generated program failed frontend: {e:?}\n{src}"),
    };
    let (class, method) = tp.program.main().expect("main");
    let (cname, stmts) = (class.name.clone(), method.body.stmts.clone());

    let mut it = Interp::new(&tp, host.clone());
    let mut ivars = HashMap::new();
    let ires = it.exec_stmts_with_vars(&cname, &stmts, &mut ivars);

    let prog = ProgramCode::lower(&tp);
    let slice = prog.lower_slice(&tp, &cname, &stmts);
    let mut vm = Vm::new(&prog, host);
    let mut vvars = HashMap::new();
    let vres = vm.exec_slice(&slice, &mut vvars);

    match (&ires, &vres) {
        (Ok(()), Ok(())) => {}
        (Err(ie), Err(ve)) => {
            assert_eq!(ie, ve, "{ctx}: diagnostics diverged\n{src}");
        }
        _ => panic!(
            "{ctx}: one engine failed, the other succeeded \
             (interp: {ires:?}, vm: {vres:?})\n{src}"
        ),
    }
    assert_eq!(it.output, vm.output, "{ctx}: output diverged\n{src}");
    assert_eq!(
        ivars.len(),
        vvars.len(),
        "{ctx}: vars keys diverged: {:?} vs {:?}\n{src}",
        ivars.keys().collect::<Vec<_>>(),
        vvars.keys().collect::<Vec<_>>()
    );
    for (k, v) in &ivars {
        let w = vvars
            .get(k)
            .unwrap_or_else(|| panic!("{ctx}: vm missing var {k}\n{src}"));
        assert!(v.deep_eq(w), "{ctx}: var {k}: {v} vs {w}\n{src}");
    }
    assert_eq!(
        it.globals.len(),
        vm.globals.len(),
        "{ctx}: globals diverged"
    );
    for (k, v) in &it.globals {
        assert!(
            v.deep_eq(&vm.globals[k]),
            "{ctx}: global {k} diverged\n{src}"
        );
    }
}

#[test]
fn random_programs_agree() {
    let mut errored = 0;
    for seed in 0..120u64 {
        let mut g = ProgramGen::new(0xD1FF_0000 + seed);
        let src = g.program(10);
        let host = HostEnv::new().bind("n", Value::Int((seed as i64 % 13) - 2));
        // Count error-path coverage so a generator drift that stops
        // producing runtime failures gets noticed.
        if frontend(&src)
            .ok()
            .map(|tp| {
                let (c, m) = tp.program.main().unwrap();
                let (cn, st) = (c.name.clone(), m.body.stmts.clone());
                let mut it = Interp::new(&tp, HostEnv::new().bind("n", Value::Int(1)));
                it.exec_stmts_with_vars(&cn, &st, &mut HashMap::new())
                    .is_err()
            })
            .unwrap_or(false)
        {
            errored += 1;
        }
        assert_engines_agree(&src, host, &format!("seed {seed}"));
    }
    assert!(
        errored >= 3,
        "generator stopped producing runtime-error cases ({errored}/120) — \
         the diagnostic differential is no longer exercised"
    );
}

#[test]
fn random_pipelined_programs_agree_across_packet_splits() {
    for seed in 0..40u64 {
        let mut g = ProgramGen::new(0xD1FF_8000 + seed);
        let src = g.pipelined_program(6);
        // Random domain size and random packet count: the lowered
        // PipeBegin/PipeNext pair must reproduce split_domain exactly.
        let n = g.rng.gen_range(0, 100) as i64;
        let np = g.rng.gen_range(1, 40) as i64;
        let host = HostEnv::new()
            .bind("n", Value::Int(n))
            .bind("num_packets", Value::Int(np));
        assert_engines_agree(&src, host, &format!("seed {seed} n={n} np={np}"));
    }
}

#[test]
fn packet_count_never_changes_vm_output() {
    // Random reduction programs that run cleanly must give the same
    // VM answer under every packetization, matching the interpreter at
    // each. Erroring programs are skipped (the diagnostic differential
    // is covered above); demand at least one clean program.
    let mut clean = 0;
    for seed in 0..20u64 {
        let mut g = ProgramGen::new(0xD1FF_4000 + seed);
        let src = g.pipelined_program(5);
        let run_vm = |np: i64| -> Result<Vec<String>, ()> {
            let tp = frontend(&src).expect("frontend");
            let (class, method) = tp.program.main().expect("main");
            let (cname, stmts) = (class.name.clone(), method.body.stmts.clone());
            let host = HostEnv::new()
                .bind("n", Value::Int(57))
                .bind("num_packets", Value::Int(np));
            assert_engines_agree(&src, host.clone(), &format!("seed {seed} np={np}"));
            let prog = ProgramCode::lower(&tp);
            let slice = prog.lower_slice(&tp, &cname, &stmts);
            let mut vm = Vm::new(&prog, host);
            vm.exec_slice(&slice, &mut HashMap::new()).map_err(|_| ())?;
            Ok(vm.output)
        };
        let Ok(reference) = run_vm(1) else { continue };
        clean += 1;
        for np in [2i64, 3, 7, 16, 97] {
            assert_eq!(
                run_vm(np).expect("np changes whether the program errors"),
                reference,
                "seed {seed}: np={np} changed the result"
            );
        }
    }
    assert!(
        clean >= 1,
        "no cleanly-running pipelined program in 20 seeds"
    );
}
