//! Property-based tests for the frontend: the lexer never panics, the
//! pretty-printer/parser pair is a round trip, the interpreter's
//! PipelinedLoop semantics are packet-count independent, and domain
//! splitting is a partition.

use cgp_lang::ast::{BinOp, Expr, ExprKind, UnOp};
use cgp_lang::interp::{split_domain, HostEnv, Interp};
use cgp_lang::parser::{parse, parse_expr};
use cgp_lang::pretty::expr_to_string;
use cgp_lang::span::Span;
use cgp_lang::types::check;
use cgp_lang::Value;
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_never_panics(s in "\\PC*") {
        let _ = cgp_lang::lexer::lex(&s);
    }

    #[test]
    fn lexer_accepts_ascii_noise(s in "[a-zA-Z0-9_+\\-*/%<>=!&|(){}\\[\\];,.: \n\t]*") {
        let _ = cgp_lang::lexer::lex(&s);
    }

    #[test]
    fn split_domain_is_a_partition(lo in -1000i64..1000, len in 0i64..2000, n in 1usize..50) {
        let hi = lo + len - 1;
        let parts = split_domain(lo, hi, n);
        let total: i64 = parts.iter().map(|(a, b)| b - a + 1).sum();
        prop_assert_eq!(total, len.max(0));
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].1 + 1, w[1].0, "contiguous");
        }
        if let (Some(first), Some(last)) = (parts.first(), parts.last()) {
            prop_assert_eq!(first.0, lo);
            prop_assert_eq!(last.1, hi);
        }
        if let Some((min, max)) = parts
            .iter()
            .map(|(a, b)| b - a + 1)
            .fold(None, |acc: Option<(i64, i64)>, l| Some(match acc {
                None => (l, l),
                Some((mn, mx)) => (mn.min(l), mx.max(l)),
            }))
        {
            prop_assert!(max - min <= 1, "balanced");
        }
    }
}

/// Generator for well-formed expressions over variables `a`, `b`, `c`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| Expr::new(Span::synthetic(), ExprKind::IntLit(v))),
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|n| Expr::new(Span::synthetic(), ExprKind::Var(n.into()))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),
                Just(BinOp::Div), Just(BinOp::Rem),
            ])
                .prop_map(|(l, r, op)| Expr::new(
                    Span::synthetic(),
                    ExprKind::Binary(op, Box::new(l), Box::new(r))
                )),
            inner
                .clone()
                .prop_map(|e| Expr::new(Span::synthetic(), ExprKind::Unary(UnOp::Neg, Box::new(e)))),
        ]
    })
}

/// Structural equality modulo spans.
fn expr_eq(a: &Expr, b: &Expr) -> bool {
    expr_to_string(a) == expr_to_string(b)
}

proptest! {
    #[test]
    fn pretty_print_parse_roundtrip(e in arb_expr()) {
        let printed = expr_to_string(&e);
        let back = parse_expr(&printed).unwrap();
        prop_assert!(expr_eq(&e, &back), "{} vs {}", printed, expr_to_string(&back));
    }

    #[test]
    fn pipelined_loop_is_packet_count_invariant(
        n in 1i64..300,
        packets in 1i64..64,
        scale in 1i64..100,
    ) {
        let src = r#"
            extern int n;
            extern int scale;
            runtime_define int num_packets;
            class Acc implements Reducinterface {
                int total;
                void reduce(Acc o) { total = total + o.total; }
                void add(int x) { total = total + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) { acc.add(i * scale); }
                }
                print(acc.total);
            } }
        "#;
        let tp = check(parse(src).unwrap()).unwrap();
        let run = |np: i64| {
            let host = HostEnv::new()
                .bind("n", Value::Int(n))
                .bind("scale", Value::Int(scale))
                .bind("num_packets", Value::Int(np));
            let mut it = Interp::new(&tp, host);
            it.run_main().unwrap();
            it.output
        };
        prop_assert_eq!(run(1), run(packets));
    }

    #[test]
    fn interp_arithmetic_matches_rust(a in -10_000i64..10_000, b in 1i64..10_000) {
        let src = format!(
            "class A {{ void main() {{ print({a} + {b}); print({a} * {b}); print({a} / {b}); print({a} % {b}); }} }}"
        );
        let tp = check(parse(&src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, HostEnv::new());
        it.run_main().unwrap();
        prop_assert_eq!(&it.output[0], &(a + b).to_string());
        prop_assert_eq!(&it.output[1], &(a * b).to_string());
        prop_assert_eq!(&it.output[2], &(a / b).to_string());
        prop_assert_eq!(&it.output[3], &(a % b).to_string());
    }
}
