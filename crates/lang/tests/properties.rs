//! Property-style tests for the frontend: the lexer never panics, the
//! pretty-printer/parser pair is a round trip, the interpreter's
//! PipelinedLoop semantics are packet-count independent, and domain
//! splitting is a partition. Cases come from a seeded PRNG (the build
//! is offline, so no proptest); failures reproduce deterministically.

use cgp_lang::ast::{BinOp, Expr, ExprKind, UnOp};
use cgp_lang::interp::{split_domain, HostEnv, Interp};
use cgp_lang::parser::{parse, parse_expr};
use cgp_lang::pretty::expr_to_string;
use cgp_lang::span::Span;
use cgp_lang::types::check;
use cgp_lang::Value;
use cgp_obs::SmallRng;

#[test]
fn lexer_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0001);
    // Random unicode-ish noise, biased toward ASCII.
    for _case in 0..200 {
        let len = rng.gen_range(0, 200);
        let s: String = (0..len)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    (rng.gen_range(0x20, 0x7f) as u8) as char
                } else {
                    char::from_u32(rng.gen_range_u64(0x11_0000) as u32).unwrap_or('\u{fffd}')
                }
            })
            .collect();
        let _ = cgp_lang::lexer::lex(&s);
    }
}

#[test]
fn lexer_accepts_ascii_noise() {
    const ALPHABET: &[u8] = b"abcXYZ019_+-*/%<>=!&|(){}[];,.: \n\t";
    let mut rng = SmallRng::seed_from_u64(0x1A06_0002);
    for _case in 0..200 {
        let len = rng.gen_range(0, 300);
        let s: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0, ALPHABET.len())] as char)
            .collect();
        let _ = cgp_lang::lexer::lex(&s);
    }
}

#[test]
fn split_domain_is_a_partition() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0003);
    for _case in 0..200 {
        let lo = rng.gen_range(0, 2000) as i64 - 1000;
        let len = rng.gen_range(0, 2000) as i64;
        let n = rng.gen_range(1, 50);
        let ctx = format!("lo={lo} len={len} n={n}");

        let hi = lo + len - 1;
        let parts = split_domain(lo, hi, n);
        let total: i64 = parts.iter().map(|(a, b)| b - a + 1).sum();
        assert_eq!(total, len.max(0), "{ctx}");
        for w in parts.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "contiguous: {ctx}");
        }
        if let (Some(first), Some(last)) = (parts.first(), parts.last()) {
            assert_eq!(first.0, lo, "{ctx}");
            assert_eq!(last.1, hi, "{ctx}");
        }
        if let Some((min, max)) =
            parts
                .iter()
                .map(|(a, b)| b - a + 1)
                .fold(None, |acc: Option<(i64, i64)>, l| {
                    Some(match acc {
                        None => (l, l),
                        Some((mn, mx)) => (mn.min(l), mx.max(l)),
                    })
                })
        {
            assert!(max - min <= 1, "balanced: {ctx}");
        }
    }
}

/// Random well-formed expression over variables `a`, `b`, `c`.
fn random_expr(rng: &mut SmallRng, depth: usize) -> Expr {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        if rng.gen_bool(0.5) {
            Expr::new(
                Span::synthetic(),
                ExprKind::IntLit(rng.gen_range_u64(1000) as i64),
            )
        } else {
            let name = ["a", "b", "c"][rng.gen_range(0, 3)];
            Expr::new(Span::synthetic(), ExprKind::Var(name.into()))
        }
    } else if rng.gen_bool(0.8) {
        let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem][rng.gen_range(0, 5)];
        let l = random_expr(rng, depth - 1);
        let r = random_expr(rng, depth - 1);
        Expr::new(
            Span::synthetic(),
            ExprKind::Binary(op, Box::new(l), Box::new(r)),
        )
    } else {
        let e = random_expr(rng, depth - 1);
        Expr::new(Span::synthetic(), ExprKind::Unary(UnOp::Neg, Box::new(e)))
    }
}

/// Structural equality modulo spans.
fn expr_eq(a: &Expr, b: &Expr) -> bool {
    expr_to_string(a) == expr_to_string(b)
}

#[test]
fn pretty_print_parse_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0004);
    for _case in 0..200 {
        let e = random_expr(&mut rng, 4);
        let printed = expr_to_string(&e);
        let back = parse_expr(&printed).unwrap();
        assert!(
            expr_eq(&e, &back),
            "{} vs {}",
            printed,
            expr_to_string(&back)
        );
    }
}

#[test]
fn pipelined_loop_is_packet_count_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0005);
    for _case in 0..30 {
        let n = rng.gen_range(1, 300) as i64;
        let packets = rng.gen_range(1, 64) as i64;
        let scale = rng.gen_range(1, 100) as i64;

        let src = r#"
            extern int n;
            extern int scale;
            runtime_define int num_packets;
            class Acc implements Reducinterface {
                int total;
                void reduce(Acc o) { total = total + o.total; }
                void add(int x) { total = total + x; }
            }
            class A { void main() {
                RectDomain<1> all = [0 : n - 1];
                Acc acc = new Acc();
                PipelinedLoop (pkt in all; num_packets) {
                    foreach (i in pkt) { acc.add(i * scale); }
                }
                print(acc.total);
            } }
        "#;
        let tp = check(parse(src).unwrap()).unwrap();
        let run = |np: i64| {
            let host = HostEnv::new()
                .bind("n", Value::Int(n))
                .bind("scale", Value::Int(scale))
                .bind("num_packets", Value::Int(np));
            let mut it = Interp::new(&tp, host);
            it.run_main().unwrap();
            it.output
        };
        assert_eq!(
            run(1),
            run(packets),
            "n={n} packets={packets} scale={scale}"
        );
    }
}

#[test]
fn interp_arithmetic_matches_rust() {
    let mut rng = SmallRng::seed_from_u64(0x1A06_0006);
    for _case in 0..50 {
        let a = rng.gen_range(0, 20_000) as i64 - 10_000;
        let b = rng.gen_range(1, 10_000) as i64;
        let src = format!(
            "class A {{ void main() {{ print({a} + {b}); print({a} * {b}); print({a} / {b}); print({a} % {b}); }} }}"
        );
        let tp = check(parse(&src).unwrap()).unwrap();
        let mut it = Interp::new(&tp, HostEnv::new());
        it.run_main().unwrap();
        assert_eq!(&it.output[0], &(a + b).to_string());
        assert_eq!(&it.output[1], &(a * b).to_string());
        assert_eq!(&it.output[2], &(a / b).to_string());
        assert_eq!(&it.output[3], &(a % b).to_string());
    }
}
