//! Shared test utilities: a seeded random *typed-program* generator.
//!
//! The generator emits source text from a type-directed grammar, so every
//! program passes the checker by construction while still exercising the
//! runtime's interesting territory: integer division/remainder by zero,
//! empty `foreach` domains, unbound externs, `break`/`continue`, method
//! calls and reduction objects, and int→double widening. Failures
//! reproduce deterministically from the seed.

use cgp_obs::SmallRng;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq)]
pub enum Ty {
    Int,
    Double,
    Bool,
}

pub struct ProgramGen {
    pub rng: SmallRng,
    /// Locals in scope: name, type.
    scope: Vec<(String, Ty)>,
    /// Fresh-name counter.
    next: usize,
    /// Nesting depth of generated loops (gates `break`/`continue`).
    loop_depth: usize,
    /// Whether an `acc` reduction object is in scope (pipelined bodies).
    pub with_acc: bool,
}

impl ProgramGen {
    pub fn new(seed: u64) -> Self {
        ProgramGen {
            rng: SmallRng::seed_from_u64(seed),
            scope: Vec::new(),
            next: 0,
            loop_depth: 0,
            with_acc: false,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next += 1;
        format!("{prefix}{}", self.next)
    }

    fn var_of(&mut self, ty: Ty) -> Option<String> {
        let names: Vec<&String> = self
            .scope
            .iter()
            .filter(|(_, t)| *t == ty)
            .map(|(n, _)| n)
            .collect();
        if names.is_empty() {
            None
        } else {
            Some(names[self.rng.gen_range(0, names.len())].clone())
        }
    }

    /// Assignment targets: declared locals only (`v*`). Loop counters and
    /// `while` guards are read-only so every generated loop terminates.
    fn assignable_of(&mut self, ty: Ty) -> Option<String> {
        let names: Vec<&String> = self
            .scope
            .iter()
            .filter(|(n, t)| *t == ty && n.starts_with('v'))
            .map(|(n, _)| n)
            .collect();
        if names.is_empty() {
            None
        } else {
            Some(names[self.rng.gen_range(0, names.len())].clone())
        }
    }

    /// A well-typed int expression. Division and remainder are generated
    /// on purpose: a zero denominator is a *runtime* diagnostic both
    /// engines must raise identically.
    pub fn int_expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0, 3) {
                0 => format!("{}", self.rng.gen_range(0, 30)),
                1 => self
                    .var_of(Ty::Int)
                    .unwrap_or_else(|| format!("{}", self.rng.gen_range(0, 30))),
                _ => "n".to_string(),
            };
        }
        match self.rng.gen_range(0, 8) {
            0 => format!(
                "({} + {})",
                self.int_expr(depth - 1),
                self.int_expr(depth - 1)
            ),
            1 => format!(
                "({} - {})",
                self.int_expr(depth - 1),
                self.int_expr(depth - 1)
            ),
            2 => format!(
                "({} * {})",
                self.int_expr(depth - 1),
                self.int_expr(depth - 1)
            ),
            3 => format!(
                "({} / {})",
                self.int_expr(depth - 1),
                self.int_expr(depth - 1)
            ),
            4 => format!(
                "({} % {})",
                self.int_expr(depth - 1),
                self.int_expr(depth - 1)
            ),
            5 => format!("toInt({})", self.double_expr(depth - 1)),
            6 => format!(
                "min({}, {})",
                self.int_expr(depth - 1),
                self.int_expr(depth - 1)
            ),
            _ => format!("abs({})", self.int_expr(depth - 1)),
        }
    }

    pub fn double_expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0, 3) {
                0 => format!("{}.{}", self.rng.gen_range(0, 9), self.rng.gen_range(0, 10)),
                1 => self.var_of(Ty::Double).unwrap_or_else(|| "0.5".to_string()),
                _ => format!("toDouble({})", self.int_expr(0)),
            };
        }
        match self.rng.gen_range(0, 6) {
            0 => format!(
                "({} + {})",
                self.double_expr(depth - 1),
                self.double_expr(depth - 1)
            ),
            1 => format!(
                "({} - {})",
                self.double_expr(depth - 1),
                self.double_expr(depth - 1)
            ),
            2 => format!(
                "({} * {})",
                self.double_expr(depth - 1),
                self.double_expr(depth - 1)
            ),
            // Mixed int/double arithmetic exercises widening.
            3 => format!(
                "({} + {})",
                self.int_expr(depth - 1),
                self.double_expr(depth - 1)
            ),
            4 => format!("sqrt(abs({}))", self.double_expr(depth - 1)),
            _ => format!(
                "max({}, {})",
                self.double_expr(depth - 1),
                self.double_expr(depth - 1)
            ),
        }
    }

    pub fn bool_expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return match self.rng.gen_range(0, 3) {
                0 => "true".to_string(),
                1 => "false".to_string(),
                _ => self.var_of(Ty::Bool).unwrap_or_else(|| "true".to_string()),
            };
        }
        match self.rng.gen_range(0, 5) {
            0 => {
                let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0, 6)];
                format!(
                    "({} {op} {})",
                    self.int_expr(depth - 1),
                    self.int_expr(depth - 1)
                )
            }
            1 => {
                let op = ["<", ">", "=="][self.rng.gen_range(0, 3)];
                format!(
                    "({} {op} {})",
                    self.double_expr(depth - 1),
                    self.double_expr(depth - 1)
                )
            }
            2 => format!(
                "({} && {})",
                self.bool_expr(depth - 1),
                self.bool_expr(depth - 1)
            ),
            3 => format!(
                "({} || {})",
                self.bool_expr(depth - 1),
                self.bool_expr(depth - 1)
            ),
            _ => format!("!{}", self.bool_expr(depth - 1)),
        }
    }

    fn expr_of(&mut self, ty: Ty, depth: usize) -> String {
        match ty {
            Ty::Int => self.int_expr(depth),
            Ty::Double => self.double_expr(depth),
            Ty::Bool => self.bool_expr(depth),
        }
    }

    /// Emit `budget` random statements into `out`. Loops are bounded by
    /// construction so every generated program terminates.
    pub fn stmts(&mut self, out: &mut String, budget: usize) {
        let base = self.scope.len();
        for _ in 0..budget {
            self.stmt(out, budget / 2);
        }
        self.scope.truncate(base);
    }

    fn stmt(&mut self, out: &mut String, inner_budget: usize) {
        match self.rng.gen_range(0, 10) {
            0 | 1 => {
                let ty = [Ty::Int, Ty::Double, Ty::Bool][self.rng.gen_range(0, 3)];
                let name = self.fresh("v");
                let kw = match ty {
                    Ty::Int => "int",
                    Ty::Double => "double",
                    Ty::Bool => "boolean",
                };
                let init = self.expr_of(ty, 2);
                let _ = writeln!(out, "{kw} {name} = {init};");
                self.scope.push((name, ty));
            }
            2 | 3 => {
                let ty = [Ty::Int, Ty::Double][self.rng.gen_range(0, 2)];
                if let Some(name) = self.assignable_of(ty) {
                    let op = ["=", "+=", "-="][self.rng.gen_range(0, 3)];
                    let rhs = self.expr_of(ty, 2);
                    let _ = writeln!(out, "{name} {op} {rhs};");
                } else {
                    let v = self.int_expr(2);
                    let _ = writeln!(out, "print({v});");
                }
            }
            4 => {
                let c = self.bool_expr(2);
                let _ = writeln!(out, "if ({c}) {{");
                self.stmts(out, 1 + inner_budget / 2);
                if self.rng.gen_bool(0.5) {
                    let _ = writeln!(out, "}} else {{");
                    self.stmts(out, 1 + inner_budget / 2);
                }
                let _ = writeln!(out, "}}");
            }
            5 => {
                let i = self.fresh("i");
                let hi = self.rng.gen_range(0, 6);
                let _ = writeln!(out, "for (int {i} = 0; {i} < {hi}; {i} += 1) {{");
                self.scope.push((i, Ty::Int));
                self.loop_depth += 1;
                self.stmts(out, 1 + inner_budget / 2);
                // `break` only: `continue` semantics around the step
                // clause are covered by the bounded-while form below.
                self.maybe_jump(out, false);
                self.loop_depth -= 1;
                self.scope.pop();
                let _ = writeln!(out, "}}");
            }
            6 => {
                // Possibly-empty domains are the point: an empty foreach
                // must leave its loop variable unbound in both engines.
                let d = self.fresh("d");
                let i = self.fresh("i");
                let lo = self.rng.gen_range(0, 6) as i64 - 2;
                let hi = self.rng.gen_range(0, 6) as i64 - 2;
                let _ = writeln!(out, "RectDomain<1> {d} = [{lo} : {hi}];");
                let _ = writeln!(out, "foreach ({i} in {d}) {{");
                self.scope.push((i, Ty::Int));
                self.loop_depth += 1;
                self.stmts(out, 1 + inner_budget / 2);
                self.loop_depth -= 1;
                self.scope.pop();
                let _ = writeln!(out, "}}");
            }
            7 => {
                // Decrement-first while: terminates even with `continue`.
                let w = self.fresh("w");
                let n0 = self.rng.gen_range(0, 5);
                let _ = writeln!(out, "int {w} = {n0};");
                self.scope.push((w.clone(), Ty::Int));
                let _ = writeln!(out, "while ({w} > 0) {{");
                let _ = writeln!(out, "{w} -= 1;");
                self.loop_depth += 1;
                self.stmts(out, 1 + inner_budget / 2);
                self.maybe_jump(out, true);
                self.loop_depth -= 1;
                let _ = writeln!(out, "}}");
            }
            8 if self.with_acc => {
                let x = self.double_expr(2);
                let _ = writeln!(out, "acc.add({x});");
            }
            _ => {
                let ty = [Ty::Int, Ty::Double, Ty::Bool][self.rng.gen_range(0, 3)];
                let e = self.expr_of(ty, 2);
                let _ = writeln!(out, "print({e});");
            }
        }
    }

    fn maybe_jump(&mut self, out: &mut String, allow_continue: bool) {
        if self.loop_depth > 0 && self.rng.gen_bool(0.15) {
            let kw = if allow_continue && self.rng.gen_bool(0.5) {
                "continue"
            } else {
                "break"
            };
            let c = self.bool_expr(1);
            let _ = writeln!(out, "if ({c}) {{ {kw}; }}");
        }
    }

    /// A full straight-line program: random main body over extern `n`
    /// (host-bound) and extern `u` (sometimes read while unbound — the
    /// runtime unknown-variable diagnostic).
    pub fn program(&mut self, budget: usize) -> String {
        let mut body = String::new();
        self.stmts(&mut body, budget);
        if self.rng.gen_bool(0.08) {
            body.push_str("print(u);\n");
        }
        format!("extern int n;\nextern int u;\nclass A {{ void main() {{\n{body}}} }}\n")
    }

    /// A pipelined reduction program with a random per-element body; the
    /// packet variable, element variable and an `acc` object are in scope.
    pub fn pipelined_program(&mut self, budget: usize) -> String {
        let mut body = String::new();
        self.scope.push(("i".to_string(), Ty::Int));
        self.with_acc = true;
        self.loop_depth += 1;
        self.stmts(&mut body, budget);
        self.loop_depth -= 1;
        self.with_acc = false;
        self.scope.pop();
        format!(
            concat!(
                "extern int n;\n",
                "runtime_define int num_packets;\n",
                "class Acc implements Reducinterface {{\n",
                "    double total;\n",
                "    void reduce(Acc o) {{ total = total + o.total; }}\n",
                "    void add(double x) {{ total = total + x; }}\n",
                "}}\n",
                "class A {{ void main() {{\n",
                "    RectDomain<1> all = [0 : n - 1];\n",
                "    Acc acc = new Acc();\n",
                "    PipelinedLoop (pkt in all; num_packets) {{\n",
                "        foreach (i in pkt) {{\n",
                "            acc.add(toDouble(i));\n",
                "{body}",
                "        }}\n",
                "    }}\n",
                "    print(acc.total);\n",
                "}} }}\n"
            ),
            body = body
        )
    }
}
