//! Threaded (DataCutter-backed) executions of compiled plans must
//! reproduce the sequential interpreter for every pipeline width — the
//! transparent-copy reduction merge included.

use cgp_core::apps::dialect::*;
use cgp_core::apps::isosurface::ScalarGrid;
use cgp_core::apps::knn::generate_points;
use cgp_core::apps::vmscope::Slide;
use cgp_core::lang::{frontend, HostEnv, Interp};
use cgp_core::{compile, run_plan_threaded, CompileOptions, PipelineEnv};
use std::sync::Arc;

fn oracle(src: &str, host: &HostEnv) -> Vec<String> {
    let tp = frontend(src).unwrap();
    let mut it = Interp::new(&tp, host.clone());
    it.run_main().unwrap();
    it.output
}

#[test]
fn zbuf_threaded_all_widths() {
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-5), 96)
        .with_symbol("ncubes", 512)
        .with_symbol("screen", 16);
    let c = compile(ZBUF_SRC, &opts).unwrap();
    let host = || iso_host_env(&ScalarGrid::synthetic(9, 9, 9, 13), 0.7, 16, 8);
    let expect = oracle(ZBUF_SRC, &host());
    for widths in [[1usize, 1, 1], [2, 2, 1], [4, 4, 1], [1, 4, 1]] {
        let out =
            run_plan_threaded(Arc::new(c.plan.clone()), Arc::new(host), Some(&widths)).unwrap();
        assert_eq!(out, expect, "widths {widths:?}");
    }
}

#[test]
fn knn_threaded_all_widths() {
    let pts = generate_points(600, 21);
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 100)
        .with_symbol("npoints", 600)
        .with_symbol("k", 9);
    let c = compile(KNN_SRC, &opts).unwrap();
    let host = move || knn_host_env(&generate_points(600, 21), [0.4, 0.1, 0.9], 9, 6);
    let expect = oracle(KNN_SRC, &knn_host_env(&pts, [0.4, 0.1, 0.9], 9, 6));
    for widths in [[1usize, 1, 1], [2, 2, 1], [4, 4, 1]] {
        let out =
            run_plan_threaded(Arc::new(c.plan.clone()), Arc::new(host), Some(&widths)).unwrap();
        assert_eq!(out, expect, "widths {widths:?}");
    }
}

#[test]
fn vmscope_threaded_all_widths() {
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 10)
        .with_symbol("height", 40)
        .with_symbol("width", 40)
        .with_symbol("subsample", 2);
    let c = compile(VMSCOPE_SRC, &opts).unwrap();
    let host = || vmscope_host_env(&Slide::synthetic(40, 40, 5), 2, 4);
    let expect = oracle(VMSCOPE_SRC, &host());
    for widths in [[1usize, 1, 1], [2, 2, 1], [4, 4, 1]] {
        let out =
            run_plan_threaded(Arc::new(c.plan.clone()), Arc::new(host), Some(&widths)).unwrap();
        assert_eq!(out, expect, "widths {widths:?}");
    }
}

#[test]
fn threaded_runs_are_repeatable() {
    // Transparent copies introduce scheduling nondeterminism; results must
    // not depend on it (associative/commutative reductions).
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e7, 1e-5), 96)
        .with_symbol("ncubes", 343)
        .with_symbol("screen", 12);
    let c = compile(ZBUF_SRC, &opts).unwrap();
    let host = || iso_host_env(&ScalarGrid::synthetic(8, 8, 8, 2), 0.65, 12, 7);
    let plan = Arc::new(c.plan);
    let mut outputs = Vec::new();
    for _ in 0..5 {
        outputs
            .push(run_plan_threaded(Arc::clone(&plan), Arc::new(host), Some(&[2, 3, 1])).unwrap());
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn wider_interior_stage_only() {
    // Width on the middle stage alone must also preserve results (buffers
    // race to different copies; merge at finalize reorders).
    let pts = generate_points(300, 8);
    let opts = CompileOptions::new(PipelineEnv::uniform(3, 1e8, 1e6, 1e-5), 50)
        .with_symbol("npoints", 300)
        .with_symbol("k", 4);
    let c = compile(KNN_SRC, &opts).unwrap();
    let host = move || knn_host_env(&generate_points(300, 8), [0.6, 0.6, 0.1], 4, 6);
    let expect = oracle(KNN_SRC, &knn_host_env(&pts, [0.6, 0.6, 0.1], 4, 6));
    for w2 in [1usize, 2, 4] {
        let out =
            run_plan_threaded(Arc::new(c.plan.clone()), Arc::new(host), Some(&[1, w2, 1])).unwrap();
        assert_eq!(out, expect, "interior width {w2}");
    }
}

#[test]
fn copied_view_stage_is_rejected() {
    let opts = CompileOptions::new(PipelineEnv::uniform(2, 1e8, 1e6, 1e-5), 50)
        .with_symbol("npoints", 300)
        .with_symbol("k", 4);
    let c = compile(KNN_SRC, &opts).unwrap();
    let host = || knn_host_env(&generate_points(300, 8), [0.6, 0.6, 0.1], 4, 6);
    let err = run_plan_threaded(Arc::new(c.plan), Arc::new(host), Some(&[1, 2]));
    assert!(err.is_err(), "view stage width > 1 must be rejected");
}
